//! # activepy-repro — ActivePy (DAC 2023), rebuilt in Rust
//!
//! A full reproduction of *Rethinking Programming Frameworks for
//! In-Storage Processing* (Liu, Hsu, Tseng — DAC 2023): a runtime that
//! takes an **unannotated** interpreted-language program and transparently
//! decides, line by line, what to execute inside a computational storage
//! device — sampling scaled inputs, fitting complexity curves, evaluating
//! the net-profit equation, generating copy-eliminated code, and migrating
//! work back to the host when the device degrades.
//!
//! The workspace:
//!
//! * [`csd_sim`] — the hardware substrate: CSE, flash (9 GB/s internal),
//!   NVMe/PCIe links (5/4 GB/s), queue pairs, shared memory, contention.
//! * [`alang`] — the Python/Cython stand-in: line-oriented language,
//!   interpreter with per-line profiling, compiler, copy elimination.
//! * [`activepy`] — the paper's contribution: sampling, fitting, Eq. 1,
//!   Algorithm 1, codegen, execution, monitoring, migration.
//! * [`isp_workloads`] — Table I's nine applications plus SparseMV.
//! * [`isp_baselines`] — the C baseline, the programmer-directed ISP
//!   search, and the static framework under dynamics.
//!
//! ## Quickstart
//!
//! ```
//! use activepy::runtime::ActivePy;
//! use csd_sim::{ContentionScenario, SystemConfig};
//!
//! // Pick a Table-I workload and run the whole pipeline on it.
//! let q6 = isp_workloads::by_name("TPC-H-6").expect("registered");
//! let program = q6.program()?;
//! let outcome = ActivePy::new().run(
//!     &program,
//!     &q6,
//!     &SystemConfig::paper_default(),
//!     ContentionScenario::none(),
//! )?;
//! println!(
//!     "offloaded {} of {} lines, end-to-end {:.2}s",
//!     outcome.assignment.csd_lines.len(),
//!     program.len(),
//!     outcome.report.total_secs,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use activepy;
pub use alang;
pub use csd_sim;
pub use isp_baselines;
pub use isp_workloads;
