#!/usr/bin/env bash
# The full CI gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== fault-sweep smoke (deterministic injection, zero wrong answers) =="
cargo test -q -p isp-bench faults::

echo "== chaos differential (pinned at 48 cases in tests/chaos.rs) =="
cargo test -q --test chaos

echo "== kernel-scaling smoke (scaling section, determinism, speedup floors) =="
# The smoke sweep asserts byte-identical outputs at 1/2/4/8 threads and,
# on hosts with >= 4 cores, >= 2x speedup on large scalable kernels and
# no regression on small inputs (see experiments::scaling::check).
cargo test -q -p isp-bench --lib scaling

echo "== thread determinism (pinned proptest seed, both backends, 1/2/8 threads) =="
cargo test -q --test thread_determinism

echo "== cargo bench --no-run =="
cargo bench --no-run

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
