#!/usr/bin/env bash
# The full CI gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== fault-sweep smoke (deterministic injection, zero wrong answers) =="
cargo test -q -p isp-bench faults::

echo "== chaos differential (pinned at 48 cases in tests/chaos.rs) =="
cargo test -q --test chaos

echo "== cargo bench --no-run =="
cargo bench --no-run

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
