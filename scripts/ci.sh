#!/usr/bin/env bash
# The full CI gate: release build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== fault-sweep smoke (deterministic injection, zero wrong answers) =="
cargo test -q -p isp-bench faults::

echo "== chaos differential (pinned at 48 cases in tests/chaos.rs) =="
cargo test -q --test chaos

echo "== kernel-scaling smoke (scaling section, determinism, speedup floors) =="
# The smoke sweep asserts byte-identical outputs at 1/2/4/8 threads and,
# on hosts with >= 4 cores, >= 2x speedup on large scalable kernels and
# no regression on small inputs (see experiments::scaling::check).
cargo test -q -p isp-bench --lib scaling

echo "== shard-sweep smoke (N=2 fleet fingerprint vs N=1 and the unsharded run) =="
# The reduced sweep runs blackscholes and PageRank at N in {1, 2} plus the
# one-shard-crash chaos cell: every fleet fingerprint must equal the
# unsharded single-device run's, the full dataset is generated once per
# workload, and the crashed shard migrates alone (experiments::shards).
cargo test -q -p isp-bench --lib shards

echo "== shard differential (pinned proptest seed, N in {1,2,4,8}, both backends) =="
cargo test -q --test shard_determinism

echo "== thread determinism (pinned proptest seed, both backends, 1/2/8 threads) =="
cargo test -q --test thread_determinism

echo "== trace smoke (repro --trace -> trace summarizer -> golden journal diff) =="
# End-to-end observability gate: a masked traced TPC-H-6 fig5 run must
# produce a journal the `trace` bin can summarize, and that journal must
# be byte-identical to the committed golden — any nondeterminism in the
# span layer (schedule leaking into journal order, a host-clock value
# escaping the mask) fails the diff.
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release -q -p isp-bench --bin repro -- \
  --trace "$TRACE_TMP/fig5_tpch6.jsonl" --trace-mask-wall --trace-workload TPC-H-6
cargo run --release -q -p isp-bench --bin trace -- "$TRACE_TMP/fig5_tpch6.jsonl" --top 5
diff -u tests/golden/fig5_tpch6_trace.jsonl "$TRACE_TMP/fig5_tpch6.jsonl"

echo "== trace diff self-identity (span-aligned diff of the golden against the fresh run) =="
# The diff subcommand must call a journal identical to itself (and to a
# byte-identical regeneration) identical: structure, sim clock, and
# counters. Exit 1 here means the aligner itself is nondeterministic.
cargo run --release -q -p isp-bench --bin trace -- diff \
  tests/golden/fig5_tpch6_trace.jsonl tests/golden/fig5_tpch6_trace.jsonl > /dev/null
cargo run --release -q -p isp-bench --bin trace -- diff \
  tests/golden/fig5_tpch6_trace.jsonl "$TRACE_TMP/fig5_tpch6.jsonl"

echo "== Prometheus exposition golden (byte-identical on masked clocks) =="
# The exposition rendered from the fresh journal's metrics footer must
# match the committed golden byte for byte; regenerate via
# REGEN_TRACE_GOLDEN=1 cargo test --test audit_determinism.
cargo run --release -q -p isp-bench --bin trace -- "$TRACE_TMP/fig5_tpch6.jsonl" --prom \
  | diff -u tests/golden/fig5_tpch6_metrics.prom -

echo "== fig5 golden byte-identity (rows untouched by the obs layer) =="
# Untraced rows must match tests/golden/fig5_rows.json byte for byte,
# and the traced serial grid must produce the same rows as the untraced
# parallel grid (tracing is observation-only at the benchmark level).
cargo test -q --test fig5_golden

echo "== re-plan determinism (proptest: refit loop never changes values, warm never worse) =="
cargo test -q --test replan_determinism

echo "== decode smoke (both Eq.1 regimes present, placements beat forced plans, one fingerprint) =="
# The decode experiment's unit slice: TPC-H-6-gz must plan decode-on-host,
# LogGrep decode-on-CSD, the measured winner between forced all-host and
# forced all-CSD must match the sign of the projected Eq. 1 profit, and
# all three placements of each workload must produce one values
# fingerprint (experiments::decode).
cargo test -q -p isp-bench --lib decode

echo "== decode determinism (proptest: wire formats x placements x faults x backends x shards) =="
cargo test -q --test decode_determinism

echo "== kill-resume smoke (journaled run killed mid-stream resumes to the same fingerprint) =="
# Records the recovery workload's execution journal, kills the process
# after 20 appends via the WAL kill hook (exit 86 + a deliberately torn
# tail), resumes from the survived prefix, and demands the uninterrupted
# run's fingerprint. Exercises create -> kill -> torn-tail truncation ->
# replay-verify -> append end to end through the public CLI.
FULL_FP="$(cargo run --release -q -p isp-bench --bin repro -- \
  --journal "$TRACE_TMP/full.wal" | grep '^run fingerprint:')"
set +e
ISP_WAL_KILL_AFTER=20 cargo run --release -q -p isp-bench --bin repro -- \
  --journal "$TRACE_TMP/killed.wal"
KILL_STATUS=$?
set -e
if [ "$KILL_STATUS" -ne 86 ]; then
  echo "kill hook did not fire (exit $KILL_STATUS, expected 86)"; exit 1
fi
RESUMED_FP="$(cargo run --release -q -p isp-bench --bin repro -- \
  --resume "$TRACE_TMP/killed.wal" | grep '^run fingerprint:')"
if [ "$FULL_FP" != "$RESUMED_FP" ]; then
  echo "resumed fingerprint '$RESUMED_FP' != uninterrupted '$FULL_FP'"; exit 1
fi
echo "resumed fingerprint matches: $RESUMED_FP"

echo "== crash-resume chaos (proptest: kill at random journal offsets, N in {1,4}, both backends) =="
cargo test -q --test wal_resume

echo "== recovery benchmark smoke (journal overhead, resume, zero-datagen warm start) =="
cargo test -q -p isp-bench --lib recovery

echo "== adaptation smoke (regret(replan) < regret(static), >= 1 reclaim, 0 divergences) =="
# The focused adaptation sweep runs every workload under the
# phase-shifting trace; repro --adapt exits non-zero if re-planning
# fails to reduce total regret, no workload reclaims work back to the
# CSD, or any cell's values_fingerprint diverges from the reference.
cargo run --release -q -p isp-bench --bin repro -- --adapt

echo "== planner-audit smoke (Eq. 1 calibration, 0 divergences, >= 1 explained flip) =="
# The full calibration grid: every workload's clean-cell error inside the
# pinned bands, audit observation-only (fingerprints unmoved), and the
# contended cell produces at least one explained counterfactual flip.
cargo run --release -q -p isp-bench --bin repro -- --audit

echo "== bench-history regression check (committed report vs committed ledger) =="
# Appending the committed BENCH_repro.json to a scratch copy of the
# committed ledger and re-checking proves (a) the ledger parses, (b) the
# committed report's deterministic outcomes match the committed history,
# and (c) the tooling itself still round-trips its own line format.
cp BENCH_history.jsonl "$TRACE_TMP/history.jsonl"
cargo run --release -q -p isp-bench --bin history -- append \
  --report BENCH_repro.json --history "$TRACE_TMP/history.jsonl" --sha ci-smoke
cargo run --release -q -p isp-bench --bin history -- check \
  --history "$TRACE_TMP/history.jsonl"

echo "== cargo bench --no-run =="
cargo bench --no-run

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI OK"
