//! Criterion bench: one static-plan contended run (the Figure 2 kernel).
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{best_static_plan, run_plan};

fn bench_fig2(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let plan = best_static_plan(&w, &config).expect("plan");
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("static_plan_run_60pct", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_plan(&w, &config, &plan, ContentionScenario::constant(0.6)).expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
