//! Criterion bench: the full ActivePy pipeline (the Figure 4 kernel).
use activepy::runtime::ActivePy;
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::{ContentionScenario, SystemConfig};

fn bench_fig4(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("activepy_pipeline_q6", |b| {
        b.iter(|| {
            std::hint::black_box(
                ActivePy::new()
                    .run(&program, &w, &config, ContentionScenario::none())
                    .expect("pipeline"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
