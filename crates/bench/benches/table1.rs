//! Criterion bench: Table-I workload materialization (datagen cost).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for w in isp_workloads::table1() {
        g.bench_function(w.name(), |b| {
            b.iter(|| std::hint::black_box(w.storage_at(1.0 / 128.0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
