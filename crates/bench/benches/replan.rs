//! Criterion bench: the profile-feedback loop's host-side costs.
//!
//! Planning amortizes across executions only if refits stay cheap:
//! `replan` must reuse the prior plan's sampling/calibration/lowering
//! and cost microseconds, and a warm `plan_for` hit must stay far below
//! a cold plan (which samples the workload at several scales).
use activepy::runtime::ActivePy;
use activepy::{PlanCache, ProfileStore};
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::{ContentionScenario, SystemConfig};

fn bench_replan(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let rt = ActivePy::new();
    let cold = rt.plan(&program, &w, &config).expect("cold plan");

    // One executed run's measured per-line costs = one observation batch.
    let outcome = rt
        .execute_plan(&cold, &config, ContentionScenario::none())
        .expect("reference run");
    let batch: Vec<alang::LineCost> = outcome.report.lines.iter().map(|l| l.cost).collect();
    let store = ProfileStore::new();
    let key = ("TPC-H-6".to_owned(), 0);
    store.record(&key, &batch);
    let profile = store.profile(&key);

    let mut g = c.benchmark_group("replan");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    // Absorbing a recorded batch into the store's running sums.
    g.bench_function("record_observation_batch", |b| {
        b.iter(|| store.record(std::hint::black_box(&key), std::hint::black_box(&batch)))
    });
    // Blend + re-estimate + Algorithm 1, reusing the prior plan's
    // sampling phases — the per-refit cost of the feedback loop.
    g.bench_function("refit_from_profile", |b| {
        b.iter(|| {
            std::hint::black_box(
                rt.replan(&cold, &config, std::hint::black_box(&profile))
                    .expect("refit"),
            )
        })
    });
    // Cold planning from scratch (fresh cache per iteration): the cost a
    // warm hit and a refit are measured against.
    g.bench_function("plan_for_cold", |b| {
        b.iter(|| {
            let cache = PlanCache::new();
            std::hint::black_box(
                cache
                    .plan_for(&rt, "TPC-H-6", &program, &w, &config)
                    .expect("cold plan"),
            )
        })
    });
    // Warm hit on an unchanged profile: the steady-state lookup.
    let cache = PlanCache::new();
    cache
        .plan_for(&rt, "TPC-H-6", &program, &w, &config)
        .expect("seed plan");
    g.bench_function("plan_for_warm_hit", |b| {
        b.iter(|| {
            std::hint::black_box(
                cache
                    .plan_for(&rt, "TPC-H-6", &program, &w, &config)
                    .expect("warm hit"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replan);
criterion_main!(benches);
