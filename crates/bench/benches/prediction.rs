//! Criterion bench: sampling + curve fitting (the prediction kernel).
use activepy::fit::predict_lines;
use activepy::sampling::{paper_scales, run_sampling};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_prediction(c: &mut Criterion) {
    let w = isp_workloads::by_name("PageRank").expect("registered");
    let program = w.program().expect("parse");
    let mut g = c.benchmark_group("prediction");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("sample_and_fit_pagerank", |b| {
        b.iter(|| {
            let sampling = run_sampling(&program, &w, &paper_scales()).expect("sampling");
            std::hint::black_box(predict_lines(&sampling.lines).expect("fit"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
