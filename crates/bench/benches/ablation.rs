//! Criterion bench: the four assignment variants (ablation kernel).
use activepy::assign::{assign, assign_greedy, assign_optimal, assign_refined};
use activepy::estimate::{estimate_lines, Calibration};
use activepy::fit::predict_lines;
use activepy::sampling::{paper_scales, run_sampling};
use alang::copyelim::eliminable_lines;
use alang::{CostParams, ExecTier};
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::SystemConfig;

fn bench_ablation(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-1").expect("registered");
    let program = w.program().expect("parse");
    let sampling = run_sampling(&program, &w, &paper_scales()).expect("sampling");
    let predictions = predict_lines(&sampling.lines).expect("fit");
    let copy_elim = eliminable_lines(&program, &sampling.dataset_types);
    let estimates = estimate_lines(
        &predictions,
        ExecTier::CompiledCopyElim,
        &CostParams::paper_default(),
        &config,
        &Calibration::from_counters(&config),
        &copy_elim,
    );
    let bw = config.d2h_bandwidth().as_bytes_per_sec();
    let mut g = c.benchmark_group("ablation");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("assign_greedy", |b| {
        b.iter(|| std::hint::black_box(assign_greedy(&estimates, bw)))
    });
    g.bench_function("assign_lookahead", |b| {
        b.iter(|| std::hint::black_box(assign(&estimates, bw)))
    });
    g.bench_function("assign_refined", |b| {
        b.iter(|| std::hint::black_box(assign_refined(&program, &estimates, bw)))
    });
    g.bench_function("assign_optimal_dp", |b| {
        b.iter(|| std::hint::black_box(assign_optimal(&estimates, bw)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
