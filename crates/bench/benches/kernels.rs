//! Criterion bench: data-parallel kernels, serial vs. 8-thread policy.
//!
//! Each wired compute kernel runs through [`alang::builtins::call_in`]
//! twice per input — once with the shared serial engine and once with an
//! 8-worker [`alang::ParallelPolicy`] — so a regression in either the
//! serial fast path or the chunked path shows up as a per-kernel delta.
//! CI compiles this with `cargo bench --no-run`; the timed run is for
//! developers on multi-core machines (on a single-core host the parallel
//! numbers simply track the serial ones plus scheduling overhead).
use alang::builtins::{call_in, KernelCtx, Storage};
use alang::matrix::Matrix;
use alang::value::{ArrayVal, BoolArrayVal};
use alang::{ParEngine, ParallelPolicy, Value};
use criterion::{criterion_group, criterion_main, Criterion};

/// Engagement threshold: low enough that every benched input chunks
/// under the parallel policy.
const MIN_PARALLEL_LEN: usize = 4096;

fn arr(data: Vec<f64>) -> Value {
    Value::Array(ArrayVal::new(data))
}

fn series(n: usize, mul: usize, modulus: usize, scale: f64, shift: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * mul) % modulus) as f64 * scale + shift)
        .collect()
}

fn square(n: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if i % 7 == 0 {
                0.0
            } else {
                (i % 23) as f64 - 11.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("square matrix")
}

fn sparse(n: usize) -> alang::matrix::Csr {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if (i * 31) % 10 == 0 {
                ((i % 13) + 1) as f64 * 0.1
            } else {
                0.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("sparse matrix").to_csr()
}

fn kernel_cases() -> Vec<(&'static str, Vec<Value>)> {
    let elems = 100_000;
    let mat_n = 96;
    let csr_n = 384;
    let pts = 2048;
    let xs = series(elems, 37, 101, 0.5, -20.0);
    let ys = series(elems, 13, 89, 0.25, -10.0);
    let keep: Vec<bool> = (0..elems).map(|i| i % 3 != 0).collect();
    let m = square(mat_n);
    let csr = sparse(csr_n);
    let ranks = vec![1.0 / csr_n as f64; csr_n];
    let points = Matrix::new(series(pts * 8, 7, 19, 1.0, 0.0), pts, 8).expect("points");
    let cents = Matrix::new((0..8 * 8).map(|i| i as f64).collect(), 8, 8).expect("cents");
    vec![
        ("sum", vec![arr(xs.clone())]),
        ("dot", vec![arr(xs.clone()), arr(ys)]),
        ("sqrt", vec![arr(xs.iter().map(|x| x.abs()).collect())]),
        (
            "select",
            vec![arr(xs), Value::BoolArray(BoolArrayVal::new(keep))],
        ),
        ("matmul", vec![Value::Matrix(m.clone()), Value::Matrix(m)]),
        (
            "pagerank_step",
            vec![Value::Csr(csr), arr(ranks), Value::Num(0.85)],
        ),
        (
            "kmeans_assign",
            vec![Value::Matrix(points), Value::Matrix(cents)],
        ),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let storage = Storage::new();
    let serial = ParEngine::new(ParallelPolicy::new(1, MIN_PARALLEL_LEN).expect("serial policy"));
    let parallel =
        ParEngine::new(ParallelPolicy::new(8, MIN_PARALLEL_LEN).expect("parallel policy"));
    let mut g = c.benchmark_group("kernels");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (kernel, argv) in kernel_cases() {
        for (mode, engine) in [("serial", &serial), ("par8", &parallel)] {
            let ctx = KernelCtx {
                storage: &storage,
                par: engine,
            };
            g.bench_function(&format!("{kernel}/{mode}"), |b| {
                b.iter(|| std::hint::black_box(call_in(kernel, &argv, &ctx).expect("kernel runs")))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
