//! Criterion bench: data-parallel kernels, serial vs. 8-thread policy.
//!
//! Each wired compute kernel runs through [`alang::builtins::call_in`]
//! twice per input — once with the shared serial engine and once with an
//! 8-worker [`alang::ParallelPolicy`] — so a regression in either the
//! serial fast path or the chunked path shows up as a per-kernel delta.
//! CI compiles this with `cargo bench --no-run`; the timed run is for
//! developers on multi-core machines (on a single-core host the parallel
//! numbers simply track the serial ones plus scheduling overhead).
//!
//! Two further groups cover the wire-format PR: `simd` times each hot
//! reduction's plain sequential fold against its 8-lane kernel (after
//! asserting the lane kernel is bit-identical to its strided-scalar
//! reference twin *and* that the chunked engine returns the same bits at
//! 1/2/4/8 worker threads), and `decode` times `decode_all` per wire
//! format.
use alang::builtins::{call_in, KernelCtx, Storage};
use alang::matrix::Matrix;
use alang::simd;
use alang::value::{ArrayVal, BoolArrayVal, EncodedVal};
use alang::{ParEngine, ParallelPolicy, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::wire::{ByteOrder, Codec, Encoding};

/// Engagement threshold: low enough that every benched input chunks
/// under the parallel policy.
const MIN_PARALLEL_LEN: usize = 4096;

fn arr(data: Vec<f64>) -> Value {
    Value::Array(ArrayVal::new(data))
}

fn series(n: usize, mul: usize, modulus: usize, scale: f64, shift: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * mul) % modulus) as f64 * scale + shift)
        .collect()
}

fn square(n: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if i % 7 == 0 {
                0.0
            } else {
                (i % 23) as f64 - 11.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("square matrix")
}

fn sparse(n: usize) -> alang::matrix::Csr {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if (i * 31) % 10 == 0 {
                ((i % 13) + 1) as f64 * 0.1
            } else {
                0.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("sparse matrix").to_csr()
}

fn kernel_cases() -> Vec<(&'static str, Vec<Value>)> {
    let elems = 100_000;
    let mat_n = 96;
    let csr_n = 384;
    let pts = 2048;
    let xs = series(elems, 37, 101, 0.5, -20.0);
    let ys = series(elems, 13, 89, 0.25, -10.0);
    let keep: Vec<bool> = (0..elems).map(|i| i % 3 != 0).collect();
    let m = square(mat_n);
    let csr = sparse(csr_n);
    let ranks = vec![1.0 / csr_n as f64; csr_n];
    let points = Matrix::new(series(pts * 8, 7, 19, 1.0, 0.0), pts, 8).expect("points");
    let cents = Matrix::new((0..8 * 8).map(|i| i as f64).collect(), 8, 8).expect("cents");
    vec![
        ("sum", vec![arr(xs.clone())]),
        ("dot", vec![arr(xs.clone()), arr(ys)]),
        ("sqrt", vec![arr(xs.iter().map(|x| x.abs()).collect())]),
        (
            "select",
            vec![arr(xs), Value::BoolArray(BoolArrayVal::new(keep))],
        ),
        ("matmul", vec![Value::Matrix(m.clone()), Value::Matrix(m)]),
        (
            "pagerank_step",
            vec![Value::Csr(csr), arr(ranks), Value::Num(0.85)],
        ),
        (
            "kmeans_assign",
            vec![Value::Matrix(points), Value::Matrix(cents)],
        ),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let storage = Storage::new();
    let serial = ParEngine::new(ParallelPolicy::new(1, MIN_PARALLEL_LEN).expect("serial policy"));
    let parallel =
        ParEngine::new(ParallelPolicy::new(8, MIN_PARALLEL_LEN).expect("parallel policy"));
    let mut g = c.benchmark_group("kernels");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (kernel, argv) in kernel_cases() {
        for (mode, engine) in [("serial", &serial), ("par8", &parallel)] {
            let ctx = KernelCtx {
                storage: &storage,
                par: engine,
            };
            g.bench_function(&format!("{kernel}/{mode}"), |b| {
                b.iter(|| std::hint::black_box(call_in(kernel, &argv, &ctx).expect("kernel runs")))
            });
        }
    }
    g.finish();
}

/// Asserts the reduction builtins return the same bits at every worker
/// count — the determinism contract the SIMD fast path must preserve.
fn assert_thread_bit_identity(xs: &[f64], ys: &[f64]) {
    let storage = Storage::new();
    let reference: Vec<u64> = {
        let engine = ParEngine::new(ParallelPolicy::new(1, MIN_PARALLEL_LEN).expect("policy"));
        let ctx = KernelCtx {
            storage: &storage,
            par: &engine,
        };
        reduction_bits(&ctx, xs, ys)
    };
    for threads in [2, 4, 8] {
        let engine =
            ParEngine::new(ParallelPolicy::new(threads, MIN_PARALLEL_LEN).expect("policy"));
        let ctx = KernelCtx {
            storage: &storage,
            par: &engine,
        };
        assert_eq!(
            reduction_bits(&ctx, xs, ys),
            reference,
            "a reduction changed bits at {threads} threads"
        );
    }
}

/// The reduction outputs as raw bits, in a fixed kernel order.
fn reduction_bits(ctx: &KernelCtx, xs: &[f64], ys: &[f64]) -> Vec<u64> {
    ["sum", "dot", "minv", "maxv"]
        .iter()
        .map(|kernel| {
            let argv: Vec<Value> = match *kernel {
                "dot" => vec![arr(xs.to_vec()), arr(ys.to_vec())],
                _ => vec![arr(xs.to_vec())],
            };
            match call_in(kernel, &argv, ctx).expect("kernel runs").value {
                Value::Num(x) => x.to_bits(),
                other => panic!("{kernel} returned {other:?}"),
            }
        })
        .collect()
}

fn bench_simd(c: &mut Criterion) {
    let xs = series(1 << 20, 37, 101, 0.5, -20.0);
    let ys = series(1 << 20, 13, 89, 0.25, -10.0);
    assert_thread_bit_identity(&xs, &ys);
    // The lane kernels must match their strided-scalar twins bit for bit
    // before their numbers mean anything.
    assert_eq!(simd::sum8(&xs).to_bits(), simd::sum8_ref(&xs).to_bits());
    assert_eq!(
        simd::dot8(&xs, &ys).to_bits(),
        simd::dot8_ref(&xs, &ys).to_bits()
    );
    assert_eq!(
        simd::min8(&xs, f64::INFINITY).to_bits(),
        simd::min8_ref(&xs, f64::INFINITY).to_bits()
    );
    assert_eq!(
        simd::max8(&xs, f64::NEG_INFINITY).to_bits(),
        simd::max8_ref(&xs, f64::NEG_INFINITY).to_bits()
    );

    let mut g = c.benchmark_group("simd");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.bench_function("sum/scalar", |b| {
        b.iter(|| std::hint::black_box(xs.iter().fold(0.0, |a, &b| a + b)))
    });
    g.bench_function("sum/simd8", |b| {
        b.iter(|| std::hint::black_box(simd::sum8(&xs)))
    });
    g.bench_function("dot/scalar", |b| {
        b.iter(|| std::hint::black_box(xs.iter().zip(&ys).fold(0.0, |a, (&x, &y)| a + x * y)))
    });
    g.bench_function("dot/simd8", |b| {
        b.iter(|| std::hint::black_box(simd::dot8(&xs, &ys)))
    });
    g.bench_function("min/scalar", |b| {
        b.iter(|| std::hint::black_box(xs.iter().fold(f64::INFINITY, |a, &b| a.min(b))))
    });
    g.bench_function("min/simd8", |b| {
        b.iter(|| std::hint::black_box(simd::min8(&xs, f64::INFINITY)))
    });
    g.bench_function("max/scalar", |b| {
        b.iter(|| std::hint::black_box(xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))))
    });
    g.bench_function("max/simd8", |b| {
        b.iter(|| std::hint::black_box(simd::max8(&xs, f64::NEG_INFINITY)))
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let data: Vec<f64> = (0..1 << 16)
        .map(|i| {
            if i % 10 == 0 {
                -1.0
            } else {
                ((i * 7919) % 50) as f64
            }
        })
        .collect();
    let formats = [
        ("gzip_shuffle", Encoding::gzip_shuffled()),
        (
            "shuffle_bigendian",
            Encoding {
                codec: Codec::None,
                shuffle: true,
                byte_order: ByteOrder::Big,
                fill_value: None,
            },
        ),
        (
            "fill_sentinel",
            Encoding {
                codec: Codec::None,
                shuffle: false,
                byte_order: ByteOrder::Little,
                fill_value: Some(-1.0),
            },
        ),
    ];
    let mut g = c.benchmark_group("decode");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (name, enc) in formats {
        let ev = EncodedVal::from_f64s(enc, &data, data.len() as u64);
        g.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(ev.decode_all().expect("decode")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_simd, bench_decode);
criterion_main!(benches);
