//! Criterion bench: interpreting vs the compiled tiers (runtime-opt kernel).
use alang::ExecTier;
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::SystemConfig;
use isp_baselines::run_host_only;

fn bench_runtime_opt(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-1").expect("registered");
    let mut g = c.benchmark_group("runtime_opt");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (label, tier) in [
        ("interpreted", ExecTier::Interpreted),
        ("compiled", ExecTier::Compiled),
        ("copy_elim", ExecTier::CompiledCopyElim),
        ("native", ExecTier::Native),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run_host_only(&w, &config, tier).expect("run")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_runtime_opt);
criterion_main!(benches);
