//! Criterion bench: per-line execution engines head to head.
//!
//! Measures the tree-walking reference interpreter against the lowered
//! register-bytecode VM on dispatch-bound programs — scalar chains and a
//! minimum-size TPC-H Q6 pipeline, where per-line kernel work is
//! negligible — so the numbers isolate the interpretive overhead the
//! lowering pass removes (name resolution, input re-walks, builtin
//! matching). Also times lowering itself, since plans lower once and
//! execute many times.
use alang::builtins::Storage;
use alang::interp::Interpreter;
use alang::table::{Column, Table};
use alang::Vm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const Q6_MICRO: &str = "t = scan('lineitem')\nq = col(t, 'qty')\nm = q < 24\n\
                        p = col(t, 'price')\ns = select(p, m)\nr = sum(s)\n";

fn scalar_chain() -> String {
    (0..24)
        .map(|i| match i % 4 {
            0 => format!("s{i} = {i} + 1\n"),
            1 => format!("s{i} = s{} * 2 - 3\n", i - 1),
            2 => format!("s{i} = s{} / (s{} + 1)\n", i - 1, i - 2),
            _ => format!("s{i} = -s{} + s{}\n", i - 1, i - 3),
        })
        .collect()
}

fn micro_storage() -> Storage {
    let mut st = Storage::new();
    let table = Table::with_logical_rows(
        vec![
            (
                "qty".into(),
                Column::F64(Arc::new(vec![10.0, 30.0, 5.0, 40.0])),
            ),
            (
                "price".into(),
                Column::F64(Arc::new(vec![100.0, 200.0, 50.0, 400.0])),
            ),
        ],
        4_000_000,
    )
    .expect("table");
    st.insert("lineitem", alang::Value::Table(table));
    st
}

fn bench_interp(c: &mut Criterion) {
    let st = micro_storage();
    let mut g = c.benchmark_group("interp");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, src) in [("scalar", scalar_chain()), ("q6", Q6_MICRO.to_owned())] {
        let program = alang::parser::parse(&src).expect("parse");
        let flags = vec![false; program.len()];
        let lowered = alang::lower::lower(&program).expect("lowers");
        g.bench_function(&format!("ast_walk/{name}"), |b| {
            b.iter(|| {
                let mut interp = Interpreter::new(&st);
                std::hint::black_box(interp.run(&program, &flags).expect("runs"))
            })
        });
        g.bench_function(&format!("vm/{name}"), |b| {
            b.iter(|| {
                let mut vm = Vm::new(&lowered, &st);
                std::hint::black_box(vm.run().expect("runs"))
            })
        });
        g.bench_function(&format!("lower/{name}"), |b| {
            b.iter(|| std::hint::black_box(alang::lower::lower(&program).expect("lowers")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
