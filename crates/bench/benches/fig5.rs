//! Criterion bench: a contended run with migration (the Figure 5 kernel).
use activepy::runtime::ActivePy;
use criterion::{criterion_group, criterion_main, Criterion};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};

fn bench_fig5(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let reference = ActivePy::new()
        .run(&program, &w, &config, ContentionScenario::none())
        .expect("reference");
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .expect("csd work exists");
    let scenario = ContentionScenario::at_time(SimTime::from_secs(t_half), 0.1);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("activepy_migrating_run_q6_10pct", |b| {
        b.iter(|| {
            std::hint::black_box(
                ActivePy::new()
                    .run(&program, &w, &config, scenario)
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
