//! §V, "ActivePy's optimizations in its language runtime": the three-tier
//! ladder between plain interpretation and C.
//!
//! Paper results (host-only, no ISP): the unoptimized Python baseline is
//! 41 % slower than the C baseline; Cython-style compilation shrinks the
//! gap to 20 %; eliminating the redundant memory copies makes the Python
//! program match C, modulo ≈1 % compilation overhead.

use crate::mean;
use alang::compile::CompiledProgram;
use alang::ExecTier;
use csd_sim::SystemConfig;
use isp_baselines::run_host_only;
use serde::Serialize;

/// One workload's ladder.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// C baseline, seconds.
    pub native_secs: f64,
    /// Interpreted / C slowdown.
    pub interpreted_ratio: f64,
    /// Cython-compiled / C slowdown.
    pub compiled_ratio: f64,
    /// Copy-eliminated / C slowdown.
    pub copy_elim_ratio: f64,
    /// Compilation overhead as a fraction of the native run.
    pub compile_overhead_ratio: f64,
}

/// Runs the ladder over the nine Table-I workloads.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    crate::sweep::run_grid(isp_workloads::table1(), |w| {
        let native = run_host_only(&w, config, ExecTier::Native)
            .expect("native")
            .total_secs;
        let interp = run_host_only(&w, config, ExecTier::Interpreted)
            .expect("interpreted")
            .total_secs;
        let compiled = run_host_only(&w, config, ExecTier::Compiled)
            .expect("compiled")
            .total_secs;
        let elim = run_host_only(&w, config, ExecTier::CompiledCopyElim)
            .expect("copy-elim")
            .total_secs;
        let lines = w.program().expect("parse").len();
        Row {
            name: w.name().to_owned(),
            native_secs: native,
            interpreted_ratio: interp / native,
            compiled_ratio: compiled / native,
            copy_elim_ratio: elim / native,
            compile_overhead_ratio: CompiledProgram::compile_secs_for(lines) / native,
        }
    })
}

/// Prints the ladder.
pub fn print(rows: &[Row]) {
    println!("== Runtime optimizations: slowdown vs the C baseline (host only) ==");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "workload", "C-base", "python/C", "cython/C", "copyelim/C", "compile%"
    );
    for r in rows {
        println!(
            "{:<14} {:>7.2}s {:>9.3} {:>9.3} {:>10.3} {:>9.2}%",
            r.name,
            r.native_secs,
            r.interpreted_ratio,
            r.compiled_ratio,
            r.copy_elim_ratio,
            r.compile_overhead_ratio * 100.0
        );
    }
    let i: Vec<f64> = rows.iter().map(|r| r.interpreted_ratio).collect();
    let c: Vec<f64> = rows.iter().map(|r| r.compiled_ratio).collect();
    let e: Vec<f64> = rows.iter().map(|r| r.copy_elim_ratio).collect();
    println!(
        "mean: python {:.2} (paper 1.41), cython {:.2} (paper 1.20), copy-elim {:.2} (paper ~1.01)",
        mean(&i),
        mean(&c),
        mean(&e)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_means_land_near_the_paper() {
        let rows = run(&SystemConfig::paper_default());
        let i = mean(&rows.iter().map(|r| r.interpreted_ratio).collect::<Vec<_>>());
        let c = mean(&rows.iter().map(|r| r.compiled_ratio).collect::<Vec<_>>());
        let e = mean(&rows.iter().map(|r| r.copy_elim_ratio).collect::<Vec<_>>());
        assert!(
            (i - 1.41).abs() < 0.15,
            "interpreted mean {i} vs paper 1.41"
        );
        assert!((c - 1.20).abs() < 0.08, "compiled mean {c} vs paper 1.20");
        assert!(e < 1.02, "copy-elim mean {e} vs paper ~1.01");
        for r in &rows {
            assert!(
                r.copy_elim_ratio <= r.compiled_ratio && r.compiled_ratio < r.interpreted_ratio,
                "{}: ladder inverted",
                r.name
            );
            assert!(
                r.compile_overhead_ratio < 0.05,
                "{}: compile overhead {}",
                r.name,
                r.compile_overhead_ratio
            );
        }
    }
}
