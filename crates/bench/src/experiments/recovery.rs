//! Recovery benchmark: what crash consistency costs and what warm-start
//! persistence buys.
//!
//! Three measurements, all on a fixed faulted workload with real kernel
//! work (200k-element physical arrays, so wall-clock is dominated by
//! compute, not dispatch):
//!
//! 1. **Journal append overhead** — the same run with the execution WAL
//!    attached vs disabled, min-of-rounds. The journal writes one framed
//!    record per execution boundary (host line, region chunk, migration,
//!    reclaim); the target is < 3 % wall-clock overhead.
//! 2. **Resume latency** — a run resumed from a journal cut at 50 % of
//!    its bytes vs the uninterrupted journaled run. Resume re-executes
//!    deterministically and *verifies* the surviving prefix, so it costs
//!    about one run plus replay bookkeeping — the point is that it is
//!    flat (ratio ≈ 1), not proportional to how much had completed.
//! 3. **Warm-start planning** — cold `PlanCache::plan_for` (sampling +
//!    materialization + fit/assign/compile) vs a warm start from a
//!    persisted seed (fit/assign/compile only, zero datagen calls).
//!
//! The same workload backs `repro --journal/--resume`, so the CI
//! kill-resume smoke test and this benchmark exercise one code path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use activepy::exec::{execute, ExecOptions, RunReport};
use activepy::runtime::ActivePy;
use activepy::{ExecJournal, PlanCache};
use alang::builtins::Storage;
use alang::parser::parse;
use alang::value::ArrayVal;
use alang::Value;
use csd_sim::fault::FaultPlan;
use csd_sim::{EngineKind, SystemConfig};
use isp_obs::wal::read_wal;
use serde::Serialize;

/// Fixed seed for the injected transients: same seed, same journal, same
/// BENCH_repro.json.
pub const RECOVERY_SEED: u64 = 0x0E57_0E57;

/// The journaled workload: a mixed pipeline with device-resident scans
/// (region chunk records), host lines (host-line records), and enough
/// arithmetic that kernel work dominates the wall-clock.
const SRC: &str = "a = scan('v')\n\
                   b = (a * 2) + 1\n\
                   c = sum((b * b))\n\
                   d = scan('w')\n\
                   e = abs(d - mean(d))\n\
                   f = sum(e) + c\n\
                   g = (f / 2) + 1\n\
                   h = g * 3\n";

/// Placements: the array pipeline on the CSD, the scalar tail on the
/// host.
const PLACEMENTS: [EngineKind; 8] = [
    EngineKind::Cse,
    EngineKind::Cse,
    EngineKind::Cse,
    EngineKind::Cse,
    EngineKind::Cse,
    EngineKind::Host,
    EngineKind::Host,
    EngineKind::Host,
];

fn storage() -> Storage {
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..200_000).map(|i| f64::from(i % 100)).collect(),
            1_000_000_000,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..200_000).map(|i| f64::from(i % 97) - 48.0).collect(),
            500_000_000,
        )),
    );
    st
}

fn faults() -> FaultPlan {
    FaultPlan::none()
        .with_seed(RECOVERY_SEED)
        .with_flash_read_error_prob(0.05)
        .with_nvme_error_prob(0.05)
        .with_dma_error_prob(0.05)
}

/// One journaled (or journal-disabled) execution of the recovery
/// workload. Shared with `repro --journal/--resume`.
///
/// # Panics
///
/// Panics if the fixed workload fails to execute — it cannot, short of a
/// runtime bug.
#[must_use]
pub fn run_once(journal: ExecJournal) -> RunReport {
    let program = parse(SRC).expect("recovery workload parses");
    let st = storage();
    let mut system = SystemConfig::paper_default().build();
    let opts = ExecOptions::activepy()
        .with_faults(faults())
        .with_journal(journal);
    execute(&program, &st, &PLACEMENTS, &mut system, &opts, None, &[])
        .expect("recovery workload executes")
}

/// The `recovery` section of BENCH_repro.json.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Wall-clock of the run with the journal disabled (min of rounds).
    pub baseline_secs: f64,
    /// Wall-clock of the same run journaling to disk (min of rounds).
    pub journaled_secs: f64,
    /// Journal overhead in percent (target: < 3).
    pub journal_overhead_pct: f64,
    /// Records the uninterrupted journal holds.
    pub journal_records: usize,
    /// Bytes of the uninterrupted journal file.
    pub journal_bytes: u64,
    /// Wall-clock of the uninterrupted journaled run.
    pub cold_run_secs: f64,
    /// Wall-clock of a run resumed from a 50 %-cut journal (replay
    /// verification + append of the missing suffix).
    pub resume_secs: f64,
    /// `resume_secs / cold_run_secs` — flat resume means ≈ 1.
    pub resume_ratio: f64,
    /// Resumed and uninterrupted fingerprints agree. Must be `true`.
    pub resume_fingerprint_match: bool,
    /// Cold planning latency: sampling + materialize + fit/assign/compile.
    pub cold_plan_secs: f64,
    /// Warm planning latency from a persisted seed (min of rounds).
    pub warm_plan_secs: f64,
    /// `cold_plan_secs / warm_plan_secs`.
    pub warm_speedup: f64,
    /// Datagen calls the warm path made. Must be `0`.
    pub warm_datagen_calls: u64,
    /// Warm and cold plan fingerprints agree. Must be `true`.
    pub warm_plan_match: bool,
}

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("activepy_bench_{}_{tag}", std::process::id()))
}

/// Scale-aware input for the warm-start measurement (the plan-cache test
/// family's shape: logical sizes track the scale, physical stays small).
fn plan_input(scale: f64) -> Storage {
    let logical = (scale * 1e9).round().max(100.0) as u64;
    let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(
            (0..actual).map(|i| (i % 100) as f64).collect(),
            logical,
        )),
    );
    st.insert(
        "w",
        Value::Array(ArrayVal::with_logical(
            (0..actual).map(|i| (i % 97) as f64 - 48.0).collect(),
            logical / 2,
        )),
    );
    st
}

/// Runs all three measurements.
///
/// # Panics
///
/// Panics on temp-file I/O failure or if the fixed workload fails.
#[must_use]
pub fn run() -> Report {
    const ROUNDS: usize = 5;

    // 1. Append overhead: disabled vs journaled, min of rounds.
    let mut baseline_secs = f64::INFINITY;
    let mut journaled_secs = f64::INFINITY;
    let wal = temp("overhead.wal");
    for _ in 0..ROUNDS {
        let t = Instant::now();
        std::hint::black_box(run_once(ExecJournal::disabled()));
        baseline_secs = baseline_secs.min(t.elapsed().as_secs_f64());

        let journal = ExecJournal::record_to(&wal).expect("create journal");
        let t = Instant::now();
        std::hint::black_box(run_once(journal));
        journaled_secs = journaled_secs.min(t.elapsed().as_secs_f64());
    }
    let journal_overhead_pct = (journaled_secs / baseline_secs - 1.0) * 100.0;

    // 2. Resume latency: cut the journal at 50 % of its bytes, resume,
    // and compare against the uninterrupted journaled run.
    let journal = ExecJournal::record_to(&wal).expect("create journal");
    let t = Instant::now();
    let full = run_once(journal);
    let cold_run_secs = t.elapsed().as_secs_f64();
    let bytes = std::fs::read(&wal).expect("journal readable");
    let journal_bytes = bytes.len() as u64;
    let journal_records = read_wal(&wal).expect("journal parses").records.len();
    std::fs::write(&wal, &bytes[..bytes.len() / 2]).expect("cut journal");
    let (journal, _) = ExecJournal::resume_from(&wal).expect("resume");
    let t = Instant::now();
    let resumed = run_once(journal);
    let resume_secs = t.elapsed().as_secs_f64();
    std::fs::remove_file(&wal).ok();

    // 3. Warm-start planning.
    let program = parse("a = scan('v')\nb = scan('w')\nc = sum((a * 2))\nd = (c + mean(b))\n")
        .expect("plan workload parses");
    let config = SystemConfig::paper_default();
    let rt = ActivePy::new();
    let cold_cache = PlanCache::new();
    let t = Instant::now();
    let cold_plan = cold_cache
        .plan_for(&rt, "recovery", &program, &plan_input, &config)
        .expect("cold plan");
    let cold_plan_secs = t.elapsed().as_secs_f64();
    let warm_file = temp("warm.bin");
    cold_cache.save_warm(&warm_file).expect("save warm file");

    let warm_datagen_calls = AtomicU64::new(0);
    let counting = |scale: f64| {
        warm_datagen_calls.fetch_add(1, Ordering::Relaxed);
        plan_input(scale)
    };
    let mut warm_plan_secs = f64::INFINITY;
    let mut warm_plan_match = true;
    for _ in 0..ROUNDS {
        // A fresh cache each round so every measurement is a true warm
        // start (a second lookup on the same cache is a plain hit).
        let warm_cache = PlanCache::new();
        warm_cache.load_warm(&warm_file).expect("load warm file");
        let t = Instant::now();
        let warm_plan = warm_cache
            .plan_for(&rt, "recovery", &program, &counting, &config)
            .expect("warm plan");
        warm_plan_secs = warm_plan_secs.min(t.elapsed().as_secs_f64());
        warm_plan_match &=
            activepy::plan_fingerprint(&cold_plan) == activepy::plan_fingerprint(&warm_plan);
    }
    std::fs::remove_file(&warm_file).ok();

    Report {
        baseline_secs,
        journaled_secs,
        journal_overhead_pct,
        journal_records,
        journal_bytes,
        cold_run_secs,
        resume_secs,
        resume_ratio: resume_secs / cold_run_secs,
        resume_fingerprint_match: resumed.values_fingerprint == full.values_fingerprint,
        cold_plan_secs,
        warm_plan_secs,
        warm_speedup: cold_plan_secs / warm_plan_secs,
        warm_datagen_calls: warm_datagen_calls.load(Ordering::Relaxed) / ROUNDS as u64,
        warm_plan_match,
    }
}

/// Prints the recovery benchmark.
pub fn print(r: &Report) {
    println!("== Recovery: journal overhead, resume, warm start ==");
    println!(
        "journal append: baseline {:.3} ms, journaled {:.3} ms ({:+.2}% overhead, target < 3%)",
        r.baseline_secs * 1e3,
        r.journaled_secs * 1e3,
        r.journal_overhead_pct
    );
    println!(
        "journal size:   {} records, {} bytes",
        r.journal_records, r.journal_bytes
    );
    println!(
        "resume:         cold {:.3} ms, resumed-from-50% {:.3} ms ({:.2}x), fingerprints match: {}",
        r.cold_run_secs * 1e3,
        r.resume_secs * 1e3,
        r.resume_ratio,
        r.resume_fingerprint_match
    );
    println!(
        "warm start:     cold plan {:.3} ms, warm plan {:.3} ms ({:.1}x), datagen calls {} (must be 0), plans match: {}",
        r.cold_plan_secs * 1e3,
        r.warm_plan_secs * 1e3,
        r.warm_speedup,
        r.warm_datagen_calls,
        r.warm_plan_match
    );
}

/// Invariant check for CI: wall-clock numbers vary, correctness must
/// not.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check(r: &Report) -> Result<(), String> {
    if !r.resume_fingerprint_match {
        return Err("resumed run diverged from the uninterrupted run".into());
    }
    if !r.warm_plan_match {
        return Err("warm-started plan diverged from the cold plan".into());
    }
    if r.warm_datagen_calls != 0 {
        return Err(format!(
            "warm start performed {} datagen calls (must be 0)",
            r.warm_datagen_calls
        ));
    }
    if r.journal_records == 0 {
        return Err("journaled run produced an empty journal".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_benchmark_holds_its_invariants() {
        let report = run();
        check(&report).expect("recovery invariants");
        // The journaled workload really exercises every record family a
        // region run can emit: chunks dominate, and the host tail lines
        // land too.
        assert!(report.journal_records > 10, "{report:?}");
        assert!(report.journal_bytes > 100, "{report:?}");
    }
}
