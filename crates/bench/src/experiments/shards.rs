//! Shard-scaling sweep: the scatter-gather fleet executor over N ∈
//! {1, 2, 4, 8} CSDs, per workload.
//!
//! Every (workload, N) cell derives its [`activepy::ShardedPlan`] from
//! the *same* cached single-device plan — sampling, fitting, and the
//! full-scale input are produced once per workload and sliced by the
//! [`ShardMap`], never regenerated per shard count ([`RunCounters`]
//! proves it). Speedups are simulated end-to-end latency vs the N=1
//! fleet row, so the sweep is fully deterministic: the floors in
//! [`check`] hold unconditionally, unlike the wall-clock sweeps that
//! gate on host hardware.
//!
//! Two invariants ride along with the scaling numbers:
//!
//! - **Zero fingerprint divergence** — every fleet run's
//!   `values_fingerprint` equals the unsharded single-device run's, for
//!   every workload and every N.
//! - **Per-shard failure isolation** — the chaos cell crashes exactly one
//!   shard's CSE at t=0; that shard alone migrates to the host, the rest
//!   finish on-device, and the answer is unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};

use activepy::runtime::ActivePy;
use activepy::sampling::InputSource;
use activepy::{execute_sharded_plan, FleetReport, PlanCache};
use alang::builtins::Storage;
use alang::shard::{ShardMap, ShardStrategy};
use csd_sim::fault::FaultPlan;
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use serde::Serialize;

/// Fleet sizes the sweep visits, in presentation order.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Workloads in the sweep. The first four carry long rowwise prefixes
/// (the fence sits at or near the final reduction), so their scatter
/// phase dominates and scales with N. TPC-H-1 fences mid-program at its
/// `group_sum` and scales only its scan-filter prefix; PageRank's graph
/// has fewer logical rows than [`alang::shard::SHARD_MIN_ROWS`], so the
/// auto map replicates everything and the fleet buys nothing — and
/// LogGrep's encoded streams replicate rather than shard (wire-format
/// chunks carry no rowwise split), the three known contrasts the floors
/// exclude.
pub const WORKLOADS: [&str; 7] = [
    "blackscholes",
    "TPC-H-6",
    "MatrixMul",
    "LightGBM",
    "TPC-H-1",
    "PageRank",
    "LogGrep",
];

/// The subset of [`WORKLOADS`] whose rowwise prefix dominates; [`check`]
/// holds these to the N=8 speedup floor.
pub const SCALABLE: [&str; 4] = ["blackscholes", "TPC-H-6", "MatrixMul", "LightGBM"];

/// The deterministic speedup floor at N=8 for every [`SCALABLE`]
/// workload.
pub const N8_SPEEDUP_FLOOR: f64 = 2.0;

/// The chaos cell: this workload, this fleet size, this shard crashed.
pub const CHAOS_WORKLOAD: &str = "blackscholes";
/// Fleet size of the chaos cell.
pub const CHAOS_SHARDS: usize = 4;
/// The shard whose CSE crashes at t=0.
pub const CHAOS_SHARD: usize = 2;

/// One (workload, N) cell.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Fleet size.
    pub shards: usize,
    /// Index of the first host-side line (the scatter/gather fence).
    pub fence: usize,
    /// Program length, for reading the fence position.
    pub lines: usize,
    /// End-to-end simulated latency.
    pub total_secs: f64,
    /// Scatter phase (max over the concurrent shard devices).
    pub scatter_secs: f64,
    /// Concurrent carrier gather under the shared host-link budget.
    pub gather_secs: f64,
    /// Ordered host-side combine.
    pub combine_secs: f64,
    /// Host-side fence-and-after phase.
    pub tail_secs: f64,
    /// Bytes gathered across all shards.
    pub gathered_bytes: u64,
    /// Shards that finished their scatter on-device.
    pub shards_on_device: usize,
    /// Speedup vs this workload's N=1 fleet row.
    pub speedup: f64,
    /// Whether the fingerprint matched the unsharded single-device run.
    pub fingerprint_ok: bool,
}

/// The chaos cell's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct Chaos {
    /// Workload name.
    pub name: String,
    /// Fleet size.
    pub shards: usize,
    /// The shard whose CSE crashed at t=0.
    pub faulted_shard: usize,
    /// Whether the crashed shard (and only it) migrated to the host.
    pub faulted_migrated: bool,
    /// Whether every other shard finished on-device.
    pub healthy_on_device: bool,
    /// Whether the answer matched the fault-free fleet run.
    pub fingerprint_ok: bool,
    /// CSE crashes the injectors actually delivered (must be 1).
    pub injected_crashes: u64,
    /// End-to-end latency of the chaotic run.
    pub total_secs: f64,
    /// End-to-end latency of the fault-free twin.
    pub healthy_secs: f64,
}

/// The sweep's full result.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Every (workload, N) cell, workload-major in [`SHARD_COUNTS`]
    /// order.
    pub rows: Vec<Row>,
    /// The one-shard-crash isolation cell.
    pub chaos: Chaos,
    /// Full-scale input generations observed — one per workload when the
    /// hoist holds.
    pub full_datagens: usize,
    /// Cells whose fingerprint diverged from the unsharded run (must be
    /// zero).
    pub fingerprint_divergences: usize,
}

/// Counts full-scale input materializations; the datagen-hoist test
/// asserts exactly one per workload across the whole sweep.
#[derive(Debug, Default)]
pub struct RunCounters {
    /// `storage_at(1.0)` calls seen by the sweep's input sources.
    pub full_datagens: AtomicUsize,
}

/// An [`InputSource`] that counts full-scale materializations before
/// delegating to the workload's generator. Sampling-scale calls (2⁻¹⁰…)
/// pass through uncounted — the hoist invariant is about the expensive
/// full dataset, which the base plan materializes once and every shard
/// count reuses through the [`ShardMap`].
struct CountingSource<'a> {
    inner: &'a isp_workloads::Workload,
    counter: &'a AtomicUsize,
}

impl InputSource for CountingSource<'_> {
    fn storage_at(&self, scale: f64) -> Storage {
        if scale >= 1.0 {
            self.counter.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.storage_at(scale)
    }
}

/// Runs the default sweep with a private plan cache.
///
/// # Panics
///
/// Panics if a registered workload fails to plan or run.
#[must_use]
pub fn run() -> Report {
    run_with(&PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`], so a full repro run samples
/// each workload once across figures *and* fleet sizes.
///
/// # Panics
///
/// Panics if a registered workload fails to plan or run.
#[must_use]
pub fn run_with(cache: &PlanCache) -> Report {
    run_configured(&WORKLOADS, &SHARD_COUNTS, cache, &RunCounters::default())
}

/// The configurable sweep core: `workloads` × `counts` cells plus the
/// chaos cell, against `cache`, with datagen counting.
///
/// # Panics
///
/// Panics if a named workload is unregistered or fails to plan or run.
#[must_use]
pub fn run_configured(
    workloads: &[&str],
    counts: &[usize],
    cache: &PlanCache,
    counters: &RunCounters,
) -> Report {
    let config = SystemConfig::paper_default();
    let rt = ActivePy::new();
    let mut rows = Vec::new();
    let mut divergences = 0usize;
    for name in workloads {
        let w = isp_workloads::by_name(name).expect("registered workload");
        let program = w.program().expect("registered workloads parse");
        let source = CountingSource {
            inner: &w,
            counter: &counters.full_datagens,
        };
        // Hoisted per workload: one sampling pass, one full-scale input.
        // Every fleet size below derives from this plan and slices the
        // same dataset through its ShardMap.
        let base = cache
            .plan_for(&rt, w.name(), &program, &source, &config)
            .expect("planning succeeds");
        let unsharded = rt
            .execute_plan(&base, &config, ContentionScenario::none())
            .expect("unsharded reference");
        let mut one_secs = None;
        for &n in counts {
            let map = ShardMap::auto(&base.full_storage, n, ShardStrategy::Range);
            let plan = cache
                .sharded_plan_for(&rt, w.name(), &program, &source, &config, &map)
                .expect("sharded planning succeeds");
            let report = execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &[])
                .expect("fleet run succeeds");
            let fingerprint_ok = report.values_fingerprint == unsharded.report.values_fingerprint;
            if !fingerprint_ok {
                divergences += 1;
            }
            let base_secs = *one_secs.get_or_insert(report.total_secs);
            rows.push(Row {
                name: w.name().to_owned(),
                shards: n,
                fence: report.fence,
                lines: program.len(),
                total_secs: report.total_secs,
                scatter_secs: report.scatter_secs,
                gather_secs: report.gather_secs,
                combine_secs: report.combine_secs,
                tail_secs: report.tail_secs,
                gathered_bytes: report.gathered_bytes,
                shards_on_device: report.shards_on_device(),
                speedup: base_secs / report.total_secs,
                fingerprint_ok,
            });
        }
    }
    let chaos = run_chaos(&rt, cache, &config, counters);
    Report {
        rows,
        chaos,
        full_datagens: counters.full_datagens.load(Ordering::Relaxed),
        fingerprint_divergences: divergences,
    }
}

/// The failure-isolation cell: crash [`CHAOS_SHARD`]'s CSE at t=0 in a
/// [`CHAOS_SHARDS`]-device fleet and compare against the fault-free twin.
fn run_chaos(
    rt: &ActivePy,
    cache: &PlanCache,
    config: &SystemConfig,
    counters: &RunCounters,
) -> Chaos {
    let w = isp_workloads::by_name(CHAOS_WORKLOAD).expect("registered workload");
    let program = w.program().expect("registered workloads parse");
    let source = CountingSource {
        inner: &w,
        counter: &counters.full_datagens,
    };
    let base = cache
        .plan_for(rt, w.name(), &program, &source, config)
        .expect("planning succeeds");
    let map = ShardMap::auto(&base.full_storage, CHAOS_SHARDS, ShardStrategy::Range);
    let plan = cache
        .sharded_plan_for(rt, w.name(), &program, &source, config, &map)
        .expect("sharded planning succeeds");
    let healthy = execute_sharded_plan(rt, &plan, config, ContentionScenario::none(), &[])
        .expect("healthy fleet run");
    let mut faults = vec![FaultPlan::none(); CHAOS_SHARDS];
    faults[CHAOS_SHARD] = FaultPlan::none().with_crash_at(SimTime::from_secs(0.0));
    let chaotic = execute_sharded_plan(rt, &plan, config, ContentionScenario::none(), &faults)
        .expect("chaotic fleet run completes");
    Chaos {
        name: w.name().to_owned(),
        shards: CHAOS_SHARDS,
        faulted_shard: CHAOS_SHARD,
        faulted_migrated: chaotic.shards[CHAOS_SHARD].report.migration.is_some(),
        healthy_on_device: chaotic
            .shards
            .iter()
            .filter(|s| s.shard != CHAOS_SHARD)
            .all(|s| s.report.migration.is_none()),
        fingerprint_ok: chaotic.values_fingerprint == healthy.values_fingerprint,
        injected_crashes: chaotic.injected.cse_crashes,
        total_secs: chaotic.total_secs,
        healthy_secs: healthy.total_secs,
    }
}

/// Convenience accessor used by the CI smoke gate: the fleet report of
/// one workload at one shard count against a private cache.
///
/// # Panics
///
/// Panics if the workload is unregistered or fails to plan or run.
#[must_use]
pub fn run_one(name: &str, n: usize) -> FleetReport {
    let config = SystemConfig::paper_default();
    let rt = ActivePy::new();
    let cache = PlanCache::new();
    let w = isp_workloads::by_name(name).expect("registered workload");
    let program = w.program().expect("registered workloads parse");
    let base = cache
        .plan_for(&rt, w.name(), &program, &w, &config)
        .expect("planning succeeds");
    let map = ShardMap::auto(&base.full_storage, n, ShardStrategy::Range);
    let plan = cache
        .sharded_plan_for(&rt, w.name(), &program, &w, &config, &map)
        .expect("sharded planning succeeds");
    execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &[])
        .expect("fleet run succeeds")
}

/// The sweep's deterministic acceptance floors. Simulated time is exact,
/// so these hold on any host, unlike the wall-clock sweeps.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn check(report: &Report) -> Result<(), String> {
    if report.fingerprint_divergences != 0 {
        return Err(format!(
            "{} cells diverged from the unsharded fingerprint",
            report.fingerprint_divergences
        ));
    }
    if let Some(bad) = report.rows.iter().find(|r| !r.fingerprint_ok) {
        return Err(format!("{} N={} changed the answer", bad.name, bad.shards));
    }
    for row in &report.rows {
        if SCALABLE.contains(&row.name.as_str())
            && row.shards == 8
            && row.speedup < N8_SPEEDUP_FLOOR
        {
            return Err(format!(
                "{} N=8 speedup {:.2}x under the {N8_SPEEDUP_FLOOR:.1}x floor",
                row.name, row.speedup
            ));
        }
        if row.speedup < 0.95 && SCALABLE.contains(&row.name.as_str()) {
            return Err(format!(
                "{} N={} regressed below N=1: {:.2}x",
                row.name, row.shards, row.speedup
            ));
        }
    }
    let c = &report.chaos;
    if !c.fingerprint_ok {
        return Err(format!(
            "chaos cell ({} N={}, shard {} crashed) changed the answer",
            c.name, c.shards, c.faulted_shard
        ));
    }
    if !c.faulted_migrated || c.injected_crashes != 1 {
        return Err(format!(
            "the crashed shard must migrate exactly once: migrated={}, crashes={}",
            c.faulted_migrated, c.injected_crashes
        ));
    }
    if !c.healthy_on_device {
        return Err("a healthy shard left its device during the chaos cell".to_owned());
    }
    Ok(())
}

/// Prints the sweep in a per-workload table plus the chaos line.
pub fn print(report: &Report) {
    println!("== Shard scaling: scatter-gather fleet, N in {SHARD_COUNTS:?} ==");
    println!(
        "{:<14} {:>2} {:>6} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>6} {:>4}",
        "workload", "N", "fence", "total", "scatter", "gather", "combine", "tail", "x", "fp", "dev"
    );
    for r in &report.rows {
        println!(
            "{:<14} {:>2} {:>3}/{:<2} {:>8.3}s {:>8.3}s {:>7.3}s {:>7.3}s {:>7.3}s {:>6.2}x {:>6} {:>4}",
            r.name,
            r.shards,
            r.fence,
            r.lines,
            r.total_secs,
            r.scatter_secs,
            r.gather_secs,
            r.combine_secs,
            r.tail_secs,
            r.speedup,
            if r.fingerprint_ok { "ok" } else { "DIV" },
            r.shards_on_device,
        );
    }
    let at_eight: Vec<f64> = report
        .rows
        .iter()
        .filter(|r| r.shards == 8 && SCALABLE.contains(&r.name.as_str()))
        .map(|r| r.speedup)
        .collect();
    if !at_eight.is_empty() {
        println!(
            "geomean speedup at N=8 over the scalable set: {:.2}x (floor {:.1}x each)",
            crate::geomean(&at_eight),
            N8_SPEEDUP_FLOOR
        );
    }
    let c = &report.chaos;
    println!(
        "chaos: {} N={}, shard {} CSE crash at t=0 -> migrated={}, others on-device={}, \
         answer ok={}, {:.3}s vs healthy {:.3}s",
        c.name,
        c.shards,
        c.faulted_shard,
        c.faulted_migrated,
        c.healthy_on_device,
        c.fingerprint_ok,
        c.total_secs,
        c.healthy_secs
    );
    println!(
        "(full-scale datagens this sweep: {} — at most one per workload, reused \
         across every N; 0 when earlier figures already planned the bases)",
        report.full_datagens
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep: two workloads (one scalable, one fence-limited)
    /// at N ∈ {1, 2}, plus the chaos cell — cheap enough for the unit
    /// suite while exercising every code path of the full sweep.
    #[test]
    fn smoke_sweep_holds_invariants_with_one_datagen_per_workload() {
        let cache = PlanCache::new();
        let counters = RunCounters::default();
        let report = run_configured(
            &["blackscholes", "PageRank", "LogGrep"],
            &[1, 2],
            &cache,
            &counters,
        );
        assert_eq!(report.rows.len(), 6);
        assert_eq!(report.fingerprint_divergences, 0);
        assert!(report.rows.iter().all(|r| r.fingerprint_ok));
        // Satellite invariant: the full dataset is generated once per
        // workload and sliced by the ShardMap for every fleet size —
        // including the chaos cell, which reuses blackscholes' plan.
        assert_eq!(
            report.full_datagens, 3,
            "one full-scale datagen per workload across all N"
        );
        let bs2 = report
            .rows
            .iter()
            .find(|r| r.name == "blackscholes" && r.shards == 2)
            .expect("blackscholes N=2 row");
        assert!(
            bs2.speedup > 1.2,
            "two devices must beat one on a scatter-dominated workload: {:.2}x",
            bs2.speedup
        );
        assert!(
            bs2.fence >= bs2.lines - 1,
            "blackscholes fences at its tail"
        );
        // PageRank's graph sits under SHARD_MIN_ROWS: the auto map
        // replicates everything, no line is sharded (fence = len), and a
        // bigger fleet buys nothing.
        let pr2 = report
            .rows
            .iter()
            .find(|r| r.name == "PageRank" && r.shards == 2)
            .expect("PageRank N=2 row");
        assert_eq!(pr2.fence, pr2.lines, "nothing shardable, so no fence");
        assert!(
            (pr2.speedup - 1.0).abs() < 0.05,
            "a fully replicated workload cannot scale: {:.2}x",
            pr2.speedup
        );
        // LogGrep's encoded streams replicate the same way: the sharded
        // run stays byte-identical but the fleet buys nothing.
        let lg2 = report
            .rows
            .iter()
            .find(|r| r.name == "LogGrep" && r.shards == 2)
            .expect("LogGrep N=2 row");
        assert!(lg2.fingerprint_ok, "{lg2:?}");
        assert_eq!(lg2.fence, lg2.lines, "encoded datasets never shard");
        assert!(
            (lg2.speedup - 1.0).abs() < 0.05,
            "replicated wire-format workload cannot scale: {:.2}x",
            lg2.speedup
        );
        // The chaos cell: exactly one shard crashed, it alone migrated,
        // and the answer is byte-identical.
        let c = &report.chaos;
        assert!(c.faulted_migrated, "{c:?}");
        assert!(c.healthy_on_device, "{c:?}");
        assert!(c.fingerprint_ok, "{c:?}");
        assert_eq!(c.injected_crashes, 1, "{c:?}");
        assert!(c.total_secs >= c.healthy_secs, "{c:?}");
    }
}
