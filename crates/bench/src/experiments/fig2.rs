//! Figure 2: a static, C-based ISP platform (Summarizer-style) optimized
//! for 100 % CSE availability, re-run as the available CSE time shrinks.
//!
//! Paper result: the three TPC-H workloads are ≈1.25× faster than the
//! no-CSD baseline at 100 % availability, but the same fixed offload
//! *loses* to the baseline once less than ≈60 % of the CSE is available.

use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{best_static_plan, run_c_baseline, run_plan};
use serde::Serialize;

/// Availability levels swept (fraction of CSE time available).
pub const AVAILABILITIES: [f64; 10] = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];

/// One workload's sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Baseline (no-CSD, C) latency in simulated seconds.
    pub baseline_secs: f64,
    /// Speedup over the baseline at each availability level, in
    /// [`AVAILABILITIES`] order.
    pub speedups: Vec<f64>,
}

impl Row {
    /// The availability below which the static plan loses to the baseline
    /// (linear interpolation between sweep points), if it loses at all.
    #[must_use]
    pub fn crossover(&self) -> Option<f64> {
        for i in 1..AVAILABILITIES.len() {
            let (s0, s1) = (self.speedups[i - 1], self.speedups[i]);
            if s0 >= 1.0 && s1 < 1.0 {
                let (a0, a1) = (AVAILABILITIES[i - 1], AVAILABILITIES[i]);
                let t = (s0 - 1.0) / (s0 - s1);
                return Some(a0 + t * (a1 - a0));
            }
        }
        None
    }
}

/// Runs the sweep for the paper's three TPC-H workloads.
///
/// # Panics
///
/// Panics if a registered workload fails to run (a bug, not an input
/// condition).
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    let names = vec!["TPC-H-1", "TPC-H-6", "TPC-H-14"];
    crate::sweep::run_grid(names, |name| {
        let w = isp_workloads::by_name(name).expect("TPC-H workloads are registered");
        let baseline = run_c_baseline(&w, config)
            .expect("baseline runs")
            .total_secs;
        let plan = best_static_plan(&w, config).expect("plan search succeeds");
        let speedups = AVAILABILITIES
            .iter()
            .map(|&avail| {
                let scenario = if avail >= 1.0 {
                    ContentionScenario::none()
                } else {
                    ContentionScenario::constant(avail)
                };
                let t = run_plan(&w, config, &plan, scenario)
                    .expect("plan re-runs")
                    .total_secs;
                baseline / t
            })
            .collect();
        Row {
            name: name.to_owned(),
            baseline_secs: baseline,
            speedups,
        }
    })
}

/// Prints the sweep in the figure's layout.
pub fn print(rows: &[Row]) {
    println!("== Fig 2: static C-ISP speedup vs available CSE time ==");
    print!("{:<10}", "workload");
    for a in AVAILABILITIES {
        print!(" {:>6.0}%", a * 100.0);
    }
    println!("  crossover");
    for r in rows {
        print!("{:<10}", r.name);
        for s in &r.speedups {
            print!(" {s:>6.2}x");
        }
        match r.crossover() {
            Some(c) => println!("  ~{:.0}%", c * 100.0),
            None => println!("  none"),
        }
    }
    println!("(paper: ~1.25x at 100%, and the optimized workloads lose below ~60% availability)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let rows = run(&SystemConfig::paper_default());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Wins at full availability, in the paper's rough band.
            assert!(
                r.speedups[0] > 1.1 && r.speedups[0] < 2.0,
                "{}: 100% speedup {} out of band",
                r.name,
                r.speedups[0]
            );
            // Monotone degradation.
            for w in r.speedups.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{}: non-monotone {w:?}", r.name);
            }
            // Loses hard at 10%.
            assert!(
                *r.speedups.last().expect("non-empty") < 0.6,
                "{}: still {}x at 10%",
                r.name,
                r.speedups.last().expect("non-empty")
            );
            // Crossover in the paper's 30-70% region.
            let c = r.crossover().expect("must lose somewhere");
            assert!(c > 0.25 && c < 0.75, "{}: crossover {c}", r.name);
        }
    }
}
