//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod adapt;
pub mod audit;
pub mod decode;
pub mod faults;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod flexibility;
pub mod prediction;
pub mod recovery;
pub mod runtime_opt;
pub mod scaling;
pub mod shards;
pub mod table1;
