//! Planner-audit calibration sweep: every workload's Eq. 1 predictions
//! joined against measured costs, clean and contended.
//!
//! For each registered workload the sweep plans once and executes three
//! cells:
//!
//! * **clean / unaudited** — the reference run; fixes the
//!   `values_fingerprint` every other cell must reproduce.
//! * **clean / audited** — the same plan re-executed with a live tracer,
//!   a profile recorder, and a full [`activepy::calibrate`] +
//!   `publish_to` pass. Audit is observation-only, so any fingerprint
//!   divergence here is a bug the sweep counts and the smoke gate fails
//!   on.
//! * **contended** — the plan under a 10 % availability burst from t=0
//!   with migration disabled, so the measured device costs balloon while
//!   the placement stays where Algorithm 1 put it. Calibrating this cell
//!   (joined against the recorded profile) is where the counterfactual
//!   "would Algorithm 1 have flipped this line?" question produces
//!   actual flips.
//!
//! The smoke gate (`repro --audit`) asserts: zero fingerprint
//! divergences, every line audited, clean-cell mean error inside the
//! pinned band, and at least one explained counterfactual flip across
//! the grid.

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::PlanCache;
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use serde::Serialize;

/// Residual CSE availability in the contended cell.
pub const BURST_FRACTION: f64 = 0.10;

/// Pinned per-workload band on the clean cell's mean absolute relative
/// time error, parts per million. Uncontended predictions come from the
/// same cost model the simulator executes, so the residual is fitting
/// error — and the sampling-scale extrapolation residual is genuinely
/// large for super-linear workloads (MixedGEMM's O(n³) tiles sit near
/// 56 %), which is exactly what the observatory exists to expose.
pub const CLEAN_ERR_BAND_PPM: u64 = 700_000;

/// Pinned band on the grid-wide mean clean error (measured ≈ 21 %).
pub const MEAN_CLEAN_ERR_BAND_PPM: u64 = 350_000;

/// One workload's calibration cells.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Lines joined in each calibration (every executed line).
    pub lines_audited: usize,
    /// Whether the plan put any line on the CSD.
    pub offloaded: bool,
    /// Clean cell: mean absolute relative time error, ppm.
    pub clean_err_ppm: u64,
    /// Clean cell: counterfactual flips. Nonzero where the fitting
    /// residual alone already moves a line across Eq. 1's break-even —
    /// the super-linear workloads.
    pub clean_flips: usize,
    /// Contended cell: mean absolute relative time error, ppm.
    pub contended_err_ppm: u64,
    /// Contended cell: counterfactual flips.
    pub contended_flips: usize,
    /// Profile version the contended calibration joined against.
    pub profile_version: u64,
    /// First contended flip's explanation (empty when none flipped).
    pub flip_explanation: String,
    /// Whether every cell reproduced the reference fingerprint.
    pub values_match: bool,
}

/// The full sweep plus the aggregates the smoke gate asserts on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// One row per workload.
    pub rows: Vec<Row>,
    /// Σ lines audited across all cells.
    pub lines_audited: u64,
    /// Σ counterfactual flips in the contended cells.
    pub counterfactual_flips: u64,
    /// Cells whose `values_fingerprint` diverged with audit enabled.
    /// Must be 0.
    pub fingerprint_divergences: usize,
    /// Mean clean-cell error across workloads, ppm.
    pub mean_clean_err_ppm: u64,
    /// One explained flip, for the report reader.
    pub flip_example: String,
}

/// Runs one workload's three cells (see module docs).
fn run_workload(w: &isp_workloads::Workload, config: &SystemConfig) -> Row {
    let program = w.program().expect("registered workloads parse");
    // Private cache: the profile recording below bumps the store's
    // version, and leaking a refit into a shared cache would change
    // another experiment's plans.
    let cache = PlanCache::new();
    let rt = ActivePy::new();
    let plan = cache
        .plan_for(&rt, w.name(), &program, w, config)
        .expect("planning succeeds");

    // Clean, unaudited: the reference fingerprint.
    let reference = rt
        .execute_plan(&plan, config, ContentionScenario::none())
        .expect("reference run");
    let reference_fp = reference.report.values_fingerprint;

    // Clean, audited: live tracer + profile recorder + calibration pass.
    let (tracer, _sink) = isp_obs::Tracer::to_memory();
    let audited_rt = ActivePy::with_options(
        ActivePyOptions::default()
            .with_tracer(tracer.clone())
            .with_profile(cache.recorder_for(&rt, w.name(), w, config)),
    );
    let audited = audited_rt
        .execute_plan(&plan, config, ContentionScenario::none())
        .expect("audited run");
    let clean = activepy::calibrate(w.name(), &plan, &audited.report, None);
    clean.publish_to(&tracer);

    // Contended, migration disabled: measured device costs balloon while
    // the placement stays put — the flip-producing cell.
    let key = PlanCache::key_for(&rt, w.name(), w, config);
    let profile = cache.profiles().profile(&key);
    let static_rt = ActivePy::with_options(ActivePyOptions::default().without_migration());
    let scenario = ContentionScenario::at_time(SimTime::from_secs(0.0), BURST_FRACTION);
    let contended_run = static_rt
        .execute_plan(&plan, config, scenario)
        .expect("contended run");
    let contended = activepy::calibrate(w.name(), &plan, &contended_run.report, Some(&profile));

    let ppm = |r: &activepy::CalibrationReport| (r.mean_abs_rel_err() * 1e6).round() as u64;
    let values_match = audited.report.values_fingerprint == reference_fp
        && contended_run.report.values_fingerprint == reference_fp;
    Row {
        name: w.name().to_owned(),
        lines_audited: clean.lines.len(),
        offloaded: !plan.assignment.csd_lines.is_empty(),
        clean_err_ppm: ppm(&clean),
        clean_flips: clean.flips.len(),
        contended_err_ppm: ppm(&contended),
        contended_flips: contended.flips.len(),
        profile_version: contended.profile_version,
        flip_explanation: contended
            .flips
            .first()
            .map(|f| f.explanation.clone())
            .unwrap_or_default(),
        values_match,
    }
}

/// Builds the [`Report`] aggregates from finished rows.
fn aggregate(rows: Vec<Row>) -> Report {
    let lines_audited = rows.iter().map(|r| 2 * r.lines_audited as u64).sum();
    let counterfactual_flips = rows.iter().map(|r| r.contended_flips as u64).sum();
    let fingerprint_divergences = rows.iter().filter(|r| !r.values_match).count();
    let mean_clean_err_ppm = if rows.is_empty() {
        0
    } else {
        rows.iter().map(|r| r.clean_err_ppm).sum::<u64>() / rows.len() as u64
    };
    let flip_example = rows
        .iter()
        .find(|r| !r.flip_explanation.is_empty())
        .map(|r| r.flip_explanation.clone())
        .unwrap_or_default();
    Report {
        rows,
        lines_audited,
        counterfactual_flips,
        fingerprint_divergences,
        mean_clean_err_ppm,
        flip_example,
    }
}

/// Runs the calibration sweep over every registered workload.
///
/// # Panics
///
/// Panics if a registered workload fails to plan or run.
#[must_use]
pub fn run(config: &SystemConfig) -> Report {
    let rows = crate::sweep::run_grid(isp_workloads::full_set(), |w| run_workload(&w, config));
    aggregate(rows)
}

/// Runs the sweep for a single workload by name, or `None` if the name
/// matches nothing.
#[must_use]
pub fn run_one(name: &str, config: &SystemConfig) -> Option<Report> {
    let w = isp_workloads::by_name(name)?;
    Some(aggregate(vec![run_workload(&w, config)]))
}

/// Checks the sweep's audit invariants; `Err` describes the violation.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check(report: &Report) -> Result<(), String> {
    if report.fingerprint_divergences != 0 {
        return Err(format!(
            "{} cells diverged from the reference fingerprint with audit enabled",
            report.fingerprint_divergences
        ));
    }
    for r in &report.rows {
        if r.lines_audited == 0 {
            return Err(format!("{}: no lines audited", r.name));
        }
        if r.clean_err_ppm > CLEAN_ERR_BAND_PPM {
            return Err(format!(
                "{}: clean-cell error {}ppm beyond the pinned {}ppm band",
                r.name, r.clean_err_ppm, CLEAN_ERR_BAND_PPM
            ));
        }
        if r.offloaded && r.contended_flips == 0 {
            return Err(format!(
                "{}: 10% availability must flip at least one offloaded line",
                r.name
            ));
        }
        if r.clean_flips > r.contended_flips {
            return Err(format!(
                "{}: more flips clean ({}) than contended ({})",
                r.name, r.clean_flips, r.contended_flips
            ));
        }
    }
    if report.mean_clean_err_ppm > MEAN_CLEAN_ERR_BAND_PPM {
        return Err(format!(
            "grid mean clean error {}ppm beyond the pinned {}ppm band",
            report.mean_clean_err_ppm, MEAN_CLEAN_ERR_BAND_PPM
        ));
    }
    if report.rows.len() > 1 && report.counterfactual_flips == 0 {
        return Err("no workload flipped under the contended cell".to_owned());
    }
    if report.counterfactual_flips > 0 && report.flip_example.is_empty() {
        return Err("flips detected but none carries an explanation".to_owned());
    }
    Ok(())
}

/// Prints the sweep as a table plus the aggregate line.
pub fn print(report: &Report) {
    println!(
        "== Planner audit: Eq. 1 predicted vs measured (contended cell at \
         {BURST_FRACTION} availability) =="
    );
    println!(
        "{:<14} {:>5} {:>5} {:>10} {:>6} {:>10} {:>6} {:>5} {:>6}",
        "workload", "lines", "csd", "cleanErr", "flips", "contErr", "flips", "prof", "match"
    );
    for r in &report.rows {
        println!(
            "{:<14} {:>5} {:>5} {:>7}ppm {:>6} {:>7}ppm {:>6} {:>5} {:>6}",
            r.name,
            r.lines_audited,
            if r.offloaded { "yes" } else { "no" },
            r.clean_err_ppm,
            r.clean_flips,
            r.contended_err_ppm,
            r.contended_flips,
            r.profile_version,
            if r.values_match { "ok" } else { "WRONG" },
        );
    }
    println!(
        "audited {} line-cells | {} counterfactual flips | {} divergences | \
         mean clean error {}ppm",
        report.lines_audited,
        report.counterfactual_flips,
        report.fingerprint_divergences,
        report.mean_clean_err_ppm
    );
    if !report.flip_example.is_empty() {
        println!("example flip: {}", report.flip_example);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focused_sweep_calibrates_and_flips() {
        let config = SystemConfig::paper_default();
        let report = run_one("TPC-H-6", &config).expect("workload exists");
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!(r.values_match, "{r:?}");
        assert!(r.lines_audited > 0);
        assert_eq!(r.clean_flips, 0, "{r:?}");
        assert!(r.clean_err_ppm <= CLEAN_ERR_BAND_PPM, "{r:?}");
        assert!(r.contended_flips > 0, "{r:?}");
        assert_eq!(r.profile_version, 1, "{r:?}");
        assert!(report.flip_example.contains("measured costs favor host"));
        assert!(run_one("no-such-workload", &config).is_none());
    }
}
