//! Figure 5: all workloads under 50 % and 10 % CSE availability, the
//! contention arriving "right after each application's ISP tasks make 50 %
//! of their progress", with and without dynamic task migration.
//!
//! Paper results at 10 % availability: ActivePy with migration outperforms
//! ActivePy without migration by 2.82×; relative to the no-CSD baseline it
//! suffers only ≈8 % average slowdown, while the migration-less
//! configuration loses 67 % on average (up to 88 %).

use crate::geomean;
use activepy::runtime::{ActivePy, ActivePyOptions};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::run_c_baseline;
use serde::Serialize;

/// One workload under one availability level.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Fraction of the CSD available after the stress begins.
    pub availability: f64,
    /// No-CSD baseline, seconds.
    pub baseline_secs: f64,
    /// ActivePy with migration, seconds.
    pub with_migration_secs: f64,
    /// ActivePy without migration, seconds.
    pub without_migration_secs: f64,
    /// Whether a migration actually occurred.
    pub migrated: bool,
    /// Speedup over baseline with migration.
    pub with_speedup: f64,
    /// Speedup over baseline without migration.
    pub without_speedup: f64,
}

/// Aggregates for one availability level.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Availability level.
    pub availability: f64,
    /// Geomean speedup with migration.
    pub with_geomean: f64,
    /// Geomean speedup without migration.
    pub without_geomean: f64,
    /// Migration-vs-no-migration advantage.
    pub migration_advantage: f64,
    /// Mean performance loss (1 − speedup) without migration.
    pub mean_loss_without: f64,
    /// Worst performance loss without migration.
    pub max_loss_without: f64,
}

/// Runs one workload under the Figure 5 protocol: an uncontended reference
/// run fixes the absolute time at which half the CSD work is done, then
/// the contended runs start the stress at exactly that time.
fn run_one(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    availability: f64,
) -> Row {
    let program = w.program().expect("registered workloads parse");
    let baseline = run_c_baseline(w, config).expect("baseline runs").total_secs;
    let reference = ActivePy::new()
        .run(&program, w, config, ContentionScenario::none())
        .expect("reference run");
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .unwrap_or(reference.report.total_secs * 0.5);
    let scenario = ContentionScenario::at_time(SimTime::from_secs(t_half), availability);
    let with_mig = ActivePy::new()
        .run(&program, w, config, scenario)
        .expect("migrating run");
    let without_mig = ActivePy::with_options(ActivePyOptions::default().without_migration())
        .run(&program, w, config, scenario)
        .expect("static run");
    Row {
        name: w.name().to_owned(),
        availability,
        baseline_secs: baseline,
        with_migration_secs: with_mig.report.total_secs,
        without_migration_secs: without_mig.report.total_secs,
        migrated: with_mig.report.migration.is_some(),
        with_speedup: baseline / with_mig.report.total_secs,
        without_speedup: baseline / without_mig.report.total_secs,
    }
}

/// Runs the full Figure 5 grid (10 workloads × {50 %, 10 %}).
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for availability in [0.5, 0.1] {
        for w in isp_workloads::with_sparsemv() {
            rows.push(run_one(&w, config, availability));
        }
    }
    rows
}

/// Summarizes one availability level's rows.
///
/// # Panics
///
/// Panics if `rows` contains no entry at `availability`.
#[must_use]
pub fn summarize(rows: &[Row], availability: f64) -> Summary {
    let level: Vec<&Row> =
        rows.iter().filter(|r| (r.availability - availability).abs() < 1e-9).collect();
    assert!(!level.is_empty(), "no rows at availability {availability}");
    let with: Vec<f64> = level.iter().map(|r| r.with_speedup).collect();
    let without: Vec<f64> = level.iter().map(|r| r.without_speedup).collect();
    let losses: Vec<f64> = without.iter().map(|s| 1.0 - s.min(1.0)).collect();
    Summary {
        availability,
        with_geomean: geomean(&with),
        without_geomean: geomean(&without),
        migration_advantage: geomean(&with) / geomean(&without),
        mean_loss_without: crate::mean(&losses),
        max_loss_without: losses.iter().copied().fold(0.0, f64::max),
    }
}

/// Prints the grid in the figure's layout.
pub fn print(rows: &[Row]) {
    println!("== Fig 5: contention at 50% of ISP progress, +/- migration ==");
    for availability in [0.5, 0.1] {
        println!("-- {}% CSD available --", availability * 100.0);
        println!(
            "{:<14} {:>8} {:>10} {:>7} {:>10} {:>7} {:>9}",
            "workload", "C-base", "w/mig", "x", "w/o-mig", "x", "migrated"
        );
        for r in rows.iter().filter(|r| (r.availability - availability).abs() < 1e-9) {
            println!(
                "{:<14} {:>7.2}s {:>9.2}s {:>6.2}x {:>9.2}s {:>6.2}x {:>9}",
                r.name,
                r.baseline_secs,
                r.with_migration_secs,
                r.with_speedup,
                r.without_migration_secs,
                r.without_speedup,
                if r.migrated { "yes" } else { "no" },
            );
        }
        let s = summarize(rows, availability);
        println!(
            "geomean: w/mig {:.2}x, w/o {:.2}x, advantage {:.2}x; loss w/o mig: mean {:.0}%, max {:.0}%",
            s.with_geomean,
            s.without_geomean,
            s.migration_advantage,
            s.mean_loss_without * 100.0,
            s.max_loss_without * 100.0
        );
    }
    println!(
        "(paper @10%: advantage 2.82x, ~8% avg slowdown with migration, 67% avg / 88% max loss without)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_availability_matches_the_paper() {
        let config = SystemConfig::paper_default();
        let rows: Vec<Row> = isp_workloads::with_sparsemv()
            .iter()
            .map(|w| run_one(w, &config, 0.1))
            .collect();
        let s = summarize(&rows, 0.1);
        // With migration: a modest slowdown vs baseline (paper ~8%).
        assert!(
            s.with_geomean > 0.8 && s.with_geomean <= 1.05,
            "with-migration geomean {} should sit near 0.92",
            s.with_geomean
        );
        // Without: severe losses (paper avg 67%, max 88%).
        assert!(
            s.mean_loss_without > 0.5,
            "mean loss without migration {} too mild",
            s.mean_loss_without
        );
        assert!(s.max_loss_without > 0.7, "max loss {}", s.max_loss_without);
        // Migration advantage in the paper's 2.82x neighbourhood.
        assert!(
            s.migration_advantage > 2.0,
            "advantage {} too small",
            s.migration_advantage
        );
        // Every workload migrated under 10% availability.
        assert!(rows.iter().all(|r| r.migrated), "{rows:?}");
    }

    #[test]
    fn fifty_percent_availability_migration_still_wins() {
        let config = SystemConfig::paper_default();
        let rows: Vec<Row> = isp_workloads::with_sparsemv()
            .iter()
            .map(|w| run_one(w, &config, 0.5))
            .collect();
        let s = summarize(&rows, 0.5);
        assert!(
            s.with_geomean >= s.without_geomean,
            "migration must not lose on average: {} vs {}",
            s.with_geomean,
            s.without_geomean
        );
        // The trade-offs are balanced: losses stay moderate.
        assert!(s.with_geomean > 0.9, "with-migration geomean {}", s.with_geomean);
    }
}
