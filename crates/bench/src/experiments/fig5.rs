//! Figure 5: all workloads under 50 % and 10 % CSE availability, the
//! contention arriving "right after each application's ISP tasks make 50 %
//! of their progress", with and without dynamic task migration.
//!
//! Paper results at 10 % availability: ActivePy with migration outperforms
//! ActivePy without migration by 2.82×; relative to the no-CSD baseline it
//! suffers only ≈8 % average slowdown, while the migration-less
//! configuration loses 67 % on average (up to 88 %).
//!
//! The grid is evaluated per workload: the C baseline, the offload plan,
//! and the uncontended reference run (which fixes the stress onset time)
//! are computed once and shared by every contended cell — four
//! [`ActivePy::execute_plan`] calls per workload instead of four full
//! plan-and-run pipelines. [`run_serial`] preserves the original uncached
//! path for before/after timing; both produce identical rows.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::geomean;
use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::PlanCache;
use alang::{ExecBackend, ExecTier, ParallelPolicy};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{run_c_baseline, run_host_only_with};
use isp_obs::{SpanKind, Tracer};
use serde::Serialize;

/// The figure's availability levels as exact integer percentages, in
/// presentation order.
pub const AVAILABILITY_PCTS: [u32; 2] = [50, 10];

/// One workload under one availability level.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Percent of the CSD available after the stress begins.
    pub availability_pct: u32,
    /// No-CSD baseline, seconds.
    pub baseline_secs: f64,
    /// ActivePy with migration, seconds.
    pub with_migration_secs: f64,
    /// ActivePy without migration, seconds.
    pub without_migration_secs: f64,
    /// Whether a migration actually occurred.
    pub migrated: bool,
    /// Whether the plan put any line on the CSD at all. The wire-format
    /// decode-on-host regime (e.g. TPC-H-6-gz) legitimately plans
    /// all-host, and an all-host plan has nothing to migrate.
    pub offloaded: bool,
    /// Speedup over baseline with migration.
    pub with_speedup: f64,
    /// Speedup over baseline without migration.
    pub without_speedup: f64,
}

/// Aggregates for one availability level.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Availability level, percent.
    pub availability_pct: u32,
    /// Geomean speedup with migration.
    pub with_geomean: f64,
    /// Geomean speedup without migration.
    pub without_geomean: f64,
    /// Migration-vs-no-migration advantage.
    pub migration_advantage: f64,
    /// Mean performance loss (1 − speedup) without migration.
    pub mean_loss_without: f64,
    /// Worst performance loss without migration.
    pub max_loss_without: f64,
}

/// Counts how many times each hoisted per-workload phase executed; used by
/// tests to assert the baseline and reference run happen once per workload
/// no matter how many availability levels share them.
#[derive(Debug, Default)]
pub struct RunCounters {
    /// `run_c_baseline` invocations.
    pub baselines: AtomicUsize,
    /// Uncontended reference executions.
    pub references: AtomicUsize,
}

fn scenario_at(t_half: f64, availability_pct: u32) -> ContentionScenario {
    ContentionScenario::at_time(
        SimTime::from_secs(t_half),
        f64::from(availability_pct) / 100.0,
    )
}

/// Runs every availability level for one workload, hoisting the baseline,
/// the offload plan, and the uncontended reference run out of the
/// per-level loop. Returns one row per entry of [`AVAILABILITY_PCTS`], in
/// that order.
fn run_workload(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    cache: &PlanCache,
    counters: &RunCounters,
    policy: ParallelPolicy,
) -> Vec<Row> {
    run_workload_traced(w, config, cache, counters, policy, &Tracer::disabled())
}

/// One workload's cells with `tracer` threaded through planning and every
/// plan execution, all wrapped in a `fig5.workload` span.
fn run_workload_traced(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    cache: &PlanCache,
    counters: &RunCounters,
    policy: ParallelPolicy,
    tracer: &Tracer,
) -> Vec<Row> {
    let workload_span = tracer.begin_with(
        "fig5.workload",
        SpanKind::Phase,
        None,
        vec![("workload".into(), w.name().into())],
    );
    let program = w.program().expect("registered workloads parse");
    counters.baselines.fetch_add(1, Ordering::Relaxed);
    let baseline = run_c_baseline(w, config).expect("baseline runs").total_secs;
    let rt = ActivePy::with_options(
        ActivePyOptions::default()
            .with_parallelism(policy)
            .with_tracer(tracer.clone()),
    );
    let plan = cache
        .plan_for(&rt, w.name(), &program, w, config)
        .expect("planning succeeds");
    counters.references.fetch_add(1, Ordering::Relaxed);
    let reference = rt
        .execute_plan(&plan, config, ContentionScenario::none())
        .expect("reference run");
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .unwrap_or(reference.report.total_secs * 0.5);
    let offloaded = !plan.assignment.csd_lines.is_empty();
    let no_mig = ActivePy::with_options(
        ActivePyOptions::default()
            .without_migration()
            .with_parallelism(policy)
            .with_tracer(tracer.clone()),
    );
    // Observation-only calibration: join the plan's Eq. 1 terms against
    // each cell's measured costs and publish into the journal (counters,
    // error histograms, and the per-line `audit.line` instants the
    // summarizer's worst-5 table reads back). Disabled tracers skip the
    // join entirely, so the untraced grid stays calibration-free.
    let publish_audit = |report: &activepy::RunReport| {
        if tracer.is_enabled() {
            activepy::calibrate(w.name(), &plan, report, None).publish_to(tracer);
        }
    };
    publish_audit(&reference.report);
    let rows: Vec<Row> = AVAILABILITY_PCTS
        .iter()
        .map(|&pct| {
            let scenario = scenario_at(t_half, pct);
            let with_mig = rt
                .execute_plan(&plan, config, scenario)
                .expect("migrating run");
            let without_mig = no_mig
                .execute_plan(&plan, config, scenario)
                .expect("static run");
            publish_audit(&with_mig.report);
            publish_audit(&without_mig.report);
            Row {
                name: w.name().to_owned(),
                availability_pct: pct,
                baseline_secs: baseline,
                with_migration_secs: with_mig.report.total_secs,
                without_migration_secs: without_mig.report.total_secs,
                migrated: with_mig.report.migration.is_some(),
                offloaded,
                with_speedup: baseline / with_mig.report.total_secs,
                without_speedup: baseline / without_mig.report.total_secs,
            }
        })
        .collect();
    tracer.end(workload_span, None);
    rows
}

/// Runs the full Figure 5 grid (every registered workload × {50 %, 10 %})
/// with a private plan cache.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    run_with(config, &PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`], so a full repro run plans each
/// workload once across figures.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Vec<Row> {
    run_with_counters(config, cache, &RunCounters::default())
}

/// [`run_with`] executing every plan under a data-parallel kernel
/// `policy`. The policy is execution-only (it does not split the plan-
/// cache key, and values/LineCost records are policy-independent), so the
/// rows are byte-identical to the serial grid's; only repro wall-clock
/// changes.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with_policy(
    config: &SystemConfig,
    cache: &PlanCache,
    policy: ParallelPolicy,
) -> Vec<Row> {
    run_grid_with(config, cache, &RunCounters::default(), policy)
}

/// [`run_with`] with phase counters for test instrumentation.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with_counters(
    config: &SystemConfig,
    cache: &PlanCache,
    counters: &RunCounters,
) -> Vec<Row> {
    run_grid_with(config, cache, counters, ParallelPolicy::default())
}

/// The traced Figure 5 grid: identical cells to [`run_with_policy`], but
/// evaluated **serially** with `tracer` threaded through every pipeline
/// phase. The parallel sweep would interleave spans from different
/// workloads through the tracer's shared parent stack and make the journal
/// schedule-dependent, so the traced grid trades wall-clock for a
/// deterministic journal. `workload_filter` (exact name) narrows the grid
/// to one workload.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_traced(
    config: &SystemConfig,
    cache: &PlanCache,
    policy: ParallelPolicy,
    tracer: &Tracer,
    workload_filter: Option<&str>,
) -> Vec<Row> {
    let counters = RunCounters::default();
    let per_workload: Vec<Vec<Row>> = isp_workloads::full_set()
        .into_iter()
        .filter(|w| workload_filter.is_none_or(|f| w.name() == f))
        .map(|w| run_workload_traced(&w, config, cache, &counters, policy, tracer))
        .collect();
    (0..AVAILABILITY_PCTS.len())
        .flat_map(|level| per_workload.iter().map(move |rows| rows[level].clone()))
        .collect()
}

fn run_grid_with(
    config: &SystemConfig,
    cache: &PlanCache,
    counters: &RunCounters,
    policy: ParallelPolicy,
) -> Vec<Row> {
    let per_workload: Vec<Vec<Row>> = crate::sweep::run_grid(isp_workloads::full_set(), |w| {
        run_workload(&w, config, cache, counters, policy)
    });
    // Flatten workload-major results into the figure's availability-major
    // presentation order.
    (0..AVAILABILITY_PCTS.len())
        .flat_map(|level| per_workload.iter().map(move |rows| rows[level].clone()))
        .collect()
}

/// The original uncached, serial Figure 5 path: every cell replans and
/// re-runs its reference from scratch. Kept as the before/after timing
/// control; its rows are identical to [`run`]'s.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_serial(config: &SystemConfig) -> Vec<Row> {
    run_serial_with_backend(config, ExecBackend::default())
}

/// [`run_serial`] with every pipeline stage — C baseline, sampling,
/// planning, execution — on an explicit evaluation backend. The
/// differential harness runs the grid on both backends and asserts the VM
/// changes no output byte.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_serial_with_backend(config: &SystemConfig, backend: ExecBackend) -> Vec<Row> {
    let mut rows = Vec::new();
    for pct in AVAILABILITY_PCTS {
        for w in isp_workloads::full_set() {
            rows.push(run_one_serial(&w, config, pct, backend));
        }
    }
    rows
}

/// One cell of the uncached path: baseline, reference run, and both
/// contended runs, each through the full plan-and-execute pipeline.
fn run_one_serial(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    availability_pct: u32,
    backend: ExecBackend,
) -> Row {
    let program = w.program().expect("registered workloads parse");
    let baseline = run_host_only_with(w, config, ExecTier::Native, backend)
        .expect("baseline runs")
        .total_secs;
    let rt = ActivePy::with_options(ActivePyOptions::default().with_backend(backend));
    let reference = rt
        .run(&program, w, config, ContentionScenario::none())
        .expect("reference run");
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .unwrap_or(reference.report.total_secs * 0.5);
    let scenario = scenario_at(t_half, availability_pct);
    let with_mig = rt
        .run(&program, w, config, scenario)
        .expect("migrating run");
    let without_mig = ActivePy::with_options(
        ActivePyOptions::default()
            .without_migration()
            .with_backend(backend),
    )
    .run(&program, w, config, scenario)
    .expect("static run");
    Row {
        name: w.name().to_owned(),
        availability_pct,
        baseline_secs: baseline,
        with_migration_secs: with_mig.report.total_secs,
        without_migration_secs: without_mig.report.total_secs,
        migrated: with_mig.report.migration.is_some(),
        offloaded: !with_mig.assignment.csd_lines.is_empty(),
        with_speedup: baseline / with_mig.report.total_secs,
        without_speedup: baseline / without_mig.report.total_secs,
    }
}

/// Summarizes one availability level's rows.
///
/// # Panics
///
/// Panics if `rows` contains no entry at `availability_pct`.
#[must_use]
pub fn summarize(rows: &[Row], availability_pct: u32) -> Summary {
    let level: Vec<&Row> = rows
        .iter()
        .filter(|r| r.availability_pct == availability_pct)
        .collect();
    assert!(
        !level.is_empty(),
        "no rows at availability {availability_pct}%"
    );
    let with: Vec<f64> = level.iter().map(|r| r.with_speedup).collect();
    let without: Vec<f64> = level.iter().map(|r| r.without_speedup).collect();
    let losses: Vec<f64> = without.iter().map(|s| 1.0 - s.min(1.0)).collect();
    Summary {
        availability_pct,
        with_geomean: geomean(&with),
        without_geomean: geomean(&without),
        migration_advantage: geomean(&with) / geomean(&without),
        mean_loss_without: crate::mean(&losses),
        max_loss_without: losses.iter().copied().fold(0.0, f64::max),
    }
}

/// Prints the grid in the figure's layout.
pub fn print(rows: &[Row]) {
    println!("== Fig 5: contention at 50% of ISP progress, +/- migration ==");
    for pct in AVAILABILITY_PCTS {
        println!("-- {pct}% CSD available --");
        println!(
            "{:<14} {:>8} {:>10} {:>7} {:>10} {:>7} {:>9}",
            "workload", "C-base", "w/mig", "x", "w/o-mig", "x", "migrated"
        );
        for r in rows.iter().filter(|r| r.availability_pct == pct) {
            println!(
                "{:<14} {:>7.2}s {:>9.2}s {:>6.2}x {:>9.2}s {:>6.2}x {:>9}",
                r.name,
                r.baseline_secs,
                r.with_migration_secs,
                r.with_speedup,
                r.without_migration_secs,
                r.without_speedup,
                if r.migrated { "yes" } else { "no" },
            );
        }
        let s = summarize(rows, pct);
        println!(
            "geomean: w/mig {:.2}x, w/o {:.2}x, advantage {:.2}x; loss w/o mig: mean {:.0}%, max {:.0}%",
            s.with_geomean,
            s.without_geomean,
            s.migration_advantage,
            s.mean_loss_without * 100.0,
            s.max_loss_without * 100.0
        );
    }
    println!(
        "(paper @10%: advantage 2.82x, ~8% avg slowdown with migration, 67% avg / 88% max loss without)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_availability_matches_the_paper() {
        let config = SystemConfig::paper_default();
        let rows = run(&config);
        let s = summarize(&rows, 10);
        // With migration: a modest slowdown vs baseline (paper ~8%).
        assert!(
            s.with_geomean > 0.8 && s.with_geomean <= 1.05,
            "with-migration geomean {} should sit near 0.92",
            s.with_geomean
        );
        // Without: severe losses (paper avg 67%, max 88%).
        assert!(
            s.mean_loss_without > 0.5,
            "mean loss without migration {} too mild",
            s.mean_loss_without
        );
        assert!(s.max_loss_without > 0.7, "max loss {}", s.max_loss_without);
        // Migration advantage in the paper's 2.82x neighbourhood.
        assert!(
            s.migration_advantage > 2.0,
            "advantage {} too small",
            s.migration_advantage
        );
        // Every offloaded workload migrated under 10% availability; only
        // plans with CSD lines have anything to move. The decode-on-host
        // wire-format regime is the one legitimate all-host plan.
        let at_ten: Vec<&Row> = rows.iter().filter(|r| r.availability_pct == 10).collect();
        assert!(
            at_ten.iter().filter(|r| r.offloaded).all(|r| r.migrated),
            "{at_ten:?}"
        );
        let offloaded = at_ten.iter().filter(|r| r.offloaded).count();
        assert!(
            offloaded >= at_ten.len() - 1,
            "at most one all-host regime expected, {offloaded}/{} offloaded",
            at_ten.len()
        );

        // 50%: the trade-offs are balanced — migration must not lose on
        // average and losses stay moderate.
        let fifty = summarize(&rows, 50);
        assert!(
            fifty.with_geomean >= fifty.without_geomean,
            "migration must not lose on average: {} vs {}",
            fifty.with_geomean,
            fifty.without_geomean
        );
        assert!(
            fifty.with_geomean > 0.9,
            "with-migration geomean {}",
            fifty.with_geomean
        );
    }

    #[test]
    fn hoisted_phases_run_once_per_workload() {
        let config = SystemConfig::paper_default();
        let cache = PlanCache::new();
        let counters = RunCounters::default();
        let rows = run_with_counters(&config, &cache, &counters);
        let n = isp_workloads::full_set().len();
        assert_eq!(rows.len(), n * AVAILABILITY_PCTS.len());
        assert_eq!(
            counters.baselines.load(Ordering::Relaxed),
            n,
            "C baseline must run exactly once per workload"
        );
        assert_eq!(
            counters.references.load(Ordering::Relaxed),
            n,
            "uncontended reference must run exactly once per workload"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.misses as usize, n,
            "each workload must be planned exactly once"
        );
        assert_eq!(stats.hits, 0, "one plan_for call per workload");
        assert_eq!(cache.len(), n);
        // Rows come out availability-major in AVAILABILITY_PCTS order.
        let workloads = isp_workloads::full_set();
        for (level, &pct) in AVAILABILITY_PCTS.iter().enumerate() {
            for (j, w) in workloads.iter().enumerate() {
                let row = &rows[level * n + j];
                assert_eq!(row.availability_pct, pct);
                assert_eq!(row.name, w.name());
            }
        }
    }
}
