//! Figure 4: ActivePy (no programmer hints) versus the optimal
//! programmer-directed C-based ISP configuration, both normalized to the
//! no-CSD C baseline, with the CSD fully dedicated to the application.
//!
//! Paper result: 1.34× (ActivePy) vs 1.33× (programmer-directed) on
//! average — ActivePy "successfully identified *exactly* the same set of
//! code regions", with ≈1 % sampling/code-generation overhead.

use crate::geomean;
use activepy::runtime::ActivePy;
use activepy::PlanCache;
use csd_sim::{ContentionScenario, EngineKind, SystemConfig};
use isp_baselines::{best_static_plan, run_c_baseline, run_plan};
use serde::Serialize;
use std::collections::BTreeSet;

/// One workload's comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// No-CSD C baseline, seconds.
    pub baseline_secs: f64,
    /// Programmer-directed ISP, seconds.
    pub pd_secs: f64,
    /// ActivePy end-to-end (including sampling + codegen), seconds.
    pub activepy_secs: f64,
    /// Programmer-directed speedup.
    pub pd_speedup: f64,
    /// ActivePy speedup.
    pub activepy_speedup: f64,
    /// Lines the programmer-directed search offloaded.
    pub pd_lines: Vec<usize>,
    /// Lines ActivePy offloaded.
    pub activepy_lines: Vec<usize>,
    /// Sampling + code-generation overhead, seconds.
    pub overhead_secs: f64,
}

impl Row {
    /// Whether ActivePy's region choice covers the programmer-directed
    /// one (identical, or a superset differing only in cheap lines).
    #[must_use]
    pub fn regions_agree(&self) -> bool {
        let pd: BTreeSet<_> = self.pd_lines.iter().collect();
        let ap: BTreeSet<_> = self.activepy_lines.iter().collect();
        pd.is_subset(&ap) || ap.is_subset(&pd)
    }
}

/// Runs the comparison over the nine Table-I workloads with a private
/// plan cache.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    run_with(config, &PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`]; the workload grid fans out over
/// [`crate::sweep::run_grid`].
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Vec<Row> {
    crate::sweep::run_grid(isp_workloads::table1(), |w| {
        let baseline = run_c_baseline(&w, config)
            .expect("baseline runs")
            .total_secs;
        let static_plan = best_static_plan(&w, config).expect("plan search succeeds");
        let pd = run_plan(&w, config, &static_plan, ContentionScenario::none())
            .expect("plan re-runs")
            .total_secs;
        let program = w.program().expect("registered workloads parse");
        let rt = ActivePy::new();
        let plan = cache
            .plan_for(&rt, w.name(), &program, &w, config)
            .expect("planning succeeds");
        let outcome = rt
            .execute_plan(&plan, config, ContentionScenario::none())
            .expect("ActivePy pipeline runs");
        let ap = outcome.report.total_secs;
        let pd_lines = static_plan
            .placements
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == EngineKind::Cse)
            .map(|(i, _)| i)
            .collect();
        Row {
            name: w.name().to_owned(),
            baseline_secs: baseline,
            pd_secs: pd,
            activepy_secs: ap,
            pd_speedup: baseline / pd,
            activepy_speedup: baseline / ap,
            pd_lines,
            activepy_lines: outcome.assignment.csd_lines.iter().copied().collect(),
            overhead_secs: outcome.sampling_secs + outcome.compile_secs,
        }
    })
}

/// Prints the comparison in the figure's layout.
pub fn print(rows: &[Row]) {
    println!("== Fig 4: ActivePy vs programmer-directed ISP (100% CSD) ==");
    println!(
        "{:<14} {:>8} {:>8} {:>7} {:>8} {:>7} {:>9} {:>8}",
        "workload", "C-base", "PD-isp", "PDx", "ActivePy", "APx", "overhead", "regions"
    );
    for r in rows {
        println!(
            "{:<14} {:>7.2}s {:>7.2}s {:>6.2}x {:>7.2}s {:>6.2}x {:>8.3}s {:>8}",
            r.name,
            r.baseline_secs,
            r.pd_secs,
            r.pd_speedup,
            r.activepy_secs,
            r.activepy_speedup,
            r.overhead_secs,
            if r.regions_agree() { "match" } else { "DIFFER" },
        );
    }
    let pd: Vec<f64> = rows.iter().map(|r| r.pd_speedup).collect();
    let ap: Vec<f64> = rows.iter().map(|r| r.activepy_speedup).collect();
    println!(
        "geomean speedup: programmer-directed {:.2}x (paper 1.33x), ActivePy {:.2}x (paper 1.34x)",
        geomean(&pd),
        geomean(&ap)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activepy_matches_programmer_directed() {
        let rows = run(&SystemConfig::paper_default());
        assert_eq!(rows.len(), 9);
        for r in &rows {
            // Both configurations beat or match the baseline.
            assert!(r.pd_speedup > 0.99, "{}: PD {}", r.name, r.pd_speedup);
            assert!(
                r.activepy_speedup > 0.95,
                "{}: AP {}",
                r.name,
                r.activepy_speedup
            );
            // ActivePy lands within 10% of the hand-optimized plan.
            let ratio = r.activepy_speedup / r.pd_speedup;
            assert!(
                ratio > 0.9,
                "{}: ActivePy {}x far from PD {}x",
                r.name,
                r.activepy_speedup,
                r.pd_speedup
            );
            assert!(r.regions_agree(), "{}: regions differ", r.name);
            // Overhead stays a small fraction of the run (paper: ~1%).
            assert!(
                r.overhead_secs < 0.08 * r.activepy_secs,
                "{}: overhead {} too large",
                r.name,
                r.overhead_secs
            );
        }
        let pd = geomean(&rows.iter().map(|r| r.pd_speedup).collect::<Vec<_>>());
        let ap = geomean(&rows.iter().map(|r| r.activepy_speedup).collect::<Vec<_>>());
        assert!(
            pd > 1.2 && pd < 1.6,
            "PD geomean {pd} out of the paper's band"
        );
        assert!(
            ap > 1.15 && ap < 1.6,
            "AP geomean {ap} out of the paper's band"
        );
        assert!(
            (ap / pd - 1.0).abs() < 0.1,
            "AP {ap} vs PD {pd}: not 'almost the same'"
        );
    }
}
