//! Flexibility experiments: the system dynamics §II-B3 lists beyond CSE
//! contention.
//!
//! 1. **Interconnect sweep** — the `BW_D2H` term of Eq. 1 varies across
//!    deployments (PCIe generations, shared hubs, NVMe-oF fabrics).
//!    ActivePy re-derives its assignment for each platform from the same
//!    unannotated source: narrower pipes pull more lines onto the CSD and
//!    enlarge the ISP profit; a plan baked for one platform is wrong on
//!    another.
//! 2. **Garbage collection** — "resource contention coming from the
//!    storage management workloads": a duty-cycled GC schedule steals
//!    internal bandwidth from everyone; the monitor decides whether the
//!    degraded device is still worth it.

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::PlanCache;
use csd_sim::flash::GcSchedule;
use csd_sim::units::{Bandwidth, Duration};
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::run_c_baseline;
use serde::Serialize;

/// One platform point of the interconnect sweep.
#[derive(Debug, Clone, Serialize)]
pub struct BwRow {
    /// Platform label.
    pub platform: String,
    /// Effective device-to-host bandwidth, GB/s.
    pub bw_d2h_gbps: f64,
    /// Lines ActivePy offloaded on this platform.
    pub offloaded_lines: usize,
    /// Speedup over the same platform's no-CSD baseline.
    pub speedup: f64,
}

/// Sweeps the external bandwidth on MixedGEMM (the workload with both
/// streaming and compute stages, where the split point actually moves).
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_bw_sweep() -> Vec<BwRow> {
    run_bw_sweep_with(&PlanCache::new())
}

/// [`run_bw_sweep`] against a shared [`PlanCache`]; the platform grid fans
/// out over [`crate::sweep::run_grid`]. Each platform is a distinct plan
/// key — the point of the experiment is that the assignment changes.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_bw_sweep_with(cache: &PlanCache) -> Vec<BwRow> {
    let w = isp_workloads::by_name("MixedGEMM").expect("registered");
    let program = w.program().expect("parse");
    let mut platforms: Vec<(String, SystemConfig)> =
        vec![("nvme-of 25GbE".into(), SystemConfig::nvmeof_default())];
    for gbps in [1.0, 2.0, 4.0, 8.5] {
        platforms.push((
            format!("pcie {gbps} GB/s"),
            SystemConfig::paper_default()
                .with_nvme_bandwidth(Bandwidth::from_gb_per_sec(gbps))
                .with_pcie_bandwidth(Bandwidth::from_gb_per_sec(gbps)),
        ));
    }
    crate::sweep::run_grid(platforms, |(platform, config)| {
        let baseline = run_c_baseline(&w, &config).expect("baseline").total_secs;
        let rt = ActivePy::new();
        let plan = cache
            .plan_for(&rt, w.name(), &program, &w, &config)
            .expect("planning succeeds");
        let outcome = rt
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("pipeline");
        BwRow {
            platform,
            bw_d2h_gbps: config.d2h_bandwidth().as_bytes_per_sec() / 1e9,
            offloaded_lines: outcome.assignment.csd_lines.len(),
            speedup: baseline / outcome.report.total_secs,
        }
    })
}

/// One GC scenario row.
#[derive(Debug, Clone, Serialize)]
pub struct GcRow {
    /// Fraction of time the flash spends in a GC window.
    pub gc_duty: f64,
    /// Quiet (no-GC) baseline, seconds.
    pub quiet_baseline_secs: f64,
    /// ActivePy with migration under GC, seconds.
    pub with_migration_secs: f64,
    /// ActivePy without migration under GC, seconds.
    pub without_migration_secs: f64,
    /// Whether a migration fired.
    pub migrated: bool,
}

/// Runs TPC-H-6 under increasingly aggressive garbage collection.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_gc() -> Vec<GcRow> {
    run_gc_with(&PlanCache::new())
}

/// [`run_gc`] against a shared [`PlanCache`]: the with- and
/// without-migration variants differ only in execution policy, so each GC
/// duty level plans once and both variants replay that plan.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_gc_with(cache: &PlanCache) -> Vec<GcRow> {
    let w = isp_workloads::by_name("TPC-H-6").expect("registered");
    let program = w.program().expect("parse");
    let quiet = run_c_baseline(&w, &SystemConfig::paper_default())
        .expect("baseline")
        .total_secs;
    crate::sweep::run_grid(vec![0.0, 0.3, 0.6, 0.9], |duty| {
        let config = if duty == 0.0 {
            SystemConfig::paper_default()
        } else {
            SystemConfig::paper_default().with_gc(GcSchedule::new(
                Duration::from_secs(0.2),
                Duration::from_secs(0.2 * duty),
                0.15,
            ))
        };
        let rt = ActivePy::new();
        let plan = cache
            .plan_for(&rt, w.name(), &program, &w, &config)
            .expect("planning succeeds");
        let with_mig = rt
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("with migration");
        let without = ActivePy::with_options(ActivePyOptions::default().without_migration())
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("without migration");
        GcRow {
            gc_duty: duty,
            quiet_baseline_secs: quiet,
            with_migration_secs: with_mig.report.total_secs,
            without_migration_secs: without.report.total_secs,
            migrated: with_mig.report.migration.is_some(),
        }
    })
}

/// Prints both flexibility tables.
pub fn print(bw: &[BwRow], gc: &[GcRow]) {
    println!("== Flexibility 1: the same source on different interconnects (MixedGEMM) ==");
    println!(
        "{:<16} {:>8} {:>10} {:>8}",
        "platform", "BW_D2H", "offloaded", "speedup"
    );
    for r in bw {
        println!(
            "{:<16} {:>6.1}GB {:>10} {:>7.2}x",
            r.platform, r.bw_d2h_gbps, r.offloaded_lines, r.speedup
        );
    }
    println!("(narrower pipes -> more offload and larger ISP profit; no source changes)");
    println!();
    println!("== Flexibility 2: garbage collection stealing internal bandwidth (TPC-H-6) ==");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>9}",
        "GC duty", "quiet-base", "w/mig", "w/o-mig", "migrated"
    );
    for r in gc {
        println!(
            "{:>6.0}% {:>11.2}s {:>9.2}s {:>9.2}s {:>9}",
            r.gc_duty * 100.0,
            r.quiet_baseline_secs,
            r.with_migration_secs,
            r.without_migration_secs,
            if r.migrated { "yes" } else { "no" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrower_links_offload_at_least_as_much() {
        let rows = run_bw_sweep();
        // Sort by bandwidth and check monotone non-increasing offload.
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| a.bw_d2h_gbps.partial_cmp(&b.bw_d2h_gbps).expect("finite"));
        for w in sorted.windows(2) {
            assert!(
                w[0].offloaded_lines >= w[1].offloaded_lines,
                "narrower link must offload at least as much: {w:?}"
            );
        }
        // At 1 GB/s the ISP win is much larger than at 8 GB/s.
        let narrow = sorted.first().expect("rows");
        let wide = sorted.last().expect("rows");
        assert!(
            narrow.speedup > wide.speedup,
            "ISP profit grows as the pipe narrows: {narrow:?} vs {wide:?}"
        );
    }

    #[test]
    fn gc_degrades_gracefully_with_migration_available() {
        let rows = run_gc();
        // More GC, more time — monotone within tolerance.
        for w in rows.windows(2) {
            assert!(
                w[1].with_migration_secs >= w[0].with_migration_secs * 0.98,
                "GC must not speed things up: {w:?}"
            );
        }
        // Migration never makes things worse than riding it out.
        for r in &rows {
            assert!(
                r.with_migration_secs <= r.without_migration_secs * 1.05,
                "{r:?}"
            );
        }
    }
}
