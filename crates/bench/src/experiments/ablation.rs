//! Design ablation: the assignment-algorithm variants behind §III-B.
//!
//! Compares four ways of choosing `P_csd` from the same per-line
//! estimates:
//!
//! 1. the greedy loop exactly as printed in Algorithm 1;
//! 2. the lookahead variant (the prose's "records the assignment that
//!    yields the shortest execution time");
//! 3. lookahead plus executor-faithful flip refinement (what the runtime
//!    uses);
//! 4. the DP optimum under the adjacency-approximate cost model.
//!
//! Each plan is then actually executed, so the table shows measured — not
//! projected — end-to-end latency.

use activepy::assign::{assign, assign_greedy, assign_optimal, assign_refined, Assignment};
use activepy::estimate::{estimate_lines, Calibration};
use activepy::exec::{execute, ExecOptions};
use activepy::fit::predict_lines;
use activepy::sampling::{paper_scales, run_sampling};
use alang::copyelim::eliminable_lines;
use alang::{CostParams, ExecTier};
use csd_sim::SystemConfig;
use serde::Serialize;

/// Measured latency of each assignment variant on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Verbatim Algorithm 1 greedy.
    pub greedy_secs: f64,
    /// Lookahead variant.
    pub lookahead_secs: f64,
    /// Lookahead + flip refinement (ActivePy's default).
    pub refined_secs: f64,
    /// DP optimum of the approximate model.
    pub dp_secs: f64,
    /// Offloaded line counts per variant, in the same order.
    pub csd_counts: [usize; 4],
}

fn measure(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    assignment: &Assignment,
    copy_elim: &[bool],
) -> f64 {
    let program = w.program().expect("parse");
    let storage = w.storage_at(1.0);
    let mut system = config.build();
    let opts = ExecOptions {
        tier: ExecTier::CompiledCopyElim,
        params: CostParams::paper_default(),
        scenario: csd_sim::ContentionScenario::none(),
        monitor: None,
        offload_overheads: true,
        preempt_at: None,
    };
    let placements = assignment.placements(program.len());
    execute(&program, &storage, &placements, &mut system, &opts, None, copy_elim)
        .expect("plan executes")
        .total_secs
}

/// Runs the ablation over the nine Table-I workloads.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    let params = CostParams::paper_default();
    let calibration = Calibration::from_counters(config);
    let bw = config.d2h_bandwidth().as_bytes_per_sec();
    isp_workloads::table1()
        .iter()
        .map(|w| {
            let program = w.program().expect("parse");
            let sampling =
                run_sampling(&program, w, &paper_scales()).expect("sampling runs");
            let predictions = predict_lines(&sampling.lines).expect("fit succeeds");
            let copy_elim = eliminable_lines(&program, &sampling.dataset_types);
            let estimates = estimate_lines(
                &predictions,
                ExecTier::CompiledCopyElim,
                &params,
                config,
                &calibration,
                &copy_elim,
            );
            let variants = [
                assign_greedy(&estimates, bw),
                assign(&estimates, bw),
                assign_refined(&program, &estimates, bw),
                assign_optimal(&estimates, bw),
            ];
            let secs: Vec<f64> =
                variants.iter().map(|a| measure(w, config, a, &copy_elim)).collect();
            Row {
                name: w.name().to_owned(),
                greedy_secs: secs[0],
                lookahead_secs: secs[1],
                refined_secs: secs[2],
                dp_secs: secs[3],
                csd_counts: [
                    variants[0].csd_lines.len(),
                    variants[1].csd_lines.len(),
                    variants[2].csd_lines.len(),
                    variants[3].csd_lines.len(),
                ],
            }
        })
        .collect()
}

/// Prints the ablation table.
pub fn print(rows: &[Row]) {
    println!("== Ablation: Algorithm-1 variants (measured end-to-end seconds) ==");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9}   offloaded-lines",
        "workload", "greedy", "lookahead", "refined", "dp-opt"
    );
    for r in rows {
        println!(
            "{:<14} {:>8.2}s {:>9.2}s {:>8.2}s {:>8.2}s   {:?}",
            r.name, r.greedy_secs, r.lookahead_secs, r.refined_secs, r.dp_secs, r.csd_counts
        );
    }
    println!(
        "(the verbatim greedy cannot cross the scan->filter hump; lookahead recovers it; \
         refinement repairs stranded lines. The DP column optimizes the adjacency-approximate \
         cost model exactly — and often loses when executed, showing why the refinement pass \
         uses the executor-faithful model instead)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_never_loses_to_simpler_variants() {
        let rows = run(&SystemConfig::paper_default());
        for r in &rows {
            assert!(
                r.refined_secs <= r.greedy_secs * 1.02,
                "{}: refined {} vs greedy {}",
                r.name,
                r.refined_secs,
                r.greedy_secs
            );
            assert!(
                r.refined_secs <= r.lookahead_secs * 1.02,
                "{}: refined {} vs lookahead {}",
                r.name,
                r.refined_secs,
                r.lookahead_secs
            );
        }
        // On at least half the workloads the verbatim greedy strands the
        // pipeline on the host (offloads nothing).
        let stranded = rows.iter().filter(|r| r.csd_counts[0] == 0).count();
        assert!(stranded * 2 >= rows.len(), "greedy stranded only {stranded}");
    }
}
