//! Design ablation: the assignment-algorithm variants behind §III-B.
//!
//! Compares four ways of choosing `P_csd` from the same per-line
//! estimates:
//!
//! 1. the greedy loop exactly as printed in Algorithm 1;
//! 2. the lookahead variant (the prose's "records the assignment that
//!    yields the shortest execution time");
//! 3. lookahead plus executor-faithful flip refinement (what the runtime
//!    uses);
//! 4. the DP optimum under the adjacency-approximate cost model.
//!
//! Each plan is then actually executed, so the table shows measured — not
//! projected — end-to-end latency.

use activepy::assign::{assign, assign_greedy, assign_optimal, assign_refined, Assignment};
use activepy::exec::{execute_lowered, ExecOptions};
use activepy::runtime::ActivePy;
use activepy::{OffloadPlan, PlanCache};
use alang::{CostParams, ExecBackend, ExecTier};
use csd_sim::SystemConfig;
use serde::Serialize;

/// Measured latency of each assignment variant on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Verbatim Algorithm 1 greedy.
    pub greedy_secs: f64,
    /// Lookahead variant.
    pub lookahead_secs: f64,
    /// Lookahead + flip refinement (ActivePy's default).
    pub refined_secs: f64,
    /// DP optimum of the approximate model.
    pub dp_secs: f64,
    /// Offloaded line counts per variant, in the same order.
    pub csd_counts: [usize; 4],
}

/// Executes one assignment variant against the plan's already-parsed
/// program and already-materialized full-scale input (the old path
/// re-parsed and re-generated both for every variant).
fn measure(plan: &OffloadPlan, config: &SystemConfig, assignment: &Assignment) -> f64 {
    let mut system = config.build();
    let opts = ExecOptions {
        tier: ExecTier::CompiledCopyElim,
        params: CostParams::paper_default(),
        scenario: csd_sim::ContentionScenario::none(),
        monitor: None,
        offload_overheads: true,
        preempt_at: None,
        backend: ExecBackend::Vm,
        recovery: activepy::RecoveryPolicy::default(),
        faults: csd_sim::fault::FaultPlan::none(),
        parallel: alang::ParallelPolicy::default(),
        tracer: isp_obs::Tracer::disabled(),
        profile: activepy::ProfileRecorder::disabled(),
        journal: activepy::ExecJournal::disabled(),
    };
    let placements = assignment.placements(plan.program.len());
    // The plan carries the lowered bytecode; all four variants reuse it.
    execute_lowered(
        &plan.program,
        &plan.lowered,
        &plan.full_storage,
        &placements,
        &mut system,
        &opts,
        None,
    )
    .expect("plan executes")
    .total_secs
}

/// Runs the ablation over the nine Table-I workloads with a private plan
/// cache.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    run_with(config, &PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`]: the estimates, copy-elimination
/// decisions, parsed program, and full-scale input all come from the
/// workload's cached plan, so the four assignment variants share one
/// planning pass.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Vec<Row> {
    let bw = config.d2h_bandwidth().as_bytes_per_sec();
    crate::sweep::run_grid(isp_workloads::table1(), |w| {
        let program = w.program().expect("parse");
        let rt = ActivePy::new();
        let plan = cache
            .plan_for(&rt, w.name(), &program, &w, config)
            .expect("planning succeeds");
        let variants = [
            assign_greedy(&plan.estimates, bw),
            assign(&plan.estimates, bw),
            assign_refined(&plan.program, &plan.estimates, bw),
            assign_optimal(&plan.estimates, bw),
        ];
        let secs: Vec<f64> = variants.iter().map(|a| measure(&plan, config, a)).collect();
        Row {
            name: w.name().to_owned(),
            greedy_secs: secs[0],
            lookahead_secs: secs[1],
            refined_secs: secs[2],
            dp_secs: secs[3],
            csd_counts: [
                variants[0].csd_lines.len(),
                variants[1].csd_lines.len(),
                variants[2].csd_lines.len(),
                variants[3].csd_lines.len(),
            ],
        }
    })
}

/// Prints the ablation table.
pub fn print(rows: &[Row]) {
    println!("== Ablation: Algorithm-1 variants (measured end-to-end seconds) ==");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9}   offloaded-lines",
        "workload", "greedy", "lookahead", "refined", "dp-opt"
    );
    for r in rows {
        println!(
            "{:<14} {:>8.2}s {:>9.2}s {:>8.2}s {:>8.2}s   {:?}",
            r.name, r.greedy_secs, r.lookahead_secs, r.refined_secs, r.dp_secs, r.csd_counts
        );
    }
    println!(
        "(the verbatim greedy cannot cross the scan->filter hump; lookahead recovers it; \
         refinement repairs stranded lines. The DP column optimizes the adjacency-approximate \
         cost model exactly — and often loses when executed, showing why the refinement pass \
         uses the executor-faithful model instead)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_never_loses_to_simpler_variants() {
        let rows = run(&SystemConfig::paper_default());
        for r in &rows {
            assert!(
                r.refined_secs <= r.greedy_secs * 1.02,
                "{}: refined {} vs greedy {}",
                r.name,
                r.refined_secs,
                r.greedy_secs
            );
            assert!(
                r.refined_secs <= r.lookahead_secs * 1.02,
                "{}: refined {} vs lookahead {}",
                r.name,
                r.refined_secs,
                r.lookahead_secs
            );
        }
        // On at least half the workloads the verbatim greedy strands the
        // pipeline on the host (offloads nothing).
        let stranded = rows.iter().filter(|r| r.csd_counts[0] == 0).count();
        assert!(
            stranded * 2 >= rows.len(),
            "greedy stranded only {stranded}"
        );
    }
}
