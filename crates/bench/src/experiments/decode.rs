//! Decode-placement experiment: where Eq. 1 puts the wire-format decode,
//! and what the SIMD fast path buys the hot kernels.
//!
//! **Placement.** Each wire-format workload (the [`isp_workloads::decode_set`])
//! is executed three ways under the same uncontended scenario: the plan
//! Algorithm 1 chose, the same pipeline forced all-host, and forced
//! all-CSD. Decode placement is the whole story of the contrast:
//!
//! * `TPC-H-6-gz` stores ~20×-compressed columns, so the raw stream the
//!   host would pull (`DS_raw` in Eq. 1) is tiny while inflating costs
//!   real operations on the slower CSE cores — decode-on-host wins.
//! * `LogGrep` stores length-preserving shuffled/big-endian streams, so
//!   decode is cheap but offloading the decode→grep prefix collapses
//!   `DS_raw` from the full stream to the selected tail — decode-on-CSD
//!   wins.
//!
//! Every row checks three facts: the measured winner between the forced
//! placements has the sign Eq. 1 predicts (via the executor-faithful
//! [`activepy::assign::projected_cost`] model over the plan's own
//! estimates), the planner picked that winner, and all three runs produce
//! one byte-identical `values_fingerprint`.
//!
//! **SIMD.** The lane-reassociated kernels of [`alang::simd`] are timed
//! against the plain sequential folds they replaced, minimum-of-rounds.
//! Each row also re-asserts the determinism contract: the vector kernel
//! is bit-identical to its strided-scalar reference twin (and, for
//! min/max, to the sequential fold itself).

use std::time::Instant;

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{Assignment, OffloadPlan, PlanCache};
use alang::simd;
use alang::value::EncodedVal;
use csd_sim::engine::EngineKind;
use csd_sim::wire::{ByteOrder, Codec, Encoding};
use csd_sim::{ContentionScenario, SystemConfig};
use serde::Serialize;

/// Relative tolerance when asserting the planner's run is no slower than
/// the best forced placement (simulation microseconds of queue noise).
const PLAN_TOLERANCE: f64 = 1e-6;

/// Timing rounds per kernel; the minimum round is kept (the standard
/// guard against scheduler noise).
const ROUNDS: usize = 7;

/// Elements per SIMD-kernel timing input — large enough that the chunked
/// engaged path dominates.
const KERNEL_ELEMS: usize = 1 << 20;

/// Elements per decode-throughput input (many 4096-element wire chunks).
const DECODE_ELEMS: usize = 1 << 16;

/// One wire-format workload under the three placements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlacementRow {
    /// Workload name.
    pub name: String,
    /// Program length in lines.
    pub lines: usize,
    /// Lines Algorithm 1 put on the CSD.
    pub planned_csd_lines: usize,
    /// Whether the planner offloaded the decode pipeline (its regime).
    pub decode_on_csd: bool,
    /// Simulated seconds of the plan Algorithm 1 chose.
    pub planned_secs: f64,
    /// Simulated seconds with every line forced onto the host.
    pub all_host_secs: f64,
    /// Simulated seconds with every line forced onto the CSD.
    pub all_csd_secs: f64,
    /// Eq. 1 net profit of full-pipeline offload, in projected seconds:
    /// `projected_cost(all-host) − projected_cost(all-CSD)` under the
    /// plan's own estimates. Positive ⇒ the model says offload decode.
    pub eq1_profit_secs: f64,
    /// Whether the *measured* winner between the forced placements has
    /// the sign [`Self::eq1_profit_secs`] predicts.
    pub eq1_agrees: bool,
    /// Whether the planner's run is no slower than the best forced
    /// placement.
    pub planner_matches_winner: bool,
    /// Whether all three runs produced one `values_fingerprint`.
    pub values_match: bool,
}

/// One hot kernel, scalar fold vs SIMD fast path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelRow {
    /// Kernel name.
    pub kernel: String,
    /// Input elements.
    pub n: usize,
    /// Plain sequential fold, best-of-rounds seconds.
    pub scalar_secs: f64,
    /// Lane-reassociated kernel, best-of-rounds seconds.
    pub simd_secs: f64,
    /// `scalar_secs / simd_secs`.
    pub speedup: f64,
    /// Whether the SIMD kernel is bit-identical to its strided-scalar
    /// reference twin.
    pub deterministic: bool,
}

/// Decode throughput of one wire format, best-of-rounds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecodeKernelRow {
    /// Human-readable wire format.
    pub wire: String,
    /// Encoded-over-decoded size ratio (1.0 for codec-less formats).
    pub compression: f64,
    /// Decoded megabytes per second.
    pub decoded_mb_per_s: f64,
}

/// The full decode experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// One row per wire-format workload.
    pub placements: Vec<PlacementRow>,
    /// Scalar-vs-SIMD rows for the hot reduction kernels.
    pub kernels: Vec<KernelRow>,
    /// Decode throughput per wire format.
    pub decode_kernels: Vec<DecodeKernelRow>,
}

/// Forces every line of `plan` onto one engine, re-projecting the
/// assignment's bookkeeping costs so the report stays honest.
fn forced(plan: &OffloadPlan, engine: EngineKind, bw_d2h: f64) -> OffloadPlan {
    let mut p = plan.clone();
    let n = p.program.len();
    let placements = vec![engine; n];
    let cost = activepy::assign::projected_cost(&p.program, &p.estimates, &placements, bw_d2h);
    let t_host: f64 = p.estimates.iter().map(|e| e.ct_host).sum();
    p.assignment = Assignment {
        csd_lines: match engine {
            EngineKind::Host => std::collections::BTreeSet::new(),
            EngineKind::Cse => (0..n).collect(),
        },
        t_host,
        t_csd: cost,
    };
    p
}

/// Runs one wire-format workload under the three placements.
fn run_placement(
    w: &isp_workloads::Workload,
    config: &SystemConfig,
    cache: &PlanCache,
) -> PlacementRow {
    let program = w.program().expect("registered workloads parse");
    let rt = ActivePy::with_options(ActivePyOptions::default().without_migration());
    let plan = cache
        .plan_for(&rt, w.name(), &program, w, config)
        .expect("planning succeeds");
    let bw = config.d2h_bandwidth().as_bytes_per_sec();

    let planned = rt
        .execute_plan(&plan, config, ContentionScenario::none())
        .expect("planned run");
    let host_plan = forced(&plan, EngineKind::Host, bw);
    let all_host = rt
        .execute_plan(&host_plan, config, ContentionScenario::none())
        .expect("all-host run");
    let csd_plan = forced(&plan, EngineKind::Cse, bw);
    let all_csd = rt
        .execute_plan(&csd_plan, config, ContentionScenario::none())
        .expect("all-CSD run");

    let eq1_profit_secs = host_plan.assignment.t_csd - csd_plan.assignment.t_csd;
    let host_secs = all_host.report.total_secs;
    let csd_secs = all_csd.report.total_secs;
    let planned_secs = planned.report.total_secs;
    let eq1_agrees = (eq1_profit_secs > 0.0) == (csd_secs < host_secs);
    let winner_secs = host_secs.min(csd_secs);
    let planner_matches_winner = planned_secs <= winner_secs * (1.0 + PLAN_TOLERANCE);
    let fp = planned.report.values_fingerprint;
    let values_match =
        all_host.report.values_fingerprint == fp && all_csd.report.values_fingerprint == fp;

    PlacementRow {
        name: w.name().to_owned(),
        lines: program.len(),
        planned_csd_lines: plan.assignment.csd_lines.len(),
        decode_on_csd: !plan.assignment.csd_lines.is_empty(),
        planned_secs,
        all_host_secs: host_secs,
        all_csd_secs: csd_secs,
        eq1_profit_secs,
        eq1_agrees,
        planner_matches_winner,
        values_match,
    }
}

/// Deterministic mixed-magnitude timing input — exponents spread over
/// several decades so sum reassociation differences would be visible if
/// the determinism contract broke.
fn kernel_input(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt);
            let mag = [1e-6, 1e-2, 1.0, 1e3][(h % 4) as usize];
            let sign = if h & 8 == 0 { 1.0 } else { -1.0 };
            sign * mag * ((h >> 4) % 10_000) as f64 / 10_000.0
        })
        .collect()
}

/// Best-of-[`ROUNDS`] seconds of `f`.
fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Times the hot reduction kernels, scalar fold vs SIMD fast path.
fn run_kernels() -> Vec<KernelRow> {
    let xs = kernel_input(KERNEL_ELEMS, 1);
    let ys = kernel_input(KERNEL_ELEMS, 2);
    let sq = |x: f64| x * x;

    let mut rows = Vec::new();
    let mut push = |kernel: &str, scalar_secs: f64, simd_secs: f64, deterministic: bool| {
        rows.push(KernelRow {
            kernel: kernel.to_owned(),
            n: KERNEL_ELEMS,
            scalar_secs,
            simd_secs,
            speedup: scalar_secs / simd_secs,
            deterministic,
        });
    };

    push(
        "sum",
        best_of(|| xs.iter().fold(0.0, |a, &b| a + b)),
        best_of(|| simd::sum8(&xs)),
        simd::sum8(&xs).to_bits() == simd::sum8_ref(&xs).to_bits(),
    );
    push(
        "sum_by(x*x)",
        best_of(|| xs.iter().fold(0.0, |a, &b| a + sq(b))),
        best_of(|| simd::sum8_by(&xs, sq)),
        simd::sum8_by(&xs, sq).to_bits() == simd::sum8_by_ref(&xs, sq).to_bits(),
    );
    push(
        "dot",
        best_of(|| xs.iter().zip(&ys).fold(0.0, |a, (&x, &y)| a + x * y)),
        best_of(|| simd::dot8(&xs, &ys)),
        simd::dot8(&xs, &ys).to_bits() == simd::dot8_ref(&xs, &ys).to_bits(),
    );
    push(
        "min",
        best_of(|| xs.iter().fold(f64::INFINITY, |a, &b| a.min(b))),
        best_of(|| simd::min8(&xs, f64::INFINITY)),
        simd::min8(&xs, f64::INFINITY).to_bits() == simd::min8_ref(&xs, f64::INFINITY).to_bits()
            && simd::min8(&xs, f64::INFINITY).to_bits()
                == xs.iter().fold(f64::INFINITY, |a, &b| a.min(b)).to_bits(),
    );
    push(
        "max",
        best_of(|| xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))),
        best_of(|| simd::max8(&xs, f64::NEG_INFINITY)),
        simd::max8(&xs, f64::NEG_INFINITY).to_bits()
            == simd::max8_ref(&xs, f64::NEG_INFINITY).to_bits()
            && simd::max8(&xs, f64::NEG_INFINITY).to_bits()
                == xs
                    .iter()
                    .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                    .to_bits(),
    );
    rows
}

/// The wire formats timed by [`run_decode_kernels`], with display names.
fn wire_formats() -> Vec<(String, Encoding)> {
    vec![
        ("gzip+shuffle".to_owned(), Encoding::gzip_shuffled()),
        (
            "shuffle+big-endian".to_owned(),
            Encoding {
                codec: Codec::None,
                shuffle: true,
                byte_order: ByteOrder::Big,
                fill_value: None,
            },
        ),
        (
            "fill(-1)".to_owned(),
            Encoding {
                codec: Codec::None,
                shuffle: false,
                byte_order: ByteOrder::Little,
                fill_value: Some(-1.0),
            },
        ),
    ]
}

/// Times `decode_all` per wire format.
fn run_decode_kernels() -> Vec<DecodeKernelRow> {
    // Low-cardinality data so the gzip row compresses the way columnar
    // stores do; the sentinel row masks every 10th element.
    let data: Vec<f64> = (0..DECODE_ELEMS)
        .map(|i| {
            if i % 10 == 0 {
                -1.0
            } else {
                ((i * 7919) % 50) as f64
            }
        })
        .collect();
    wire_formats()
        .into_iter()
        .map(|(wire, enc)| {
            let ev = EncodedVal::from_f64s(enc, &data, data.len() as u64);
            let decoded_bytes = (data.len() * 8) as f64;
            let compression = decoded_bytes / ev.encoded_actual_bytes() as f64;
            let secs = best_of(|| ev.decode_all().expect("decode").len() as f64);
            DecodeKernelRow {
                wire,
                compression,
                decoded_mb_per_s: decoded_bytes / 1e6 / secs,
            }
        })
        .collect()
}

/// Runs the full decode experiment with a shared plan cache.
///
/// # Panics
///
/// Panics if a wire-format workload fails to plan or run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Report {
    let placements = crate::sweep::run_grid(isp_workloads::decode_set(), |w| {
        run_placement(&w, config, cache)
    });
    Report {
        placements,
        kernels: run_kernels(),
        decode_kernels: run_decode_kernels(),
    }
}

/// Runs the full decode experiment with a private cache.
#[must_use]
pub fn run(config: &SystemConfig) -> Report {
    run_with(config, &PlanCache::new())
}

/// The smoke gate: both decode-placement regimes present and correct,
/// every run byte-identical, and the SIMD fast path actually fast.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn check(report: &Report) -> std::result::Result<(), String> {
    for row in &report.placements {
        if !row.values_match {
            return Err(format!("{}: placement changed the answer", row.name));
        }
        if !row.eq1_agrees {
            return Err(format!(
                "{}: Eq. 1 profit {:+.4}s disagrees with measured winner \
                 (host {:.4}s vs CSD {:.4}s)",
                row.name, row.eq1_profit_secs, row.all_host_secs, row.all_csd_secs
            ));
        }
        if !row.planner_matches_winner {
            return Err(format!(
                "{}: planner {:.4}s slower than best forced placement \
                 (host {:.4}s, CSD {:.4}s)",
                row.name, row.planned_secs, row.all_host_secs, row.all_csd_secs
            ));
        }
    }
    if !report.placements.iter().any(|r| r.decode_on_csd) {
        return Err("no workload in the decode-on-CSD regime".to_owned());
    }
    if !report.placements.iter().any(|r| !r.decode_on_csd) {
        return Err("no workload in the decode-on-host regime".to_owned());
    }
    for row in &report.kernels {
        if !row.deterministic {
            return Err(format!(
                "{}: SIMD kernel diverges from its scalar reference",
                row.kernel
            ));
        }
    }
    let fast = report.kernels.iter().filter(|r| r.speedup >= 1.5).count();
    if fast < 3 {
        let sheet: Vec<String> = report
            .kernels
            .iter()
            .map(|r| format!("{} {:.2}x", r.kernel, r.speedup))
            .collect();
        return Err(format!(
            "only {fast} kernels reach 1.5x over scalar ({})",
            sheet.join(", ")
        ));
    }
    Ok(())
}

/// Prints the report as aligned tables.
pub fn print(report: &Report) {
    println!("Decode placement (Eq. 1 decides where the wire format is decoded):");
    println!(
        "  {:<12} {:>5} {:>9} {:>11} {:>11} {:>11} {:>11}  regime",
        "workload", "lines", "csd-lines", "planned(s)", "all-host(s)", "all-csd(s)", "Eq1-S(s)"
    );
    for r in &report.placements {
        println!(
            "  {:<12} {:>5} {:>9} {:>11.4} {:>11.4} {:>11.4} {:>+11.4}  decode-on-{}{}",
            r.name,
            r.lines,
            r.planned_csd_lines,
            r.planned_secs,
            r.all_host_secs,
            r.all_csd_secs,
            r.eq1_profit_secs,
            if r.decode_on_csd { "CSD" } else { "host" },
            if r.eq1_agrees && r.planner_matches_winner && r.values_match {
                ""
            } else {
                "  [CHECK FAILED]"
            },
        );
    }
    println!();
    println!("SIMD fast path (scalar fold vs 8-lane kernels, best of {ROUNDS} rounds):");
    println!(
        "  {:<12} {:>9} {:>12} {:>12} {:>8}  deterministic",
        "kernel", "elems", "scalar(s)", "simd(s)", "speedup"
    );
    for r in &report.kernels {
        println!(
            "  {:<12} {:>9} {:>12.6} {:>12.6} {:>7.2}x  {}",
            r.kernel, r.n, r.scalar_secs, r.simd_secs, r.speedup, r.deterministic
        );
    }
    println!();
    println!("Decode kernels (chunked decode_all throughput):");
    println!(
        "  {:<20} {:>12} {:>14}",
        "wire format", "compression", "decoded MB/s"
    );
    for r in &report.decode_kernels {
        println!(
            "  {:<20} {:>11.2}x {:>14.0}",
            r.wire, r.compression, r.decoded_mb_per_s
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The placement invariants at unit-test cost. Kernel speedups are
    /// asserted only by [`check`] under the release repro run — a debug
    /// build neither vectorizes nor represents the shipped binary.
    #[test]
    fn both_regimes_present_and_placement_invariants_hold() {
        let config = SystemConfig::paper_default();
        let report = Report {
            placements: crate::sweep::run_grid(isp_workloads::decode_set(), |w| {
                run_placement(&w, &config, &PlanCache::new())
            }),
            kernels: Vec::new(),
            decode_kernels: Vec::new(),
        };
        assert_eq!(report.placements.len(), 2);
        for r in &report.placements {
            assert!(r.values_match, "{r:?}");
            assert!(r.eq1_agrees, "{r:?}");
            assert!(r.planner_matches_winner, "{r:?}");
        }
        let gz = report
            .placements
            .iter()
            .find(|r| r.name == "TPC-H-6-gz")
            .expect("gz row");
        assert!(!gz.decode_on_csd, "compressed columns decode on the host");
        assert!(gz.eq1_profit_secs < 0.0, "{gz:?}");
        let lg = report
            .placements
            .iter()
            .find(|r| r.name == "LogGrep")
            .expect("loggrep row");
        assert!(lg.decode_on_csd, "raw streams decode on the CSD");
        assert!(lg.eq1_profit_secs > 0.0, "{lg:?}");
    }

    #[test]
    fn simd_kernels_are_deterministic_and_decode_rows_sane() {
        for r in run_kernels() {
            assert!(r.deterministic, "{r:?}");
            assert!(r.scalar_secs > 0.0 && r.simd_secs > 0.0, "{r:?}");
        }
        let rows = run_decode_kernels();
        assert_eq!(rows.len(), 3);
        let gz = &rows[0];
        assert!(gz.compression > 2.0, "gzip row must compress: {gz:?}");
        for r in &rows[1..] {
            assert!(
                (r.compression - 1.0).abs() < 1e-9,
                "codec-less formats are length-preserving: {r:?}"
            );
        }
        for r in &rows {
            assert!(r.decoded_mb_per_s > 0.0, "{r:?}");
        }
    }
}
