//! Table I: the applications, their input data sizes, and their
//! single-entry-single-exit code regions.

use isp_workloads::Workload;
use serde::Serialize;

/// One Table-I row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Application name.
    pub name: String,
    /// Input size declared in the paper's Table I, GB.
    pub paper_gb: f64,
    /// Input size the generators actually produce at scale 1.0, GB.
    pub generated_gb: f64,
    /// Number of SESE code regions (program lines).
    pub sese_regions: usize,
    /// One-line description.
    pub description: String,
}

/// Builds the table from the workload registry.
#[must_use]
pub fn run() -> Vec<Row> {
    isp_workloads::table1()
        .iter()
        .map(|w: &Workload| {
            let program = w.program().expect("registered workloads parse");
            let generated_gb = w.storage_at(1.0).total_virtual_bytes() as f64 / 1e9;
            Row {
                name: w.name().to_owned(),
                paper_gb: w.table1_gb(),
                generated_gb,
                sese_regions: program.len(),
                description: w.description().to_owned(),
            }
        })
        .collect()
}

/// Prints the table in the paper's layout.
pub fn print(rows: &[Row]) {
    println!("== Table I: applications, input sizes, SESE code regions ==");
    println!(
        "{:<14} {:>9} {:>9} {:>6}  description",
        "name", "paper-GB", "gen-GB", "SESE"
    );
    for r in rows {
        println!(
            "{:<14} {:>9.1} {:>9.2} {:>6}  {}",
            r.name, r.paper_gb, r.generated_gb, r.sese_regions, r.description
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sizes_match_paper_sizes() {
        for r in run() {
            assert!(
                (r.generated_gb - r.paper_gb).abs() / r.paper_gb < 0.05,
                "{}: {} vs {}",
                r.name,
                r.generated_gb,
                r.paper_gb
            );
            assert!(r.sese_regions >= 4, "{} too few regions", r.name);
        }
    }
}
