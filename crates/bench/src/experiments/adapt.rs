//! Adaptation sweep: every workload under a phase-shifting availability
//! trace — competing tenants arrive mid-run and later *leave* — comparing
//! three execution policies against an oracle:
//!
//! * **static** — the cold sampling-only plan with migration disabled:
//!   whatever Algorithm 1 chose up front, executed to the end.
//! * **monitored** — the same cold plan with the monitor enabled: work
//!   migrates host-ward when the burst degrades throughput and is
//!   reclaimed by the CSD once availability recovers. This run also
//!   records its measured per-line costs into the plan cache's profile
//!   store.
//! * **re-planned** — the plan refitted from the monitored run's profile
//!   ([`PlanCache::plan_for`] blends measured costs into the fitted
//!   curves and re-runs Algorithm 1), executed with the monitor under
//!   the *same* trace. This is the policy the tentpole argues for.
//!
//! The **oracle** is the cheapest of every policy the harness can
//! execute under the trace (the three above plus an all-host fallback),
//! so `regret = cell − oracle ≥ 0` by construction. Placement affects
//! simulated cost only — every cell must report a byte-identical
//! `values_fingerprint`, and the sweep counts any divergence.

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{Assignment, MigrationCause, OffloadPlan, PlanCache};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use serde::Serialize;

/// Residual CSE availability while the competing tenants run.
pub const BURST_FRACTION: f64 = 0.05;

/// The burst arrives when the uncontended reference run has completed
/// this fraction of its CSD-resident work…
pub const DROP_AT_CSD_PROGRESS: f64 = 0.2;

/// …and the tenants leave at this CSD-progress time of the reference
/// run. The window must be long relative to the monitor's detection
/// latency (one region chunk, stretched by the burst itself): a static
/// plan crawls through most of it, while monitored runs migrate
/// host-ward early, slow down, and at the recovery instant still hold
/// CSD-profitable work to reclaim.
pub const RECOVER_AT_CSD_PROGRESS: f64 = 0.9;

/// One workload under the phase-shifting trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Uncontended reference run of the cold plan, seconds.
    pub clean_secs: f64,
    /// Absolute sim time the availability burst begins.
    pub drop_at_secs: f64,
    /// Absolute sim time availability recovers to 1.0.
    pub recover_at_secs: f64,
    /// Cold plan, migration disabled, under the trace.
    pub static_secs: f64,
    /// Cold plan with the monitor (and profile recording), under the trace.
    pub monitored_secs: f64,
    /// Refitted plan with the monitor, under the trace — the re-planning
    /// policy's cell.
    pub replanned_secs: f64,
    /// All-host fallback under the trace.
    pub all_host_secs: f64,
    /// Cheapest candidate — the oracle's pick.
    pub oracle_secs: f64,
    /// Which candidate the oracle picked.
    pub oracle_choice: String,
    /// `static_secs − oracle_secs`.
    pub static_regret: f64,
    /// `replanned_secs − oracle_secs`.
    pub replanned_regret: f64,
    /// Plan-cache refits this workload triggered (expected: 1).
    pub refits: u64,
    /// Host-ward degradation migrations across the monitored cells.
    pub degraded_migrations: u64,
    /// Device-ward reclaim migrations across the monitored cells.
    pub reclaim_migrations: u64,
    /// Whether every cell produced the reference's `values_fingerprint`.
    pub values_match: bool,
}

/// The full sweep plus the aggregates the smoke gate asserts on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// One row per workload.
    pub rows: Vec<Row>,
    /// Σ static regret, seconds.
    pub static_regret_total: f64,
    /// Σ re-planned regret, seconds.
    pub replanned_regret_total: f64,
    /// Σ reclaim migrations — at least one workload must return work to
    /// the CSD.
    pub reclaim_migrations: u64,
    /// Cells whose `values_fingerprint` diverged from the reference.
    /// Must be 0.
    pub divergences: usize,
}

/// Counts migrations with `reason` across an outcome's migration log.
fn count_migrations(outcome: &activepy::ActivePyOutcome, reason: MigrationCause) -> u64 {
    outcome
        .report
        .migrations
        .iter()
        .filter(|m| m.reason == reason)
        .count() as u64
}

/// Runs one workload through every policy under its phase-shifting trace.
///
/// The cache is private to the workload: profile feedback is the object
/// under test, and leaking refits into another experiment's cache would
/// silently change its plans.
fn run_workload(w: &isp_workloads::Workload, config: &SystemConfig) -> Row {
    let program = w.program().expect("registered workloads parse");
    let cache = PlanCache::new();
    let static_rt = ActivePy::with_options(ActivePyOptions::default().without_migration());
    let cold = cache
        .plan_for(&static_rt, w.name(), &program, w, config)
        .expect("planning succeeds");

    // Uncontended reference: fixes the trace's absolute times and the
    // fingerprint every cell must reproduce.
    let clean = static_rt
        .execute_plan(&cold, config, ContentionScenario::none())
        .expect("clean reference");
    let reference_fp = clean.report.values_fingerprint;
    let drop_at = clean
        .report
        .time_at_csd_progress(DROP_AT_CSD_PROGRESS)
        .unwrap_or(clean.report.total_secs * DROP_AT_CSD_PROGRESS);
    let recover_at = clean
        .report
        .time_at_csd_progress(RECOVER_AT_CSD_PROGRESS)
        .unwrap_or(clean.report.total_secs * RECOVER_AT_CSD_PROGRESS);
    let scenario = ContentionScenario::at_time(SimTime::from_secs(drop_at), BURST_FRACTION)
        .with_recovery_at(SimTime::from_secs(recover_at));

    // Static policy: the cold plan rides out the burst where it stands.
    let static_run = static_rt
        .execute_plan(&cold, config, scenario)
        .expect("static run");

    // Monitored cold run, recording its measured per-line costs.
    let monitored_rt =
        ActivePy::with_options(ActivePyOptions::default().with_profile(cache.recorder_for(
            &static_rt,
            w.name(),
            w,
            config,
        )));
    let monitored = monitored_rt
        .execute_plan(&cold, config, scenario)
        .expect("monitored run");

    // Re-planned policy: the recorded profile is newer than the cached
    // plan's generation, so this lookup refits before executing.
    let replan_rt = ActivePy::new();
    let warm = cache
        .plan_for(&replan_rt, w.name(), &program, w, config)
        .expect("refit succeeds");
    let replanned = replan_rt
        .execute_plan(&warm, config, scenario)
        .expect("re-planned run");

    // All-host fallback candidate: the cold plan's pipeline with an
    // empty device assignment, under the same trace.
    let mut host_plan: OffloadPlan = (*cold).clone();
    host_plan.assignment = Assignment::all_host(&host_plan.estimates);
    let all_host = static_rt
        .execute_plan(&host_plan, config, scenario)
        .expect("all-host run");

    let candidates = [
        ("static", static_run.report.total_secs),
        ("monitored", monitored.report.total_secs),
        ("replanned", replanned.report.total_secs),
        ("all_host", all_host.report.total_secs),
    ];
    let (oracle_choice, oracle_secs) = candidates
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty candidate set");

    let values_match = [&static_run, &monitored, &replanned, &all_host]
        .iter()
        .all(|o| o.report.values_fingerprint == reference_fp);

    Row {
        name: w.name().to_owned(),
        clean_secs: clean.report.total_secs,
        drop_at_secs: drop_at,
        recover_at_secs: recover_at,
        static_secs: static_run.report.total_secs,
        monitored_secs: monitored.report.total_secs,
        replanned_secs: replanned.report.total_secs,
        all_host_secs: all_host.report.total_secs,
        oracle_secs,
        oracle_choice: oracle_choice.to_owned(),
        static_regret: static_run.report.total_secs - oracle_secs,
        replanned_regret: replanned.report.total_secs - oracle_secs,
        refits: cache.stats().refits,
        degraded_migrations: count_migrations(&monitored, MigrationCause::Degraded)
            + count_migrations(&replanned, MigrationCause::Degraded),
        reclaim_migrations: count_migrations(&monitored, MigrationCause::Reclaim)
            + count_migrations(&replanned, MigrationCause::Reclaim),
        values_match,
    }
}

/// Builds the [`Report`] aggregates from finished rows.
fn aggregate(rows: Vec<Row>) -> Report {
    let static_regret_total = rows.iter().map(|r| r.static_regret).sum();
    let replanned_regret_total = rows.iter().map(|r| r.replanned_regret).sum();
    let reclaim_migrations = rows.iter().map(|r| r.reclaim_migrations).sum();
    let divergences = rows.iter().filter(|r| !r.values_match).count();
    Report {
        rows,
        static_regret_total,
        replanned_regret_total,
        reclaim_migrations,
        divergences,
    }
}

/// Runs the full adaptation sweep over every registered workload.
///
/// # Panics
///
/// Panics if a registered workload fails to plan or run.
#[must_use]
pub fn run(config: &SystemConfig) -> Report {
    let rows = crate::sweep::run_grid(isp_workloads::full_set(), |w| run_workload(&w, config));
    aggregate(rows)
}

/// Runs the sweep for a single workload by name, or `None` if the name
/// matches nothing.
#[must_use]
pub fn run_one(name: &str, config: &SystemConfig) -> Option<Report> {
    let w = isp_workloads::by_name(name)?;
    Some(aggregate(vec![run_workload(&w, config)]))
}

/// Checks the sweep's headline claims; `Err` describes the violation.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check(report: &Report) -> Result<(), String> {
    if report.divergences != 0 {
        return Err(format!(
            "{} cells diverged from the reference fingerprint",
            report.divergences
        ));
    }
    if report.replanned_regret_total >= report.static_regret_total {
        return Err(format!(
            "re-planning must strictly reduce total regret: replanned {:.3}s vs static {:.3}s",
            report.replanned_regret_total, report.static_regret_total
        ));
    }
    if report.rows.len() > 1 && report.reclaim_migrations == 0 {
        return Err("no workload reclaimed work back to the CSD".to_owned());
    }
    for r in &report.rows {
        if r.static_regret < -1e-9 || r.replanned_regret < -1e-9 {
            return Err(format!("negative regret in {}: {r:?}", r.name));
        }
    }
    Ok(())
}

/// Prints the sweep as a table plus the aggregate line.
pub fn print(report: &Report) {
    println!("== Adaptation sweep: phase-shifting availability (burst to {BURST_FRACTION}) ==");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>7} {:>7} {:>5} {:>5} {:>6}",
        "workload",
        "static",
        "monitor",
        "replan",
        "host",
        "oracle",
        "choice",
        "regretS",
        "regretR",
        "degr",
        "recl",
        "match"
    );
    for r in &report.rows {
        println!(
            "{:<14} {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>7.2}s {:>10} {:>6.2}s {:>6.2}s {:>5} {:>5} {:>6}",
            r.name,
            r.static_secs,
            r.monitored_secs,
            r.replanned_secs,
            r.all_host_secs,
            r.oracle_secs,
            r.oracle_choice,
            r.static_regret,
            r.replanned_regret,
            r.degraded_migrations,
            r.reclaim_migrations,
            if r.values_match { "ok" } else { "WRONG" },
        );
    }
    println!(
        "total regret: static {:.2}s, re-planned {:.2}s | {} reclaim migrations | {} divergences",
        report.static_regret_total,
        report.replanned_regret_total,
        report.reclaim_migrations,
        report.divergences
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reduces_regret_and_never_changes_values() {
        let config = SystemConfig::paper_default();
        let report = run(&config);
        assert_eq!(report.rows.len(), isp_workloads::full_set().len());
        check(&report).expect("adaptation invariants hold");
        // Every workload triggered exactly one refit in its private cache.
        for r in &report.rows {
            assert_eq!(r.refits, 1, "unexpected refit count: {r:?}");
        }
        // The burst actually pushed work host-ward somewhere.
        assert!(
            report.rows.iter().any(|r| r.degraded_migrations > 0),
            "no workload migrated under the burst"
        );
    }

    #[test]
    fn focused_run_matches_the_sweep_row() {
        let config = SystemConfig::paper_default();
        let name = isp_workloads::full_set()[0].name().to_owned();
        let focused = run_one(&name, &config).expect("workload exists");
        assert_eq!(focused.rows.len(), 1);
        assert_eq!(focused.rows[0].name, name);
        assert!(focused.rows[0].values_match);
        assert!(run_one("no-such-workload", &config).is_none());
    }
}
