//! Kernel-scaling sweep: data-parallel builtin throughput at 1/2/4/8
//! worker threads.
//!
//! The sweep measures the repro-host analog of the paper's CSE: the
//! prototype's 8× Cortex-A72 cores run each offloaded kernel data-parallel,
//! and the simulator folds that into one aggregate rate (`cores × per-core
//! rate × parallel_efficiency`, §II-B1). Here the same chunked kernels run
//! on the bench machine's real cores, which yields an *empirical*
//! Amdahl-style efficiency to cross-check against the modelled constant in
//! [`csd_sim::engine::default_cse_spec`].
//!
//! Two properties are asserted per kernel:
//!
//! * **Determinism** — outputs are byte-identical at every thread count
//!   (the chunk grid depends only on data shape, and reduction partials
//!   combine in chunk-index order). Checked unconditionally.
//! * **Scaling** — large inputs speed up with threads, small inputs (below
//!   the engagement threshold) never regress. Checked only when the host
//!   actually has cores to scale onto ([`host_cores`] ≥ 4); a single-core
//!   CI box cannot speed anything up and is not treated as a failure.

use std::time::Instant;

use alang::builtins::{call_in, KernelCtx, Storage};
use alang::matrix::Matrix;
use alang::value::{ArrayVal, BoolArrayVal};
use alang::{ParEngine, ParallelPolicy, Value};
use serde::Serialize;

/// The swept worker counts, matching the paper platform's 8 CSE cores.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Engagement threshold used by the sweep: low enough that every "large"
/// input chunks, high enough that every "small" input stays on the serial
/// fast path.
const MIN_PARALLEL_LEN: usize = 4096;

/// Compute-heavy kernels expected to scale near-linearly on large inputs;
/// the 8-thread floor in [`check`] and the empirical efficiency are
/// derived from these.
const SCALABLE_KERNELS: [&str; 3] = ["matmul", "gemm_batch", "pagerank_step"];

/// One (kernel, input-size) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct KernelRow {
    /// Builtin name.
    pub kernel: String,
    /// `"large"` (chunking engages) or `"small"` (serial fast path).
    pub input: String,
    /// Parallel-loop items (rows for matrix kernels, elements otherwise).
    pub items: usize,
    /// Min-of-rounds seconds per call, aligned with [`THREAD_COUNTS`].
    pub secs: Vec<f64>,
    /// Speedup over the 1-thread policy, aligned with [`THREAD_COUNTS`].
    pub speedups: Vec<f64>,
    /// Whether the output was byte-identical at every thread count.
    pub deterministic: bool,
}

/// The sweep's result: the `scaling` section of `BENCH_repro.json`.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Cores the measurement host actually has (`available_parallelism`).
    pub host_cores: usize,
    /// The swept thread counts.
    pub thread_counts: Vec<usize>,
    /// One row per (kernel, input size).
    pub rows: Vec<KernelRow>,
    /// Empirical Amdahl-style efficiency: geomean speedup of the scalable
    /// large-input kernels at the host's best swept thread count, divided
    /// by that count. 1.0 by construction on a single-core host.
    pub parallel_efficiency: f64,
    /// Thread count the efficiency was measured at.
    pub efficiency_threads: usize,
    /// The modelled CSE constant the empirical value is checked against.
    pub modelled_cse_efficiency: f64,
    /// Whether the two agree within
    /// [`csd_sim::engine::PARALLEL_EFFICIENCY_TOLERANCE`].
    pub efficiency_calibrated: bool,
}

/// Cores available to this process (1 if the query fails).
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

struct Case {
    kernel: &'static str,
    input: &'static str,
    items: usize,
    argv: Vec<Value>,
    iters: usize,
}

fn arr(data: Vec<f64>) -> Value {
    Value::Array(ArrayVal::new(data))
}

fn series(n: usize, mul: usize, modulus: usize, scale: f64, shift: f64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * mul) % modulus) as f64 * scale + shift)
        .collect()
}

/// A dense-ish square matrix with a deterministic pattern and some exact
/// zeros (so the matmul inner loop's skip path stays exercised).
fn square(n: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if i % 7 == 0 {
                0.0
            } else {
                (i % 23) as f64 - 11.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("square matrix")
}

/// A sparse row-stochastic-ish matrix in CSR form for pagerank/spmv.
fn sparse(n: usize) -> alang::matrix::Csr {
    let data: Vec<f64> = (0..n * n)
        .map(|i| {
            if (i * 31) % 10 == 0 {
                ((i % 13) + 1) as f64 * 0.1
            } else {
                0.0
            }
        })
        .collect();
    Matrix::new(data, n, n).expect("sparse matrix").to_csr()
}

fn cases(large_iters: usize, small_iters: usize) -> Vec<Case> {
    let mut out = Vec::new();
    for (input, elems, mat_n, csr_n, pts, iters) in [
        (
            "large",
            200_000usize,
            128usize,
            512usize,
            4096usize,
            large_iters,
        ),
        ("small", 1_000, 16, 32, 64, small_iters),
    ] {
        let xs = series(elems, 37, 101, 0.5, -20.0);
        let ys = series(elems, 13, 89, 0.25, -10.0);
        let keep: Vec<bool> = (0..elems).map(|i| i % 3 != 0).collect();
        let m = square(mat_n);
        let csr = sparse(csr_n);
        let ranks = vec![1.0 / csr_n as f64; csr_n];
        let points = Matrix::new(series(pts * 8, 7, 19, 1.0, 0.0), pts, 8).expect("points");
        let cents = Matrix::new((0..8 * 8).map(|i| i as f64).collect(), 8, 8).expect("cents");
        let batch = Matrix::with_logical(
            m.data().to_vec(),
            mat_n,
            mat_n,
            10 * mat_n as u64,
            mat_n as u64,
        )
        .expect("batch");
        out.extend([
            Case {
                kernel: "sum",
                input,
                items: elems,
                argv: vec![arr(xs.clone())],
                iters,
            },
            Case {
                kernel: "dot",
                input,
                items: elems,
                argv: vec![arr(xs.clone()), arr(ys.clone())],
                iters,
            },
            Case {
                kernel: "sqrt",
                input,
                items: elems,
                argv: vec![arr(xs.iter().map(|x| x.abs()).collect())],
                iters,
            },
            Case {
                kernel: "select",
                input,
                items: elems,
                argv: vec![arr(xs), Value::BoolArray(BoolArrayVal::new(keep))],
                iters,
            },
            Case {
                kernel: "matmul",
                input,
                items: mat_n,
                argv: vec![Value::Matrix(m.clone()), Value::Matrix(m.clone())],
                iters,
            },
            Case {
                kernel: "gemm_batch",
                input,
                items: mat_n,
                argv: vec![Value::Matrix(batch), Value::Matrix(m)],
                iters,
            },
            Case {
                kernel: "pagerank_step",
                input,
                items: csr_n,
                argv: vec![Value::Csr(csr), arr(ranks), Value::Num(0.85)],
                iters,
            },
            Case {
                kernel: "kmeans_assign",
                input,
                items: pts,
                argv: vec![Value::Matrix(points), Value::Matrix(cents)],
                iters,
            },
        ]);
    }
    out
}

/// Runs the sweep at the default measurement effort.
///
/// # Panics
///
/// Panics if a kernel invocation fails (the inputs are fixed and valid).
#[must_use]
pub fn run() -> Report {
    run_configured(3, 8, 96)
}

/// [`run`] with explicit effort: `rounds` timing rounds (minimum kept)
/// of `large_iters`/`small_iters` calls per cell.
///
/// # Panics
///
/// Panics if a kernel invocation fails or `rounds` is zero.
#[must_use]
pub fn run_configured(rounds: usize, large_iters: usize, small_iters: usize) -> Report {
    assert!(rounds > 0, "at least one timing round");
    let storage = Storage::new();
    let mut rows = Vec::new();
    for case in cases(large_iters, small_iters) {
        let mut secs = Vec::with_capacity(THREAD_COUNTS.len());
        let mut reprs: Vec<String> = Vec::with_capacity(THREAD_COUNTS.len());
        for &threads in &THREAD_COUNTS {
            let policy = ParallelPolicy::new(threads, MIN_PARALLEL_LEN).expect("swept policy");
            let engine = ParEngine::new(policy);
            let ctx = KernelCtx {
                storage: &storage,
                par: &engine,
            };
            // Warmup doubles as the determinism probe.
            let out = call_in(case.kernel, &case.argv, &ctx).expect(case.kernel);
            reprs.push(format!("{out:?}"));
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let t = Instant::now();
                for _ in 0..case.iters {
                    std::hint::black_box(
                        call_in(case.kernel, &case.argv, &ctx).expect(case.kernel),
                    );
                }
                best = best.min(t.elapsed().as_secs_f64());
            }
            secs.push(best / case.iters as f64);
        }
        let speedups = secs.iter().map(|s| secs[0] / s).collect();
        let deterministic = reprs.iter().all(|r| r == &reprs[0]);
        rows.push(KernelRow {
            kernel: case.kernel.to_owned(),
            input: case.input.to_owned(),
            items: case.items,
            secs,
            speedups,
            deterministic,
        });
    }

    let host_cores = host_cores();
    // The best thread count this host can genuinely exploit: the largest
    // swept count that fits in its cores (the 1-thread row on a 1-core
    // box, where the efficiency is trivially 1.0).
    let efficiency_threads = THREAD_COUNTS
        .iter()
        .copied()
        .filter(|t| *t <= host_cores)
        .max()
        .unwrap_or(1);
    let idx = THREAD_COUNTS
        .iter()
        .position(|t| *t == efficiency_threads)
        .expect("efficiency thread count is swept");
    let scalable: Vec<f64> = rows
        .iter()
        .filter(|r| r.input == "large" && SCALABLE_KERNELS.contains(&r.kernel.as_str()))
        .map(|r| r.speedups[idx])
        .collect();
    let parallel_efficiency = crate::geomean(&scalable) / efficiency_threads as f64;
    let modelled = csd_sim::engine::default_cse_spec().parallel_efficiency;
    Report {
        host_cores,
        thread_counts: THREAD_COUNTS.to_vec(),
        rows,
        parallel_efficiency,
        efficiency_threads,
        modelled_cse_efficiency: modelled,
        efficiency_calibrated: csd_sim::engine::efficiency_within_band(
            modelled,
            parallel_efficiency,
        ),
    }
}

/// Validates a report: determinism and calibration unconditionally, the
/// speedup floors only when the host has cores to scale onto.
///
/// # Errors
///
/// Returns the first violated property.
pub fn check(report: &Report) -> std::result::Result<(), String> {
    for row in &report.rows {
        if !row.deterministic {
            return Err(format!(
                "{} ({}) is not deterministic across thread counts",
                row.kernel, row.input
            ));
        }
    }
    if !report.efficiency_calibrated {
        return Err(format!(
            "empirical parallel efficiency {:.2} at {} threads is outside the ±{} band \
             around the modelled CSE constant {:.2}",
            report.parallel_efficiency,
            report.efficiency_threads,
            csd_sim::engine::PARALLEL_EFFICIENCY_TOLERANCE,
            report.modelled_cse_efficiency
        ));
    }
    // Speedup floors need real cores; a 1-core box cannot scale and the
    // determinism assertions above are the meaningful signal there.
    if report.host_cores < 4 {
        return Ok(());
    }
    let eight = report
        .thread_counts
        .iter()
        .position(|t| *t == 8)
        .ok_or_else(|| "sweep is missing the 8-thread row".to_owned())?;
    for row in &report.rows {
        if row.input == "large" && SCALABLE_KERNELS.contains(&row.kernel.as_str()) {
            let s = row.speedups[eight];
            if s < 2.0 {
                return Err(format!(
                    "{} (large) speedup at 8 threads is {s:.2}, expected >= 2.0",
                    row.kernel
                ));
            }
        }
        if row.input == "small" {
            // Below the threshold the parallel policy takes the serial
            // fast path; 0.9 tolerates timer noise on microsecond calls.
            let worst = row.speedups.iter().copied().fold(f64::INFINITY, f64::min);
            if worst < 0.9 {
                return Err(format!(
                    "{} (small) regresses to {worst:.2}x under the parallel policy",
                    row.kernel
                ));
            }
        }
    }
    Ok(())
}

/// Prints the sweep in a compact table.
pub fn print(report: &Report) {
    println!(
        "== Scaling: kernel throughput vs worker threads (host cores: {}) ==",
        report.host_cores
    );
    println!(
        "{:<16} {:<6} {:>8} {:>7} {:>7} {:>7} {:>7} {:>5}",
        "kernel", "input", "items", "1t", "2t", "4t", "8t", "det"
    );
    for r in &report.rows {
        println!(
            "{:<16} {:<6} {:>8} {:>6.2}x {:>6.2}x {:>6.2}x {:>6.2}x {:>5}",
            r.kernel,
            r.input,
            r.items,
            r.speedups[0],
            r.speedups[1],
            r.speedups[2],
            r.speedups[3],
            if r.deterministic { "yes" } else { "NO" },
        );
    }
    println!(
        "empirical parallel efficiency {:.2} @ {} threads vs modelled CSE {:.2} (calibrated: {})",
        report.parallel_efficiency,
        report.efficiency_threads,
        report.modelled_cse_efficiency,
        report.efficiency_calibrated
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_calibrated() {
        // Reduced effort: one round, few iterations — the determinism and
        // calibration properties don't depend on timing quality, and the
        // speedup floors are hardware-gated inside `check`.
        let report = run_configured(1, 2, 8);
        assert_eq!(report.thread_counts, THREAD_COUNTS.to_vec());
        assert_eq!(report.rows.len(), 16, "8 kernels x large/small");
        check(&report).expect("scaling properties hold");
        assert!(report.parallel_efficiency > 0.0);
        let rendered = serde_json::to_string(&report).expect("report serializes");
        assert!(rendered.contains("\"parallel_efficiency\""));
    }
}
