//! Fault sweep: every workload under a deterministic device-fault plan at
//! increasing per-operation error rates, measuring slowdown against the
//! fault-free run, the recovery work performed, and — the point — that no
//! injected fault ever changes the computed answer.
//!
//! Each cell injects transient flash/NVMe/DMA errors at the cell's rate, a
//! GC burst early in the run, and (at the harshest rate) a hard CSE crash
//! at 50 % of the workload's CSD progress. The runtime is expected to
//! retry the transients with sim-time backoff and to recover the crash
//! through a checkpointed migration to the host
//! ([`MigrationCause::DeviceFault`]), so every row must report
//! `values_match == true`.

use activepy::runtime::{ActivePy, ActivePyOptions};
use activepy::{MigrationCause, PlanCache};
use csd_sim::fault::FaultPlan;
use csd_sim::units::{Duration, SimTime};
use csd_sim::{ContentionScenario, SystemConfig};
use serde::Serialize;

/// Fixed seed for every fault plan in the sweep: same seed, same faults,
/// same BENCH_repro.json.
pub const FAULT_SEED: u64 = 0xC5D_FA17;

/// Per-operation error rates swept, mildest first. The last (harshest)
/// rate additionally schedules a hard CSE crash.
pub const FAULT_RATES: [f64; 3] = [0.01, 0.05, 0.2];

/// Residual availability during the injected GC burst.
const GC_RESIDUAL: f64 = 0.25;

/// One workload under one fault rate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Per-operation transient error probability (flash, NVMe, and DMA).
    pub fault_rate: f64,
    /// Whether this cell also injected a hard CSE crash.
    pub crash_injected: bool,
    /// Fault-free run, seconds.
    pub uncontended_secs: f64,
    /// Faulted run, seconds.
    pub faulted_secs: f64,
    /// Slowdown of the faulted run over the fault-free run.
    pub slowdown: f64,
    /// Transient faults absorbed by the recovery layer.
    pub transient_faults: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Operations that succeeded after at least one retry.
    pub recovered_ops: u64,
    /// Hard faults (crashes observed plus retry exhaustions).
    pub hard_faults: u64,
    /// Migrations caused by device faults.
    pub fault_migrations: u64,
    /// Whether the faulted run fell back to the host via
    /// [`MigrationCause::DeviceFault`].
    pub fault_migrated: bool,
    /// Whether the faulted run produced a byte-identical answer
    /// (values fingerprints equal). Must always be `true`.
    pub values_match: bool,
}

/// The fault plan for one cell: transients at `rate` on every device
/// surface, one GC burst at 25 % of the fault-free runtime, and a crash at
/// `crash_at` when given.
fn cell_plan(rate: f64, uncontended_secs: f64, crash_at: Option<f64>) -> FaultPlan {
    let mut plan = FaultPlan::none()
        .with_seed(FAULT_SEED)
        .with_flash_read_error_prob(rate)
        .with_nvme_error_prob(rate)
        .with_dma_error_prob(rate)
        .with_gc_burst(
            SimTime::from_secs(uncontended_secs * 0.25),
            Duration::from_secs(uncontended_secs * 0.1),
            GC_RESIDUAL,
        );
    if let Some(at) = crash_at {
        plan = plan.with_crash_at(SimTime::from_secs(at));
    }
    plan
}

/// Runs every fault rate for one workload, hoisting the plan and the
/// fault-free reference out of the per-rate loop.
fn run_workload(w: &isp_workloads::Workload, config: &SystemConfig, cache: &PlanCache) -> Vec<Row> {
    let program = w.program().expect("registered workloads parse");
    let rt = ActivePy::new();
    let plan = cache
        .plan_for(&rt, w.name(), &program, w, config)
        .expect("planning succeeds");
    let reference = rt
        .execute_plan(&plan, config, ContentionScenario::none())
        .expect("fault-free reference");
    let t_half = reference
        .report
        .time_at_csd_progress(0.5)
        .unwrap_or(reference.report.total_secs * 0.5);
    let harshest = FAULT_RATES[FAULT_RATES.len() - 1];
    FAULT_RATES
        .iter()
        .map(|&rate| {
            let crash = (rate == harshest).then_some(t_half);
            let faults = cell_plan(rate, reference.report.total_secs, crash);
            let faulted_rt = ActivePy::with_options(ActivePyOptions::default().with_faults(faults));
            // Recovery/faults are execution-only, so the cached plan is
            // shared across every rate.
            let faulted = faulted_rt
                .execute_plan(&plan, config, ContentionScenario::none())
                .expect("faulted run");
            let recovery = faulted.report.metrics.recovery;
            Row {
                name: w.name().to_owned(),
                fault_rate: rate,
                crash_injected: crash.is_some(),
                uncontended_secs: reference.report.total_secs,
                faulted_secs: faulted.report.total_secs,
                slowdown: faulted.report.total_secs / reference.report.total_secs,
                transient_faults: recovery.transient_faults,
                retries: recovery.retries,
                recovered_ops: recovery.recovered_ops,
                hard_faults: recovery.hard_faults,
                fault_migrations: recovery.fault_migrations,
                fault_migrated: faulted
                    .report
                    .migration
                    .is_some_and(|m| m.reason == MigrationCause::DeviceFault),
                values_match: faulted.report.values_fingerprint
                    == reference.report.values_fingerprint,
            }
        })
        .collect()
}

/// Runs the full fault sweep (every workload × [`FAULT_RATES`]) with a
/// private plan cache.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run(config: &SystemConfig) -> Vec<Row> {
    run_with(config, &PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`], so a full repro run plans each
/// workload once across experiments.
///
/// # Panics
///
/// Panics if a registered workload fails to run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Vec<Row> {
    let per_workload: Vec<Vec<Row>> = crate::sweep::run_grid(isp_workloads::full_set(), |w| {
        run_workload(&w, config, cache)
    });
    per_workload.into_iter().flatten().collect()
}

/// Prints the sweep, one block per workload.
pub fn print(rows: &[Row]) {
    println!("== Fault sweep: deterministic injection (seed {FAULT_SEED:#x}) ==");
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>9} {:>6} {:>7} {:>7} {:>5} {:>7} {:>6}",
        "workload",
        "rate",
        "crash",
        "clean",
        "faulted",
        "slow",
        "trans",
        "retry",
        "hard",
        "migr",
        "match"
    );
    for r in rows {
        println!(
            "{:<14} {:>6.2} {:>6} {:>8.2}s {:>8.2}s {:>5.2}x {:>7} {:>7} {:>5} {:>7} {:>6}",
            r.name,
            r.fault_rate,
            if r.crash_injected { "yes" } else { "no" },
            r.uncontended_secs,
            r.faulted_secs,
            r.slowdown,
            r.transient_faults,
            r.retries,
            r.hard_faults,
            r.fault_migrations,
            if r.values_match { "ok" } else { "WRONG" },
        );
    }
    let wrong = rows.iter().filter(|r| !r.values_match).count();
    let migrated = rows.iter().filter(|r| r.fault_migrated).count();
    println!(
        "{} rows, {} fault migrations, {} wrong answers (must be 0)",
        rows.len(),
        migrated,
        wrong
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_never_wrong() {
        let config = SystemConfig::paper_default();
        let cache = PlanCache::new();
        let rows = run_with(&config, &cache);
        assert_eq!(
            rows.len(),
            isp_workloads::full_set().len() * FAULT_RATES.len()
        );
        // Zero wrong answers, at any fault rate, crash or not.
        assert!(
            rows.iter().all(|r| r.values_match),
            "wrong answers: {:?}",
            rows.iter().filter(|r| !r.values_match).collect::<Vec<_>>()
        );
        // Transient injection actually exercised the retry path somewhere.
        assert!(rows.iter().any(|r| r.recovered_ops > 0));
        // Every observed hard fault was absorbed by a fault migration, and
        // the crash cells that hit a device-resident stream migrated.
        for r in &rows {
            assert!(
                r.hard_faults == 0 || r.fault_migrations >= 1,
                "unabsorbed hard fault: {r:?}"
            );
            assert!(
                r.slowdown >= 1.0 - 1e-9,
                "faults cannot speed a run up: {r:?}"
            );
        }
        assert!(
            rows.iter().any(|r| r.crash_injected && r.fault_migrated),
            "at least one crash must land mid-stream and force host fallback"
        );
        // Same seed, same rows: the sweep reproduces byte-identically.
        let again = run(&config);
        assert_eq!(rows, again);
    }
}
