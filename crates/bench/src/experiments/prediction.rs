//! §V, "ActivePy's capability in identifying and composing CSD code":
//! accuracy of the data-volume predictions that drive Eq. 1.
//!
//! Paper results: data-volume changes are predicted with a geometric-mean
//! error of ≈9 % (discounting outliers); the one systematic outlier is the
//! CSR conversion in PageRank and SparseMV, over-estimated by up to 2.41×
//! — and always *over*-estimated, so ActivePy at worst schedules
//! conservatively ("makes no harm to performance").

use crate::geomean;
use activepy::runtime::ActivePy;
use activepy::PlanCache;
use alang::Interpreter;
use csd_sim::SystemConfig;
use serde::Serialize;

/// Volume prediction for one line of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct LineRow {
    /// Workload name.
    pub workload: String,
    /// Line index.
    pub line: usize,
    /// The line's source text.
    pub source: String,
    /// Predicted output volume at full scale, bytes.
    pub predicted_out: u64,
    /// Measured output volume at full scale, bytes.
    pub measured_out: u64,
    /// `predicted / measured`.
    pub ratio: f64,
    /// Whether this line performs a CSR conversion (the paper's outlier).
    pub is_csr: bool,
}

/// The experiment's aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// All per-line predictions with meaningful volumes.
    pub lines: Vec<LineRow>,
    /// Geometric-mean relative error over non-CSR lines (all lines; exact
    /// deterministic volumes pull this toward zero).
    pub geomean_error: f64,
    /// Geometric-mean relative error over the *data-dependent* non-CSR
    /// lines (selectivity-driven volumes — the quantities that are actually
    /// hard to predict and the paper's headline ≈9 % refers to).
    pub geomean_error_data_dependent: f64,
    /// The worst CSR over-estimation factor observed.
    pub max_csr_overestimate: f64,
    /// Whether every CSR prediction over-estimated (the conservative
    /// direction).
    pub csr_always_over: bool,
}

/// Minimum measured volume for a line to participate in the error stats
/// (tiny scalars drown in rounding).
const MIN_VOLUME_BYTES: u64 = 1_000_000;

/// Runs the prediction-accuracy experiment over all ten workloads with a
/// private plan cache.
///
/// # Panics
///
/// Panics if a registered workload fails to sample or run.
#[must_use]
pub fn run(config: &SystemConfig) -> Report {
    run_with(config, &PlanCache::new())
}

/// [`run`] against a shared [`PlanCache`]: the sampling report, the fitted
/// predictions, and the materialized full-scale input all come from the
/// workload's cached [`activepy::OffloadPlan`].
///
/// # Panics
///
/// Panics if a registered workload fails to sample or run.
#[must_use]
pub fn run_with(config: &SystemConfig, cache: &PlanCache) -> Report {
    let per_workload: Vec<Vec<LineRow>> =
        crate::sweep::run_grid(isp_workloads::with_sparsemv(), |w| {
            let program = w.program().expect("registered workloads parse");
            let rt = ActivePy::new();
            let plan = cache
                .plan_for(&rt, w.name(), &program, &w, config)
                .expect("planning succeeds");
            let mut interp = Interpreter::new(&plan.full_storage);
            let measured = interp.run(&program, &[]).expect("full-scale run");
            plan.predictions
                .iter()
                .zip(&measured)
                .filter_map(|(pred, meas)| {
                    let measured_out = meas.cost.bytes_out;
                    if measured_out < MIN_VOLUME_BYTES {
                        return None;
                    }
                    let predicted_out = pred.cost.bytes_out;
                    let src = program.lines()[pred.line].source.clone();
                    Some(LineRow {
                        workload: w.name().to_owned(),
                        line: pred.line,
                        is_csr: src.contains("to_csr"),
                        source: src,
                        predicted_out,
                        measured_out,
                        ratio: predicted_out as f64 / measured_out as f64,
                    })
                })
                .collect()
        });
    let lines: Vec<LineRow> = per_workload.into_iter().flatten().collect();
    let non_csr_errors: Vec<f64> = lines
        .iter()
        .filter(|l| !l.is_csr)
        .map(|l| (l.ratio - 1.0).abs().max(1e-4))
        .collect();
    // Selectivity-driven lines: anything downstream of a data-dependent
    // reduction (the prediction genuinely extrapolates sample statistics).
    let dep_errors: Vec<f64> = lines
        .iter()
        .filter(|l| !l.is_csr && (l.ratio - 1.0).abs() > 1e-3)
        .map(|l| (l.ratio - 1.0).abs())
        .collect();
    let csr: Vec<&LineRow> = lines.iter().filter(|l| l.is_csr).collect();
    Report {
        geomean_error: geomean(&non_csr_errors),
        geomean_error_data_dependent: if dep_errors.is_empty() {
            0.0
        } else {
            geomean(&dep_errors)
        },
        max_csr_overestimate: csr.iter().map(|l| l.ratio).fold(0.0, f64::max),
        csr_always_over: !csr.is_empty() && csr.iter().all(|l| l.ratio > 1.0),
        lines,
    }
}

/// Prints the accuracy report.
pub fn print(report: &Report) {
    println!("== Volume-prediction accuracy (Eq. 1 inputs) ==");
    println!(
        "{:<14} {:>4} {:>12} {:>12} {:>7}  line",
        "workload", "ln", "predicted", "measured", "ratio"
    );
    for l in &report.lines {
        println!(
            "{:<14} {:>4} {:>12} {:>12} {:>7.3}  {}{}",
            l.workload,
            l.line,
            l.predicted_out,
            l.measured_out,
            l.ratio,
            l.source.chars().take(40).collect::<String>(),
            if l.is_csr { "  <-- CSR" } else { "" },
        );
    }
    println!(
        "geomean volume error: all non-CSR lines {:.2}%, data-dependent lines {:.1}% (paper ~9%)",
        report.geomean_error * 100.0,
        report.geomean_error_data_dependent * 100.0
    );
    println!(
        "CSR conversions over-estimated by up to {:.2}x (paper: up to 2.41x), always over: {}",
        report.max_csr_overestimate, report.csr_always_over
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_matches_the_paper() {
        let report = run(&SystemConfig::paper_default());
        assert!(!report.lines.is_empty());
        // Geomean error in the single-digit-percent band (paper: 9%).
        assert!(
            report.geomean_error < 0.2,
            "geomean error {} too large",
            report.geomean_error
        );
        assert!(
            report.geomean_error_data_dependent > 0.001
                && report.geomean_error_data_dependent < 0.2,
            "data-dependent error {} outside the plausible band",
            report.geomean_error_data_dependent
        );
        // The CSR outlier exists, over-estimates near the paper's 2.41x,
        // and always errs in the conservative direction.
        assert!(
            report.max_csr_overestimate > 1.5 && report.max_csr_overestimate < 3.5,
            "CSR over-estimate {} not near 2.41x",
            report.max_csr_overestimate
        );
        assert!(
            report.csr_always_over,
            "CSR predictions must be conservative"
        );
    }
}
