//! # isp-bench — the experiment harness
//!
//! One module per table/figure of the paper; each exposes a `run` function
//! returning structured results and a `print` helper producing the
//! paper-style rows. The `src/bin/*` binaries are thin wrappers, and the
//! Criterion benches in `benches/` time the same machinery.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1` | Table I — applications and input sizes |
//! | `fig2` | Figure 2 — static C-ISP vs CSE availability |
//! | `fig4` | Figure 4 — ActivePy vs programmer-directed ISP |
//! | `fig5` | Figure 5 — contention at 50 % progress, ± migration |
//! | `runtime_opt` | §V text — the 41 %/20 %/≈0 % language-runtime ladder |
//! | `prediction` | §V text — volume-prediction accuracy and the CSR outlier |
//! | `ablation` | design ablation — Algorithm 1 variants |

#![warn(missing_docs)]

pub mod experiments;
pub mod sweep;

/// Geometric mean of a slice of positive ratios.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geomean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_is_arithmetic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_geomean_panics() {
        let _ = geomean(&[]);
    }
}
