//! Calibration dashboard: prints every headline quantity of the paper next
//! to its measured value so cost-model constants can be tuned.

use activepy::runtime::ActivePy;
use alang::ExecTier;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::{best_static_plan, run_c_baseline, run_host_only, run_plan};

fn main() {
    let config = SystemConfig::paper_default();
    let mut speedups_ap = Vec::new();
    let mut speedups_pd = Vec::new();
    let mut ladder = (0.0f64, 0.0f64, 0.0f64); // interp, compiled, elim (ratios)
    let mut n = 0.0;

    println!(
        "{:<14} {:>8} {:>8} {:>6} {:>8} {:>6} {:>7} {:>7} {:>7}  csd-lines",
        "workload", "C-base", "PD-isp", "PDx", "ActPy", "APx", "py/C", "cy/C", "elim/C"
    );
    for w in isp_workloads::table1() {
        let base = run_c_baseline(&w, &config).expect("baseline").total_secs;
        let plan = best_static_plan(&w, &config).expect("plan");
        let pd = run_plan(&w, &config, &plan, ContentionScenario::none())
            .expect("pd run")
            .total_secs;
        let program = w.program().expect("parse");
        let outcome = ActivePy::new()
            .run(&program, &w, &config, ContentionScenario::none())
            .expect("activepy");
        let ap = outcome.report.total_secs;
        let interp = run_host_only(&w, &config, ExecTier::Interpreted)
            .expect("interp")
            .total_secs;
        let comp = run_host_only(&w, &config, ExecTier::Compiled)
            .expect("compiled")
            .total_secs;
        let elim = run_host_only(&w, &config, ExecTier::CompiledCopyElim)
            .expect("elim")
            .total_secs;
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>6.2} {:>8.2} {:>6.2} {:>7.3} {:>7.3} {:>7.3}  pd={:?} ap={:?}",
            w.name(),
            base,
            pd,
            base / pd,
            ap,
            base / ap,
            interp / base,
            comp / base,
            elim / base,
            plan.range,
            outcome.assignment.csd_lines,
        );
        speedups_pd.push(base / pd);
        speedups_ap.push(base / ap);
        ladder.0 += interp / base;
        ladder.1 += comp / base;
        ladder.2 += elim / base;
        n += 1.0;
    }
    let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "\ngeomean speedup: programmer-directed {:.3} (paper 1.33), ActivePy {:.3} (paper 1.34)",
        gm(&speedups_pd),
        gm(&speedups_ap)
    );
    println!(
        "runtime ladder (mean slowdown vs C): interpreted {:.3} (paper 1.41), cython {:.3} (paper 1.20), copy-elim {:.3} (paper ~1.01)",
        ladder.0 / n,
        ladder.1 / n,
        ladder.2 / n
    );
}
