//! Runs every experiment in sequence — the full evaluation of the paper.
use csd_sim::SystemConfig;
use isp_bench::experiments as ex;
fn main() {
    let config = SystemConfig::paper_default();
    ex::table1::print(&ex::table1::run());
    println!();
    ex::fig2::print(&ex::fig2::run(&config));
    println!();
    ex::fig4::print(&ex::fig4::run(&config));
    println!();
    ex::fig5::print(&ex::fig5::run(&config));
    println!();
    ex::runtime_opt::print(&ex::runtime_opt::run(&config));
    println!();
    ex::prediction::print(&ex::prediction::run(&config));
    println!();
    ex::ablation::print(&ex::ablation::run(&config));
    println!();
    ex::flexibility::print(&ex::flexibility::run_bw_sweep(), &ex::flexibility::run_gc());
}
