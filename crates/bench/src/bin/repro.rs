//! Runs every experiment in sequence — the full evaluation of the paper.
//!
//! All figures share one [`PlanCache`], so each (workload, platform) pair
//! is sampled, fitted, and assigned exactly once across the whole run.
//! With `--json`, the binary also times every experiment, re-runs Figure 5
//! through the original uncached serial path as a before/after control
//! (checking the rows are bit-identical), and writes the measurements to
//! `BENCH_repro.json`.

use std::time::Instant;

use activepy::PlanCache;
use csd_sim::SystemConfig;
use isp_bench::experiments as ex;
use serde::Serialize;

#[derive(Serialize)]
struct ExperimentTiming {
    name: String,
    wall_secs: f64,
}

#[derive(Serialize)]
struct CacheReport {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    plans: usize,
    planning_secs: f64,
}

#[derive(Serialize)]
struct Fig5Comparison {
    serial_uncached_secs: f64,
    cached_secs: f64,
    speedup: f64,
    rows_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    experiments: Vec<ExperimentTiming>,
    total_secs: f64,
    plan_cache: CacheReport,
    fig5_before_after: Fig5Comparison,
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let config = SystemConfig::paper_default();
    let cache = PlanCache::new();
    let mut experiments: Vec<ExperimentTiming> = Vec::new();
    let mut time = |name: &str, secs: f64| {
        experiments.push(ExperimentTiming {
            name: name.to_owned(),
            wall_secs: secs,
        });
    };

    let started = Instant::now();
    let t = Instant::now();
    let table1 = ex::table1::run();
    time("table1", t.elapsed().as_secs_f64());
    ex::table1::print(&table1);
    println!();

    let t = Instant::now();
    let fig2 = ex::fig2::run(&config);
    time("fig2", t.elapsed().as_secs_f64());
    ex::fig2::print(&fig2);
    println!();

    let t = Instant::now();
    let fig4 = ex::fig4::run_with(&config, &cache);
    time("fig4", t.elapsed().as_secs_f64());
    ex::fig4::print(&fig4);
    println!();

    let t = Instant::now();
    let fig5 = ex::fig5::run_with(&config, &cache);
    let fig5_cached_secs = t.elapsed().as_secs_f64();
    time("fig5", fig5_cached_secs);
    ex::fig5::print(&fig5);
    println!();

    let t = Instant::now();
    let runtime_opt = ex::runtime_opt::run(&config);
    time("runtime_opt", t.elapsed().as_secs_f64());
    ex::runtime_opt::print(&runtime_opt);
    println!();

    let t = Instant::now();
    let prediction = ex::prediction::run_with(&config, &cache);
    time("prediction", t.elapsed().as_secs_f64());
    ex::prediction::print(&prediction);
    println!();

    let t = Instant::now();
    let ablation = ex::ablation::run_with(&config, &cache);
    time("ablation", t.elapsed().as_secs_f64());
    ex::ablation::print(&ablation);
    println!();

    let t = Instant::now();
    let bw = ex::flexibility::run_bw_sweep_with(&cache);
    let gc = ex::flexibility::run_gc_with(&cache);
    time("flexibility", t.elapsed().as_secs_f64());
    ex::flexibility::print(&bw, &gc);

    let total_secs = started.elapsed().as_secs_f64();
    let stats = cache.stats();
    println!();
    println!(
        "plan cache: {} plans, {} hits / {} misses ({:.0}% hit rate), {:.2}s planning",
        cache.len(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.planning_nanos as f64 / 1e9,
    );

    if !json {
        return;
    }

    // Before/after control: Figure 5 through the original uncached serial
    // path. The rows must be bit-identical to the cached parallel sweep.
    let t = Instant::now();
    let fig5_serial = ex::fig5::run_serial(&config);
    let serial_secs = t.elapsed().as_secs_f64();
    let rows_identical = serde_json::to_string(&fig5).expect("rows serialize")
        == serde_json::to_string(&fig5_serial).expect("rows serialize");
    let speedup = serial_secs / fig5_cached_secs;
    println!(
        "fig5 before/after: serial uncached {serial_secs:.2}s, cached sweep \
         {fig5_cached_secs:.2}s ({speedup:.2}x), rows identical: {rows_identical}"
    );

    let report = BenchReport {
        experiments,
        total_secs,
        plan_cache: CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: stats.hit_rate(),
            plans: cache.len(),
            planning_secs: stats.planning_nanos as f64 / 1e9,
        },
        fig5_before_after: Fig5Comparison {
            serial_uncached_secs: serial_secs,
            cached_secs: fig5_cached_secs,
            speedup,
            rows_identical,
        },
    };
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_repro.json", rendered).expect("BENCH_repro.json is writable");
    println!("wrote BENCH_repro.json");
}
