//! Runs every experiment in sequence — the full evaluation of the paper.
//!
//! All figures share one [`PlanCache`], so each (workload, platform) pair
//! is sampled, fitted, and assigned exactly once across the whole run.
//! `--threads N` executes every Figure 5 plan under an N-worker
//! data-parallel kernel policy; the policy is execution-only, so the rows
//! are byte-identical to the serial grid's and only wall-clock moves.
//! With `--json`, the binary also times every experiment, re-runs Figure 5
//! through the original uncached serial path as a before/after control
//! (checking the rows are bit-identical), runs the kernel-scaling sweep,
//! and writes the measurements to `BENCH_repro.json`.

use std::time::Instant;

use activepy::PlanCache;
use alang::ParallelPolicy;
use csd_sim::SystemConfig;
use isp_bench::experiments as ex;
use serde::Serialize;

#[derive(Serialize)]
struct ExperimentTiming {
    name: String,
    wall_secs: f64,
}

#[derive(Serialize)]
struct CacheReport {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    plans: usize,
    planning_secs: f64,
}

#[derive(Serialize)]
struct Fig5Comparison {
    serial_uncached_secs: f64,
    cached_secs: f64,
    speedup: f64,
    rows_identical: bool,
}

#[derive(Serialize)]
struct InterpComparison {
    ast_walk_secs: f64,
    vm_secs: f64,
    speedup: f64,
    lower_secs: f64,
    rows_identical: bool,
}

#[derive(Serialize)]
struct FaultsReport {
    seed: u64,
    rows: Vec<ex::faults::Row>,
    fault_migrations: u64,
    wrong_answers: usize,
}

#[derive(Serialize)]
struct BenchReport {
    experiments: Vec<ExperimentTiming>,
    total_secs: f64,
    threads: usize,
    plan_cache: CacheReport,
    fig5_before_after: Fig5Comparison,
    interp: InterpComparison,
    faults: FaultsReport,
    decode: ex::decode::Report,
    scaling: ex::scaling::Report,
    shards: ex::shards::Report,
    adapt: ex::adapt::Report,
    recovery: ex::recovery::Report,
    audit: ex::audit::Report,
}

/// Times per-line execution — the component of sampling wall-clock the
/// lowering pass removes — on both evaluation backends.
///
/// The programs are dispatch-bound (scalar chains, tiny arrays, a
/// minimum-size TPC-H Q6 pipeline): per-line kernel work is negligible,
/// so the measurement isolates name resolution, input re-walks, and
/// builtin matching — exactly what the paper's Cython tier eliminates.
/// Each engine is timed over several interleaved rounds and the minimum
/// round is kept, the standard guard against scheduler noise. Lowering
/// is timed separately since plans lower once and execute many times.
fn measure_interp() -> InterpComparison {
    use alang::builtins::Storage;
    use alang::interp::Interpreter;
    use alang::table::{Column, Table};
    use alang::value::ArrayVal;
    use alang::{Value, Vm};
    use std::sync::Arc;

    let scalar: String = (0..24)
        .map(|i| match i % 4 {
            0 => format!("s{i} = {i} + 1\n"),
            1 => format!("s{i} = s{} * 2 - 3\n", i - 1),
            2 => format!("s{i} = s{} / (s{} + 1)\n", i - 1, i - 2),
            _ => format!("s{i} = -s{} + s{}\n", i - 1, i - 3),
        })
        .collect();
    let tiny_arrays = "a = scan('v')\nb = a * 2 + 1\nm = b < 5\nc = sum(b)\n\
                       d = mean(a)\ne = abs(a - d)\nf = sum(e) + c\n";
    let q6_micro = "t = scan('lineitem')\nq = col(t, 'qty')\nm = q < 24\n\
                    p = col(t, 'price')\ns = select(p, m)\nr = sum(s)\n";

    let mut st = Storage::new();
    st.insert(
        "v",
        Value::Array(ArrayVal::with_logical(vec![1.0, 2.0, 3.0, 4.0], 1_000_000)),
    );
    let table = Table::with_logical_rows(
        vec![
            (
                "qty".into(),
                Column::F64(Arc::new(vec![10.0, 30.0, 5.0, 40.0])),
            ),
            (
                "price".into(),
                Column::F64(Arc::new(vec![100.0, 200.0, 50.0, 400.0])),
            ),
        ],
        4_000_000,
    )
    .expect("table");
    st.insert("lineitem", Value::Table(table));

    let mut cases = Vec::new();
    let mut rows_identical = true;
    for src in [scalar.as_str(), tiny_arrays, q6_micro] {
        let program = alang::parser::parse(src).expect("parse");
        let flags = vec![false; program.len()];
        let lowered = alang::lower::lower(&program).expect("lowers");
        let ast = Interpreter::new(&st).run(&program, &flags).expect("ast");
        let vm = Vm::new(&lowered, &st).run().expect("vm");
        rows_identical &= ast == vm;
        cases.push((program, flags, lowered));
    }

    const ROUNDS: usize = 7;
    const ITERS: usize = 3000;
    let mut ast_walk_secs = f64::INFINITY;
    let mut vm_secs = f64::INFINITY;
    let mut lower_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..ITERS {
            for (program, flags, _) in &cases {
                let mut interp = Interpreter::new(&st);
                std::hint::black_box(interp.run(program, flags).expect("ast"));
            }
        }
        ast_walk_secs = ast_walk_secs.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..ITERS {
            for (_, _, lowered) in &cases {
                let mut vm = Vm::new(lowered, &st);
                std::hint::black_box(vm.run().expect("vm"));
            }
        }
        vm_secs = vm_secs.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..ITERS {
            for (program, _, _) in &cases {
                std::hint::black_box(alang::lower::lower(program).expect("lowers"));
            }
        }
        lower_secs = lower_secs.min(t.elapsed().as_secs_f64());
    }

    InterpComparison {
        ast_walk_secs,
        vm_secs,
        speedup: ast_walk_secs / vm_secs,
        lower_secs,
        rows_identical,
    }
}

/// What `--trace PATH [--trace-format F] [--trace-mask-wall]
/// [--trace-workload W]` asked for.
struct TraceRequest {
    path: String,
    format: TraceFormat,
    mask_wall: bool,
    workload: Option<String>,
}

enum TraceFormat {
    Jsonl,
    Chrome,
}

/// Parses the `--trace*` flag family. Exits with a usage error on a
/// malformed combination.
fn parse_trace() -> Option<TraceRequest> {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).map(|pos| {
            args.get(pos + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
        })
    };
    let path = flag_value("--trace")?;
    let format = match flag_value("--trace-format").as_deref() {
        None | Some("jsonl") => TraceFormat::Jsonl,
        Some("chrome") => TraceFormat::Chrome,
        Some(other) => {
            eprintln!("--trace-format must be 'jsonl' or 'chrome', got '{other}'");
            std::process::exit(2);
        }
    };
    Some(TraceRequest {
        path,
        format,
        mask_wall: args.iter().any(|a| a == "--trace-mask-wall"),
        workload: flag_value("--trace-workload"),
    })
}

/// The `--trace` mode: runs the Figure 5 grid serially with a live tracer
/// threaded through every pipeline phase and writes the journal. Other
/// experiments are skipped and `BENCH_repro.json` is not written — trace
/// runs observe, they do not publish benchmark rows.
fn run_traced(req: &TraceRequest, config: &SystemConfig, policy: ParallelPolicy) {
    let (tracer, sink) = isp_obs::Tracer::to_memory();
    let cache = PlanCache::new();
    let rows = ex::fig5::run_traced(config, &cache, policy, &tracer, req.workload.as_deref());
    if rows.is_empty() {
        eprintln!(
            "--trace-workload '{}' matched no registered workload",
            req.workload.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }
    ex::fig5::print(&rows);
    let events = sink.events();
    let metrics = tracer.metrics_snapshot();
    let rendered = match req.format {
        TraceFormat::Jsonl => isp_obs::export::jsonl(&events, metrics.as_ref(), req.mask_wall),
        TraceFormat::Chrome => {
            isp_obs::export::chrome_trace(&events, metrics.as_ref(), req.mask_wall)
        }
    };
    std::fs::write(&req.path, rendered).expect("trace output path is writable");
    println!();
    println!("wrote {} trace events to {}", events.len(), req.path);
}

/// Parses `--shards N`: narrows the shard-scaling sweep to fleet sizes
/// {1, N} (N=1 runs the baseline row alone). Without the flag the sweep
/// visits the full default grid.
fn parse_shards() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--shards")?;
    let n = args
        .get(pos + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            eprintln!("--shards requires a positive integer");
            std::process::exit(2);
        });
    if n == 0 || n > 64 {
        eprintln!("--shards must be between 1 and 64, got {n}");
        std::process::exit(2);
    }
    Some(n)
}

/// The `--adapt` mode: runs only the adaptation sweep (optionally a
/// single workload via `--adapt-workload W`), prints the regret table,
/// and exits non-zero if an invariant fails. Other experiments are
/// skipped and `BENCH_repro.json` is not written.
fn run_adapt_focused(config: &SystemConfig) {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .iter()
        .position(|a| a == "--adapt-workload")
        .and_then(|pos| args.get(pos + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned();
    let report = match workload.as_deref() {
        Some(name) => ex::adapt::run_one(name, config).unwrap_or_else(|| {
            eprintln!("--adapt-workload '{name}' matched no registered workload");
            std::process::exit(2);
        }),
        None => ex::adapt::run(config),
    };
    ex::adapt::print(&report);
    if let Err(e) = ex::adapt::check(&report) {
        eprintln!("adaptation sweep check failed: {e}");
        std::process::exit(1);
    }
}

/// The `--audit` mode: runs only the planner-audit calibration sweep
/// (optionally a single workload via `--audit-workload W`), prints the
/// predicted-vs-measured table, and exits non-zero if a calibration
/// invariant fails — the CI smoke gate. Other experiments are skipped
/// and `BENCH_repro.json` is not written.
fn run_audit_focused(config: &SystemConfig) {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .iter()
        .position(|a| a == "--audit-workload")
        .and_then(|pos| args.get(pos + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned();
    let report = match workload.as_deref() {
        Some(name) => ex::audit::run_one(name, config).unwrap_or_else(|| {
            eprintln!("--audit-workload '{name}' matched no registered workload");
            std::process::exit(2);
        }),
        None => ex::audit::run(config),
    };
    ex::audit::print(&report);
    if let Err(e) = ex::audit::check(&report) {
        eprintln!("planner-audit check failed: {e}");
        std::process::exit(1);
    }
}

/// The `--journal PATH` / `--resume PATH` focused mode: runs the fixed
/// faulted recovery workload with the execution journal attached.
/// `--journal` records a fresh journal at PATH (the `ISP_WAL_KILL_AFTER`
/// env hook can kill the process mid-run to leave a torn tail);
/// `--resume PATH` replays an existing journal — verifying every
/// surviving record against the deterministic re-execution — and
/// appends the rest. Both print a parseable `run fingerprint: 0x…` line
/// so scripts can compare killed-and-resumed runs against uninterrupted
/// ones. Other experiments are skipped and `BENCH_repro.json` is not
/// written.
fn run_journal_focused(path: &str, resume: bool) {
    use activepy::ExecJournal;
    let path = std::path::Path::new(path);
    let journal = if resume {
        let (journal, info) = ExecJournal::resume_from(path).unwrap_or_else(|e| {
            eprintln!("cannot resume from {}: {e}", path.display());
            std::process::exit(2);
        });
        println!(
            "resuming from {} journaled records (torn tail discarded: {})",
            info.records, info.torn_tail
        );
        journal
    } else {
        ExecJournal::record_to(path).unwrap_or_else(|e| {
            eprintln!("cannot create journal at {}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let report = ex::recovery::run_once(journal.clone());
    if let Some(stats) = journal.stats() {
        println!(
            "journal: {} records replay-verified, {} appended",
            stats.replayed, stats.appended
        );
    }
    println!(
        "recovery: {} transients, {} retries, {} migrations",
        report.metrics.recovery.transient_faults,
        report.metrics.recovery.retries,
        report.metrics.recovery.fault_migrations
    );
    println!("run fingerprint: {:#018x}", report.values_fingerprint);
}

fn usage() {
    println!(
        "repro — run the full ActivePy evaluation\n\n\
         USAGE:\n    repro [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20   --json                 time every experiment and write BENCH_repro.json\n\
         \x20   --threads N            run Figure 5 plans under an N-worker kernel policy\n\
         \x20   --shards N             narrow the shard-scaling sweep to fleet sizes {{1, N}}\n\
         \x20                          (default grid: N in {:?})\n\
         \x20   --adapt                run only the adaptation sweep; exits non-zero if its\n\
         \x20                          regret/fingerprint checks fail\n\
         \x20   --adapt-workload W     narrow --adapt to a single workload\n\
         \x20   --audit                run only the planner-audit calibration sweep; exits\n\
         \x20                          non-zero if its error-band/flip/fingerprint checks fail\n\
         \x20   --audit-workload W     narrow --audit to a single workload\n\
         \x20   --journal PATH         run the recovery workload recording an execution\n\
         \x20                          journal at PATH (skips other experiments)\n\
         \x20   --resume PATH          resume the recovery workload from the journal at\n\
         \x20                          PATH, verifying replayed records (skips other\n\
         \x20                          experiments)\n\
         \x20   --trace PATH           trace the Figure 5 grid to PATH (skips other experiments)\n\
         \x20   --trace-format F       trace format: jsonl (default) or chrome\n\
         \x20   --trace-mask-wall      mask wall-clock timestamps in the trace\n\
         \x20   --trace-workload W     trace only workload W\n\
         \x20   --help                 print this help",
        ex::shards::SHARD_COUNTS
    );
}

/// Parses `--threads N` (default 1), validating against the engine's
/// policy rules.
fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return 1;
    };
    let threads = args
        .get(pos + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            eprintln!("--threads requires a positive integer");
            std::process::exit(2);
        });
    if let Err(e) = ParallelPolicy::with_threads(threads).validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    threads
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    let json = std::env::args().any(|a| a == "--json");
    let threads = parse_threads();
    let shard_focus = parse_shards();
    let policy = ParallelPolicy::with_threads(threads);
    let config = SystemConfig::paper_default();
    if let Some(req) = parse_trace() {
        run_traced(&req, &config, policy);
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    for (flag, resume) in [("--journal", false), ("--resume", true)] {
        if let Some(pos) = args.iter().position(|a| a == flag) {
            let Some(path) = args.get(pos + 1).filter(|v| !v.starts_with("--")) else {
                eprintln!("{flag} requires a path");
                std::process::exit(2);
            };
            run_journal_focused(path, resume);
            return;
        }
    }
    if std::env::args().any(|a| a == "--adapt") {
        run_adapt_focused(&config);
        return;
    }
    if std::env::args().any(|a| a == "--audit" || a == "--audit-workload") {
        run_audit_focused(&config);
        return;
    }
    let cache = PlanCache::new();
    let mut experiments: Vec<ExperimentTiming> = Vec::new();
    let mut time = |name: &str, secs: f64| {
        experiments.push(ExperimentTiming {
            name: name.to_owned(),
            wall_secs: secs,
        });
    };

    let started = Instant::now();
    let t = Instant::now();
    let table1 = ex::table1::run();
    time("table1", t.elapsed().as_secs_f64());
    ex::table1::print(&table1);
    println!();

    let t = Instant::now();
    let fig2 = ex::fig2::run(&config);
    time("fig2", t.elapsed().as_secs_f64());
    ex::fig2::print(&fig2);
    println!();

    let t = Instant::now();
    let fig4 = ex::fig4::run_with(&config, &cache);
    time("fig4", t.elapsed().as_secs_f64());
    ex::fig4::print(&fig4);
    println!();

    let t = Instant::now();
    let fig5 = ex::fig5::run_with_policy(&config, &cache, policy);
    let fig5_cached_secs = t.elapsed().as_secs_f64();
    time("fig5", fig5_cached_secs);
    ex::fig5::print(&fig5);
    println!();

    let t = Instant::now();
    let runtime_opt = ex::runtime_opt::run(&config);
    time("runtime_opt", t.elapsed().as_secs_f64());
    ex::runtime_opt::print(&runtime_opt);
    println!();

    let t = Instant::now();
    let prediction = ex::prediction::run_with(&config, &cache);
    time("prediction", t.elapsed().as_secs_f64());
    ex::prediction::print(&prediction);
    println!();

    let t = Instant::now();
    let ablation = ex::ablation::run_with(&config, &cache);
    time("ablation", t.elapsed().as_secs_f64());
    ex::ablation::print(&ablation);
    println!();

    let t = Instant::now();
    let bw = ex::flexibility::run_bw_sweep_with(&cache);
    let gc = ex::flexibility::run_gc_with(&cache);
    time("flexibility", t.elapsed().as_secs_f64());
    ex::flexibility::print(&bw, &gc);
    println!();

    let t = Instant::now();
    let faults = ex::faults::run_with(&config, &cache);
    time("faults", t.elapsed().as_secs_f64());
    ex::faults::print(&faults);
    println!();

    let t = Instant::now();
    let decode = ex::decode::run_with(&config, &cache);
    time("decode", t.elapsed().as_secs_f64());
    ex::decode::print(&decode);
    if let Err(e) = ex::decode::check(&decode) {
        eprintln!("decode experiment check failed: {e}");
    }
    println!();

    let t = Instant::now();
    let scaling = ex::scaling::run();
    time("scaling", t.elapsed().as_secs_f64());
    ex::scaling::print(&scaling);
    if let Err(e) = ex::scaling::check(&scaling) {
        eprintln!("scaling sweep check failed: {e}");
    }
    println!();

    let t = Instant::now();
    let shards = match shard_focus {
        // --shards N: the baseline row plus the requested fleet size only.
        Some(n) => {
            let counts: Vec<usize> = if n == 1 { vec![1] } else { vec![1, n] };
            ex::shards::run_configured(
                &ex::shards::WORKLOADS,
                &counts,
                &cache,
                &ex::shards::RunCounters::default(),
            )
        }
        None => ex::shards::run_with(&cache),
    };
    time("shards", t.elapsed().as_secs_f64());
    ex::shards::print(&shards);
    // The floors assume the full grid; a narrowed --shards run skips them.
    if shard_focus.is_none() {
        if let Err(e) = ex::shards::check(&shards) {
            eprintln!("shard sweep check failed: {e}");
        }
    }
    println!();

    let t = Instant::now();
    let adapt = ex::adapt::run(&config);
    time("adapt", t.elapsed().as_secs_f64());
    ex::adapt::print(&adapt);
    if let Err(e) = ex::adapt::check(&adapt) {
        eprintln!("adaptation sweep check failed: {e}");
    }
    println!();

    let t = Instant::now();
    let recovery = ex::recovery::run();
    time("recovery", t.elapsed().as_secs_f64());
    ex::recovery::print(&recovery);
    if let Err(e) = ex::recovery::check(&recovery) {
        eprintln!("recovery benchmark check failed: {e}");
    }
    println!();

    let t = Instant::now();
    let audit = ex::audit::run(&config);
    time("audit", t.elapsed().as_secs_f64());
    ex::audit::print(&audit);
    if let Err(e) = ex::audit::check(&audit) {
        eprintln!("planner-audit check failed: {e}");
    }

    let total_secs = started.elapsed().as_secs_f64();
    let stats = cache.stats();
    println!();
    println!(
        "plan cache: {} plans, {} hits / {} misses ({:.0}% hit rate), {:.2}s planning",
        cache.len(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.planning_nanos as f64 / 1e9,
    );

    if !json {
        return;
    }

    // Before/after control: Figure 5 through the original uncached serial
    // path. The rows must be bit-identical to the cached parallel sweep.
    let t = Instant::now();
    let fig5_serial = ex::fig5::run_serial(&config);
    let serial_secs = t.elapsed().as_secs_f64();
    let rows_identical = serde_json::to_string(&fig5).expect("rows serialize")
        == serde_json::to_string(&fig5_serial).expect("rows serialize");
    let speedup = serial_secs / fig5_cached_secs;
    println!(
        "fig5 before/after: serial uncached {serial_secs:.2}s, cached sweep \
         {fig5_cached_secs:.2}s ({speedup:.2}x), rows identical: {rows_identical}"
    );

    let interp = measure_interp();
    println!(
        "interp engines: ast-walk {:.3}s, vm {:.3}s ({:.2}x), lowering {:.3}s, \
         rows identical: {}",
        interp.ast_walk_secs,
        interp.vm_secs,
        interp.speedup,
        interp.lower_secs,
        interp.rows_identical
    );

    let report = BenchReport {
        experiments,
        total_secs,
        threads,
        plan_cache: CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: stats.hit_rate(),
            plans: cache.len(),
            planning_secs: stats.planning_nanos as f64 / 1e9,
        },
        fig5_before_after: Fig5Comparison {
            serial_uncached_secs: serial_secs,
            cached_secs: fig5_cached_secs,
            speedup,
            rows_identical,
        },
        interp,
        shards,
        adapt,
        recovery,
        audit,
        faults: FaultsReport {
            seed: ex::faults::FAULT_SEED,
            fault_migrations: faults.iter().map(|r| r.fault_migrations).sum(),
            wrong_answers: faults.iter().filter(|r| !r.values_match).count(),
            rows: faults,
        },
        decode,
        scaling,
    };
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_repro.json", rendered).expect("BENCH_repro.json is writable");
    println!("wrote BENCH_repro.json");
}
