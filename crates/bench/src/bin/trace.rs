//! Analyzes JSONL event journals written by `repro --trace`.
//!
//! ```text
//! trace <journal.jsonl> [--top N]      summarize one journal
//! trace <journal.jsonl> --prom         render its metrics footer as
//!                                      Prometheus text exposition
//! trace diff <a.jsonl> <b.jsonl>       align two journals span-by-span;
//!                                      exit 0 iff identical on the
//!                                      simulated clock
//! ```
//!
//! The summary prints the per-phase breakdown on both clocks, the top-N
//! spans by simulated duration, the migration timeline, the counter
//! footer, and — for audited journals — the calibration-error quantiles
//! and worst-mispredicted-lines table. Only the JSONL format is
//! accepted — the Chrome export targets Perfetto, not this tool.

use isp_obs::export::prometheus;
use isp_obs::{diff_journals, footer_snapshot, parse_journal, render_diff, summarize, Journal};

fn usage() -> ! {
    eprintln!(
        "usage: trace <journal.jsonl> [--top N] [--prom]\n\
         \x20      trace diff <a.jsonl> <b.jsonl>"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Journal {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let journal = parse_journal(&text).unwrap_or_else(|e| {
        eprintln!("trace: {path} is not a JSONL journal: {e}");
        std::process::exit(1);
    });
    if journal.torn_lines > 0 {
        eprintln!(
            "trace: warning: {} torn line(s) skipped at the end of {path} \
             (crash-truncated journal?)",
            journal.torn_lines
        );
    }
    journal
}

fn run_diff(args: &[String]) -> ! {
    let [a, b] = args else { usage() };
    let diff = diff_journals(&load(a), &load(b));
    print!("{}", render_diff(&diff));
    std::process::exit(i32::from(!diff.identical()));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        run_diff(&args[1..]);
    }
    let mut path: Option<&str> = None;
    let mut top_n = 10usize;
    let mut prom = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top_n = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--prom" => {
                prom = true;
                i += 1;
            }
            flag if flag.starts_with("--") => usage(),
            p => {
                if path.replace(p).is_some() {
                    usage();
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else { usage() };
    let journal = load(path);
    if prom {
        let Some(snap) = footer_snapshot(&journal) else {
            eprintln!("trace: {path} has no metrics footer to export");
            std::process::exit(1);
        };
        let rendered = prometheus::render(&snap);
        if let Err(e) = prometheus::validate(&rendered) {
            eprintln!("trace: internal error: exposition failed validation: {e}");
            std::process::exit(1);
        }
        print!("{rendered}");
        return;
    }
    print!("{}", summarize(&journal, top_n));
}
