//! Summarizes a JSONL event journal written by `repro --trace`.
//!
//! ```text
//! trace out.jsonl [--top N]
//! ```
//!
//! Prints the per-phase breakdown on both clocks, the top-N spans by
//! simulated duration, the migration timeline, and the counter footer.
//! Only the JSONL format is accepted — the Chrome export targets
//! Perfetto, not this tool.

use isp_obs::{parse_journal, summarize};

fn usage() -> ! {
    eprintln!("usage: trace <journal.jsonl> [--top N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut top_n = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top_n = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            flag if flag.starts_with("--") => usage(),
            p => {
                if path.replace(p).is_some() {
                    usage();
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let journal = parse_journal(&text).unwrap_or_else(|e| {
        eprintln!("trace: {path} is not a JSONL journal: {e}");
        std::process::exit(1);
    });
    if journal.torn_lines > 0 {
        eprintln!(
            "trace: warning: {} torn line(s) skipped at the end of {path} \
             (crash-truncated journal?)",
            journal.torn_lines
        );
    }
    print!("{}", summarize(&journal, top_n));
}
