//! Regenerates Figure 5.
use csd_sim::SystemConfig;
fn main() {
    let rows = isp_bench::experiments::fig5::run(&SystemConfig::paper_default());
    isp_bench::experiments::fig5::print(&rows);
}
