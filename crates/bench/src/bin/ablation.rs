//! Regenerates the Algorithm-1 design ablation.
use csd_sim::SystemConfig;
fn main() {
    let rows = isp_bench::experiments::ablation::run(&SystemConfig::paper_default());
    isp_bench::experiments::ablation::print(&rows);
}
