//! Regenerates the language-runtime optimization ladder (SV text).
use csd_sim::SystemConfig;
fn main() {
    let rows = isp_bench::experiments::runtime_opt::run(&SystemConfig::paper_default());
    isp_bench::experiments::runtime_opt::print(&rows);
}
