//! Regenerates Figure 2.
use csd_sim::SystemConfig;
fn main() {
    let rows = isp_bench::experiments::fig2::run(&SystemConfig::paper_default());
    isp_bench::experiments::fig2::print(&rows);
}
