//! A small CLI for running any registered workload through ActivePy (or a
//! baseline) under configurable conditions.
//!
//! ```sh
//! cargo run --release -p isp-bench --bin run_workload -- TPC-H-6
//! cargo run --release -p isp-bench --bin run_workload -- PageRank --availability 0.1 --at-progress 0.5
//! cargo run --release -p isp-bench --bin run_workload -- KMeans --no-migration --baseline
//! cargo run --release -p isp-bench --bin run_workload -- MixedGEMM --nvmeof --json
//! ```

use activepy::runtime::{ActivePy, ActivePyOptions};
use csd_sim::units::SimTime;
use csd_sim::{ContentionScenario, SystemConfig};
use isp_baselines::run_c_baseline;
use std::process::ExitCode;

struct Args {
    workload: String,
    availability: f64,
    at_progress: Option<f64>,
    no_migration: bool,
    baseline: bool,
    nvmeof: bool,
    json: bool,
    timeline: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: run_workload <WORKLOAD> [--availability F] [--at-progress F] \
         [--no-migration] [--baseline] [--nvmeof] [--json] [--timeline]\n\
         workloads: {}",
        isp_workloads::with_sparsemv()
            .iter()
            .map(|w| w.name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        availability: 1.0,
        at_progress: None,
        no_migration: false,
        baseline: false,
        nvmeof: false,
        json: false,
        timeline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--availability" => {
                args.availability = it
                    .next()
                    .ok_or("--availability needs a value")?
                    .parse()
                    .map_err(|e| format!("--availability: {e}"))?;
            }
            "--at-progress" => {
                args.at_progress = Some(
                    it.next()
                        .ok_or("--at-progress needs a value")?
                        .parse()
                        .map_err(|e| format!("--at-progress: {e}"))?,
                );
            }
            "--no-migration" => args.no_migration = true,
            "--baseline" => args.baseline = true,
            "--nvmeof" => args.nvmeof = true,
            "--json" => args.json = true,
            "--timeline" => args.timeline = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name if args.workload.is_empty() => args.workload = name.to_owned(),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    if args.workload.is_empty() {
        return Err("missing workload name".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(w) = isp_workloads::by_name(&args.workload) else {
        eprintln!("error: unknown workload `{}`", args.workload);
        return usage();
    };
    let config = if args.nvmeof {
        SystemConfig::nvmeof_default()
    } else {
        SystemConfig::paper_default()
    };

    let baseline = match run_c_baseline(&w, &config) {
        Ok(r) => r.total_secs,
        Err(e) => {
            eprintln!("error: baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.baseline {
        println!("{}: no-CSD C baseline {baseline:.3}s", w.name());
    }

    let scenario = if args.availability >= 1.0 {
        ContentionScenario::none()
    } else {
        match args.at_progress {
            None => ContentionScenario::constant(args.availability),
            Some(p) => {
                // Compute the absolute stress time from an uncontended run.
                let program = w.program().expect("registered workloads parse");
                let reference = ActivePy::new()
                    .run(&program, &w, &config, ContentionScenario::none())
                    .expect("reference run");
                let t = reference
                    .report
                    .time_at_csd_progress(p)
                    .unwrap_or(reference.report.total_secs * p);
                ContentionScenario::at_time(SimTime::from_secs(t), args.availability)
            }
        }
    };

    let mut options = ActivePyOptions::default();
    if args.no_migration {
        options = options.without_migration();
    }
    let program = w.program().expect("registered workloads parse");
    let outcome = match ActivePy::with_options(options).run(&program, &w, &config, scenario) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: ActivePy failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        match serde_json::to_string_pretty(&outcome.report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "{}: {} lines, offloaded {:?} under {scenario}",
        w.name(),
        program.len(),
        outcome.assignment.csd_lines
    );
    println!(
        "end-to-end {:.3}s (baseline {baseline:.3}s -> {:.2}x); sampling {:.3}s, codegen {:.3}s",
        outcome.report.total_secs,
        baseline / outcome.report.total_secs,
        outcome.sampling_secs,
        outcome.compile_secs,
    );
    if args.timeline {
        print!(
            "{}",
            activepy::report::render_timeline(&program, &outcome.report)
        );
    }
    if let Some(m) = outcome.report.migration {
        println!(
            "migrated ({:?}) after line {} at {:.3}s, {} B of state, {:.0} ms regen",
            m.reason,
            m.after_line,
            m.at_secs,
            m.state_bytes,
            m.regen_secs * 1e3
        );
    }
    ExitCode::SUCCESS
}
