//! Bench-history tooling: an append-only JSONL ledger of `BENCH_repro.json`
//! runs plus the regression check CI runs against it.
//!
//! ```text
//! history append [--report BENCH_repro.json] [--history BENCH_history.jsonl] [--sha SHA]
//! history check  [--history BENCH_history.jsonl] [--band FACTOR]
//! ```
//!
//! `append` extracts one line per run: the git SHA, a config fingerprint
//! (FNV-1a over the thread count and the ordered experiment-section
//! names, so rows from differently-shaped runs never get compared), the
//! per-section wall-clock scalars, and the run's *deterministic*
//! outcomes (fingerprint divergences, wrong answers, audit flips…).
//!
//! `check` walks the ledger newest-entry-last: deterministic outcomes
//! must be identical across every entry sharing a config fingerprint —
//! those are seeded simulations, and any drift is a real regression.
//! Wall-clock sections only *flag* when the newest entry exceeds the
//! best prior entry by more than the noise band (default 2.5×, generous
//! because ledger entries may come from different machines).

use std::fmt::Write as _;

use isp_obs::journal::{parse_json, JsonValue};

/// Default multiplicative noise band for wall-clock comparisons.
const DEFAULT_BAND: f64 = 2.5;

fn usage() -> ! {
    eprintln!(
        "usage: history append [--report PATH] [--history PATH] [--sha SHA]\n\
         \x20      history check  [--history PATH] [--band FACTOR]"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|pos| {
        args.get(pos + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
    })
}

fn read_json(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("history: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_json(&text).unwrap_or_else(|e| {
        eprintln!("history: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn num(v: &JsonValue, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64()
}

/// The deterministic outcomes a run must reproduce bit-for-bit:
/// `(name, value)` rows in a fixed order.
fn deterministic_scalars(report: &JsonValue) -> Vec<(&'static str, u64)> {
    let b = |path: &[&str]| -> u64 {
        path.iter()
            .try_fold(report, |cur, k| cur.get(k))
            .map(|v| match v {
                JsonValue::Bool(true) => 1,
                JsonValue::Bool(false) => 0,
                other => other.as_u64().unwrap_or(0),
            })
            .unwrap_or_default()
    };
    vec![
        (
            "fig5_rows_identical",
            b(&["fig5_before_after", "rows_identical"]),
        ),
        ("interp_rows_identical", b(&["interp", "rows_identical"])),
        ("faults_wrong_answers", b(&["faults", "wrong_answers"])),
        ("adapt_divergences", b(&["adapt", "divergences"])),
        (
            "shards_divergences",
            b(&["shards", "fingerprint_divergences"]),
        ),
        (
            "audit_divergences",
            b(&["audit", "fingerprint_divergences"]),
        ),
        ("audit_flips", b(&["audit", "counterfactual_flips"])),
        ("audit_lines", b(&["audit", "lines_audited"])),
    ]
}

/// Wall-clock sections: experiment name → wall seconds, plus the total.
fn wall_sections(report: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(JsonValue::Arr(items)) = report.get("experiments") {
        for item in items {
            if let (Some(name), Some(secs)) = (
                item.get("name").and_then(JsonValue::as_str),
                num(item, &["wall_secs"]),
            ) {
                out.push((name.to_string(), secs));
            }
        }
    }
    if let Some(total) = num(report, &["total_secs"]) {
        out.push(("total".to_string(), total));
    }
    out
}

/// FNV-1a over the run shape: thread count and ordered section names.
fn config_fingerprint(report: &JsonValue) -> u64 {
    let mut desc = format!(
        "threads={};sections=",
        num(report, &["threads"]).unwrap_or(0.0) as u64
    );
    for (name, _) in wall_sections(report) {
        desc.push_str(&name);
        desc.push(',');
    }
    isp_obs::fnv1a(desc.as_bytes())
}

fn append(args: &[String]) {
    let report_path = flag_value(args, "--report").unwrap_or_else(|| "BENCH_repro.json".into());
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let sha = flag_value(args, "--sha").unwrap_or_else(git_sha);
    let report = read_json(&report_path);

    // Hand-rolled JSON line with a fixed field order, matching the
    // repo-wide byte-stability idiom.
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"sha\":\"{sha}\",\"config_fp\":\"{:#018x}\",\"determinism\":{{",
        config_fingerprint(&report)
    );
    for (i, (name, value)) in deterministic_scalars(&report).iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{name}\":{value}");
    }
    line.push_str("},\"wall_secs\":{");
    for (i, (name, secs)) in wall_sections(&report).iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "\"{name}\":{secs}");
    }
    line.push_str("}}\n");

    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .unwrap_or_else(|e| {
            eprintln!("history: cannot open {history_path}: {e}");
            std::process::exit(1);
        });
    file.write_all(line.as_bytes()).unwrap_or_else(|e| {
        eprintln!("history: cannot append to {history_path}: {e}");
        std::process::exit(1);
    });
    println!("appended {sha} to {history_path}");
}

struct Entry {
    sha: String,
    config_fp: String,
    determinism: Vec<(String, u64)>,
    wall_secs: Vec<(String, f64)>,
}

fn parse_entry(line: &str, no: usize) -> Entry {
    let v = parse_json(line).unwrap_or_else(|e| {
        eprintln!("history: ledger line {no}: {e}");
        std::process::exit(1);
    });
    let field_map = |key: &str| -> Vec<(String, JsonValue)> {
        v.get(key)
            .and_then(JsonValue::as_obj)
            .map(<[(String, JsonValue)]>::to_vec)
            .unwrap_or_default()
    };
    Entry {
        sha: v
            .get("sha")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string(),
        config_fp: v
            .get("config_fp")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| {
                eprintln!("history: ledger line {no}: missing config_fp");
                std::process::exit(1);
            })
            .to_string(),
        determinism: field_map("determinism")
            .into_iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k, n)))
            .collect(),
        wall_secs: field_map("wall_secs")
            .into_iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k, n)))
            .collect(),
    }
}

fn check(args: &[String]) {
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "BENCH_history.jsonl".into());
    let band: f64 = flag_value(args, "--band")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--band must be a number, got '{v}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_BAND);
    let text = std::fs::read_to_string(&history_path).unwrap_or_else(|e| {
        eprintln!("history: cannot read {history_path}: {e}");
        std::process::exit(1);
    });
    let entries: Vec<Entry> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_entry(l, i + 1))
        .collect();
    let Some(newest) = entries.last() else {
        eprintln!("history: {history_path} has no entries");
        std::process::exit(1);
    };
    let prior: Vec<&Entry> = entries[..entries.len() - 1]
        .iter()
        .filter(|e| e.config_fp == newest.config_fp)
        .collect();
    println!(
        "history: {} entries, newest {} (config {}), {} comparable prior",
        entries.len(),
        newest.sha,
        newest.config_fp,
        prior.len()
    );

    let mut failures = Vec::new();
    // Deterministic outcomes: must be identical across comparable entries.
    for (name, value) in &newest.determinism {
        for p in &prior {
            if let Some((_, prev)) = p.determinism.iter().find(|(n, _)| n == name) {
                if prev != value {
                    failures.push(format!(
                        "deterministic outcome '{name}' drifted: {prev} (at {}) -> {value}",
                        p.sha
                    ));
                }
            }
        }
    }
    // Wall sections: regression iff newest > band × best prior.
    for (name, secs) in &newest.wall_secs {
        let best_prior = prior
            .iter()
            .filter_map(|p| p.wall_secs.iter().find(|(n, _)| n == name).map(|(_, s)| *s))
            .fold(f64::INFINITY, f64::min);
        if best_prior.is_finite() && *secs > best_prior * band && *secs - best_prior > 0.05 {
            failures.push(format!(
                "section '{name}' regressed: {secs:.3}s vs best prior {best_prior:.3}s \
                 (band {band}x)"
            ));
        }
    }

    if failures.is_empty() {
        println!("history: no regressions beyond the {band}x noise band");
    } else {
        for f in &failures {
            eprintln!("history: REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("append") => append(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}
