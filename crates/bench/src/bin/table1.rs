//! Regenerates Table I.
fn main() {
    let rows = isp_bench::experiments::table1::run();
    isp_bench::experiments::table1::print(&rows);
}
