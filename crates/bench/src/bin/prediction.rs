//! Regenerates the volume-prediction accuracy results (SV text).
use csd_sim::SystemConfig;
fn main() {
    let report = isp_bench::experiments::prediction::run(&SystemConfig::paper_default());
    isp_bench::experiments::prediction::print(&report);
}
