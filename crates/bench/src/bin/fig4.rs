//! Regenerates Figure 4.
use csd_sim::SystemConfig;
fn main() {
    let rows = isp_bench::experiments::fig4::run(&SystemConfig::paper_default());
    isp_bench::experiments::fig4::print(&rows);
}
