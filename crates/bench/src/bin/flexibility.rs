//! Regenerates the flexibility experiments (interconnect sweep + GC).
fn main() {
    let bw = isp_bench::experiments::flexibility::run_bw_sweep();
    let gc = isp_bench::experiments::flexibility::run_gc();
    isp_bench::experiments::flexibility::print(&bw, &gc);
}
