//! A generic order-preserving sweep engine for experiment grids.
//!
//! Every figure in the paper is a grid — workloads × availability levels,
//! platforms × bandwidths — whose cells are independent deterministic
//! simulations. [`run_grid`] fans the cells out over scoped worker
//! threads (bounded by the host's available parallelism), pulling work
//! from a shared atomic cursor and writing each result into the slot
//! matching its input index, so the output order — and therefore every
//! byte of downstream output — is identical to a serial `map`.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maps `f` over `cells` on up to `available_parallelism` worker threads,
/// returning results in input order.
///
/// `f` must be deterministic per cell for the parallel sweep to be
/// output-equivalent to the serial one; all experiment cells are (they
/// advance a virtual clock, not the host's). With a single hardware
/// thread (or a single cell) the sweep degrades to a plain serial map
/// with no thread or lock traffic.
///
/// # Panics
///
/// Propagates a panic from any worker (the grid is aborted).
pub fn run_grid<T, R, F>(cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    run_grid_with_threads(cells, threads, f)
}

/// [`run_grid`] with an explicit worker-thread bound (primarily for tests
/// that must exercise the parallel path regardless of host core count).
///
/// # Panics
///
/// Propagates a panic from any worker (the grid is aborted).
pub fn run_grid_with_threads<T, R, F>(cells: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = cells.len();
    let threads = threads.min(n);
    if threads <= 1 {
        return cells.into_iter().map(f).collect();
    }

    let work: Vec<Mutex<Option<T>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = work[i].lock().take().expect("each cell is claimed once");
                let result = f(cell);
                *slots[i].lock() = Some(result);
            });
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = run_grid_with_threads((0..100).collect(), 4, |i: usize| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_singleton_grids() {
        let empty: Vec<usize> = run_grid(Vec::<usize>::new(), |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_grid(vec![7usize], |i| i + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_serial_map_on_non_trivial_cells() {
        let cells: Vec<u64> = (1..50).collect();
        let f = |x: u64| -> u64 { (0..x).map(|i| i.wrapping_mul(x)).sum() };
        let serial: Vec<u64> = cells.clone().into_iter().map(f).collect();
        assert_eq!(run_grid_with_threads(cells.clone(), 4, f), serial);
        assert_eq!(run_grid(cells, f), serial);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = run_grid_with_threads(vec![0usize, 1, 2, 3], 2, |i| {
            assert!(i != 2, "cell failure");
            i
        });
    }
}
