//! A repro-style run of every plan-consuming experiment against one
//! shared [`PlanCache`] must plan each (workload, platform) pair exactly
//! once — the acceptance criterion for the planning cache.

use activepy::PlanCache;
use csd_sim::SystemConfig;
use isp_bench::experiments as ex;

#[test]
fn shared_cache_plans_each_workload_once_across_experiments() {
    let config = SystemConfig::paper_default();
    let cache = PlanCache::new();

    // fig4 plans the nine Table-I workloads.
    let fig4 = ex::fig4::run_with(&config, &cache);
    assert_eq!(fig4.len(), 9);
    let after_fig4 = cache.stats();
    assert_eq!(
        after_fig4.misses, 9,
        "fig4 plans each Table-I workload once"
    );
    assert_eq!(after_fig4.hits, 0);

    // fig5 adds SparseMV and the two wire-format workloads; the other
    // nine lookups hit.
    let fig5 = ex::fig5::run_with(&config, &cache);
    assert_eq!(fig5.len(), 24);
    let after_fig5 = cache.stats();
    assert_eq!(
        after_fig5.misses, 12,
        "only SparseMV, TPC-H-6-gz, and LogGrep are new after fig4"
    );
    assert_eq!(after_fig5.hits, 9);

    // prediction and ablation replay cached plans entirely.
    let _ = ex::prediction::run_with(&config, &cache);
    let _ = ex::ablation::run_with(&config, &cache);
    let stats = cache.stats();
    assert_eq!(
        stats.misses, 12,
        "no experiment may replan a cached workload"
    );
    assert_eq!(
        stats.hits,
        9 + 10 + 9,
        "prediction (10) and ablation (9) all hit"
    );
    assert_eq!(cache.len(), 12);
    assert!(stats.planning_nanos > 0);
}
