//! The nine Table-I applications plus SparseMV (added by the paper's §V
//! discussion and Figure 5).
//!
//! Each module builds one [`crate::spec::Workload`]: an unannotated ALang
//! program — no ISP hints anywhere — and a deterministic, scale-parameterized
//! input generator sized to Table I.

pub mod blackscholes;
pub mod kmeans;
pub mod lightgbm;
pub mod loggrep;
pub mod matrixmul;
pub mod mixedgemm;
pub mod pagerank;
pub mod sparsemv;
pub mod tpch_q1;
pub mod tpch_q14;
pub mod tpch_q6;
pub mod tpch_q6_gz;

use crate::spec::Workload;

/// The nine applications of Table I, in the paper's order.
#[must_use]
pub fn table1() -> Vec<Workload> {
    vec![
        blackscholes::workload(),
        kmeans::workload(),
        lightgbm::workload(),
        matrixmul::workload(),
        mixedgemm::workload(),
        pagerank::workload(),
        tpch_q1::workload(),
        tpch_q6::workload(),
        tpch_q14::workload(),
    ]
}

/// Table I plus SparseMV (the workload set of Figure 5 / §V).
#[must_use]
pub fn with_sparsemv() -> Vec<Workload> {
    let mut v = table1();
    v.push(sparsemv::workload());
    v
}

/// The wire-format workloads: datasets stored encoded (gzip, shuffle,
/// endianness, missing-value sentinels), read through
/// `scan_raw`/`decode`. One per decode-placement regime of Eq. 1.
#[must_use]
pub fn decode_set() -> Vec<Workload> {
    vec![tpch_q6_gz::workload(), loggrep::workload()]
}

/// Every workload: Figure 5's set plus the wire-format families.
#[must_use]
pub fn full_set() -> Vec<Workload> {
    let mut v = with_sparsemv();
    v.extend(decode_set());
    v
}

/// Looks up a workload by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    full_set()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_apps_with_paper_sizes() {
        let apps = table1();
        assert_eq!(apps.len(), 9);
        let sizes: Vec<(String, f64)> = apps
            .iter()
            .map(|w| (w.name().to_owned(), w.table1_gb()))
            .collect();
        let expect = [
            ("blackscholes", 9.1),
            ("KMeans", 5.3),
            ("LightGBM", 7.1),
            ("MatrixMul", 6.0),
            ("MixedGEMM", 9.4),
            ("PageRank", 7.7),
            ("TPC-H-1", 6.9),
            ("TPC-H-6", 6.9),
            ("TPC-H-14", 7.1),
        ];
        for ((name, gb), (ename, egb)) in sizes.iter().zip(expect.iter()) {
            assert_eq!(name, ename);
            assert!((gb - egb).abs() < 1e-9, "{name}: {gb} vs {egb}");
        }
    }

    #[test]
    fn all_programs_parse() {
        for w in full_set() {
            let p = w
                .program()
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", w.name()));
            assert!(p.len() >= 3, "{} suspiciously short", w.name());
        }
    }

    #[test]
    fn all_programs_execute_at_tiny_scale() {
        use alang::Interpreter;
        for w in full_set() {
            let program = w.program().expect("parse");
            let storage = w.storage_at(1.0 / 1024.0);
            let mut interp = Interpreter::new(&storage);
            interp
                .run(&program, &[])
                .unwrap_or_else(|e| panic!("{} fails to run: {e}", w.name()));
        }
    }

    #[test]
    fn declared_sizes_match_generated_volumes() {
        for w in full_set() {
            let storage = w.storage_at(1.0);
            let gb = storage.total_virtual_bytes() as f64 / 1e9;
            assert!(
                (gb - w.table1_gb()).abs() / w.table1_gb() < 0.05,
                "{}: generated {gb} GB vs declared {} GB",
                w.name(),
                w.table1_gb()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("pagerank").is_some());
        assert!(by_name("TPC-H-6").is_some());
        assert!(by_name("tpc-h-6-gz").is_some());
        assert!(by_name("LogGrep").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn decode_set_declares_encodings_and_plain_workloads_do_not() {
        for w in decode_set() {
            assert!(
                !w.encodings().is_empty(),
                "{} must declare its wire formats",
                w.name()
            );
            assert_ne!(
                activepy::sampling::InputSource::wire_fingerprint(&w),
                0,
                "{} needs a nonzero wire fingerprint",
                w.name()
            );
        }
        for w in with_sparsemv() {
            assert_eq!(activepy::sampling::InputSource::wire_fingerprint(&w), 0);
        }
        // The two regimes must never share a plan-cache key.
        let fps: Vec<u64> = decode_set()
            .iter()
            .map(activepy::sampling::InputSource::wire_fingerprint)
            .collect();
        assert_ne!(fps[0], fps[1]);
    }
}
