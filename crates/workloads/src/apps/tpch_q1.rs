//! TPC-H Q1: the pricing-summary-report query (6.9 GB, Table I).
//!
//! Scans nearly all of `lineitem` (the ship-date predicate keeps ~98 % of
//! rows) and aggregates five measures into six (returnflag, linestatus)
//! groups. Little is filtered, but the aggregation collapses gigabytes
//! into a six-row report — the reduction happens in `group_sum`.

use crate::datagen::tpch::lineitem;
use crate::spec::Workload;
use std::sync::Arc;

use super::tpch_q6::{ACTUAL_ROWS, PART_ACTUAL_ROWS, SEED};

const SOURCE: &str = "\
t = scan('lineitem')
d = col(t, 'shipdate')
m = d <= 10471
f = filter(t, m)
rf = col(f, 'returnflag')
ls = col(f, 'linestatus')
key = rf * 2 + ls
qty = col(f, 'quantity')
sum_qty = group_sum(key, qty)
price = col(f, 'extendedprice')
sum_base = group_sum(key, price)
dc = col(f, 'discount')
dprice = price * (1 - dc)
sum_disc = group_sum(key, dprice)
tax = col(f, 'tax')
charge = dprice * (1 + tax)
sum_charge = group_sum(key, charge)
avg_disc = group_sum(key, dc)
";

/// Builds the TPC-H Q1 workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "TPC-H-1",
        6.9,
        "pricing summary: five grouped aggregates over nearly all of lineitem",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "lineitem",
                lineitem(6.9, scale, ACTUAL_ROWS, PART_ACTUAL_ROWS, SEED),
            );
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::table::Column;
    use alang::Interpreter;

    #[test]
    fn six_groups_emerge() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.05);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let g = interp.var("sum_qty").expect("g").as_table().expect("table");
        // 3 returnflags x 2 linestatuses.
        assert_eq!(g.rows(), 6);
        assert_eq!(g.logical_rows(), 6, "groups do not grow with data");
    }

    #[test]
    fn filter_keeps_most_rows() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let t = interp.var("t").expect("t").as_table().expect("table");
        let f = interp.var("f").expect("f").as_table().expect("table");
        let kept = f.logical_rows() as f64 / t.logical_rows() as f64;
        assert!(kept > 0.9, "Q1 keeps ~96-98% of rows, got {kept}");
    }

    #[test]
    fn grouped_sums_are_positive() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.05);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        for name in ["sum_qty", "sum_base", "sum_disc", "sum_charge"] {
            let g = interp.var(name).expect(name).as_table().expect("table");
            match g.column("sum").expect("sum") {
                Column::F64(v) => {
                    assert!(v.iter().all(|x| *x > 0.0), "{name} has nonpositive sums")
                }
                other => panic!("wrong type {}", other.type_name()),
            }
        }
    }
}
