//! LogGrep: log-analytics grep→aggregate over raw wire-format storage —
//! the decode-on-CSD regime of the wire-format experiment.
//!
//! Two metric streams from a big-endian logger sit on flash byte-shuffled
//! and un-compressed (telemetry full of distinct mantissas deflates to
//! ~1×, so the pipeline skips the codec); the latency stream marks
//! dropped samples with a `-1` sentinel that decode masks to zero. The
//! query greps for server errors, intersects with present samples, and
//! computes a smooth score over the selected tail.
//!
//! Decoding here is cheap (byte transpose + byte swap + sentinel mask, no
//! inflate) and buys **no** transfer saving when left on the host: the
//! encoded stream is exactly as large as the decoded one. Offloading the
//! scan→decode→grep prefix drops `DS_raw` in Eq. 1 from the full stream
//! to the selected tail, which dwarfs the modest device-compute penalty —
//! so Algorithm 1 pushes decode onto the CSD. The flip side of this
//! regime is [`crate::apps::tpch_q6_gz`].

use crate::spec::Workload;
use alang::value::EncodedVal;
use alang::Value;
use csd_sim::wire::{ByteOrder, Codec, Encoding};
use std::sync::Arc;

/// On-storage size in gigabytes. Codec-less wire formats are
/// length-preserving, so encoded and decoded sizes coincide: 2 streams ×
/// 8 bytes × 500M samples.
pub const GB: f64 = 8.0;
/// Materialized samples per stream.
pub(crate) const ACTUAL_ROWS: usize = 4096;
/// The latency sentinel the logger writes for dropped samples.
pub(crate) const MISSING: f64 = -1.0;

const SOURCE: &str = "\
rs = scan_raw('log_status')
code = decode(rs)
m1 = code >= 500
rl = scan_raw('log_latency')
lat = decode(rl)
m2 = lat > 0
m = m1 and m2
sel = select(lat, m)
z = sel / 250.0
e = erf(z)
g = exp(0 - z)
score = e * g
s = sum(score)
hits = count(m)
";

/// Wire format of the status stream: byte-shuffled big-endian doubles.
#[must_use]
pub fn status_encoding() -> Encoding {
    Encoding {
        codec: Codec::None,
        shuffle: true,
        byte_order: ByteOrder::Big,
        fill_value: None,
    }
}

/// Wire format of the latency stream: like the status stream plus the
/// `-1` missing-sample sentinel, masked to zero by decode.
#[must_use]
pub fn latency_encoding() -> Encoding {
    Encoding {
        fill_value: Some(MISSING),
        ..status_encoding()
    }
}

/// Logical samples per stream at `scale`.
fn logical_rows(scale: f64) -> u64 {
    (((GB * scale * 1e9) / 16.0).round() as u64).max(ACTUAL_ROWS as u64)
}

/// The status-code stream: mostly 200s, a thin band of 5xx errors.
fn status_column() -> Vec<f64> {
    (0..ACTUAL_ROWS)
        .map(|i| match (i * 31) % 20 {
            0..=13 => 200.0,
            14 | 15 => 301.0,
            16..=18 => 404.0,
            _ => 500.0 + f64::from(u32::try_from((i * 13) % 4).unwrap_or(0)),
        })
        .collect()
}

/// The latency stream in milliseconds, with ~10% dropped samples.
fn latency_column() -> Vec<f64> {
    (0..ACTUAL_ROWS)
        .map(|i| {
            if (i * 17) % 10 == 0 {
                MISSING
            } else {
                20.0 + ((i * 263) % 400) as f64 * 0.5 + ((i * 7) % 13) as f64 * 0.07
            }
        })
        .collect()
}

/// Builds the LogGrep workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "LogGrep",
        GB,
        "grep 5xx log records and aggregate a smooth latency score (decode-on-CSD regime)",
        SOURCE,
        Arc::new(|scale| {
            let rows = logical_rows(scale);
            let mut st = alang::Storage::new();
            st.insert(
                "log_status",
                Value::Encoded(EncodedVal::from_f64s(
                    status_encoding(),
                    &status_column(),
                    rows,
                )),
            );
            st.insert(
                "log_latency",
                Value::Encoded(EncodedVal::from_f64s(
                    latency_encoding(),
                    &latency_column(),
                    rows,
                )),
            );
            st
        }),
    )
    .with_encodings(vec![
        ("log_status".to_string(), status_encoding()),
        ("log_latency".to_string(), latency_encoding()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn encoded_size_is_length_preserving_and_declared() {
        let w = workload();
        let st = w.storage_at(1.0);
        let encoded: u64 = ["log_status", "log_latency"]
            .iter()
            .map(|n| st.get(n).expect(n).virtual_bytes())
            .sum();
        let decoded = logical_rows(1.0) * 16;
        assert_eq!(encoded, decoded, "codec-less wire formats preserve size");
        let gb = encoded as f64 / 1e9;
        assert!((gb - GB).abs() / GB < 0.05, "declared {GB} vs {gb:.3}");
    }

    #[test]
    fn sentinels_mask_to_zero_and_grep_selects_errors() {
        let w = workload();
        let program = w.program().expect("parse");
        let st = w.storage_at(1.0);
        let mut interp = Interpreter::new(&st);
        interp.run(&program, &[]).expect("run");
        let lat = interp.var("lat").expect("lat").as_array().expect("arr");
        assert!(
            lat.data().iter().all(|&x| x >= 0.0),
            "decode must mask -1 sentinels to 0"
        );
        assert!(lat.data().contains(&0.0), "some samples must be masked");
        let sel = interp.var("sel").expect("sel").as_array().expect("arr");
        let fraction = sel.logical_len() as f64 / logical_rows(1.0) as f64;
        assert!(
            fraction > 0.01 && fraction < 0.1,
            "5xx ∧ present must be a thin band, got {fraction}"
        );
        let s = interp.var("s").expect("s").as_num().expect("num");
        assert!(s.is_finite() && s > 0.0, "score sum: {s}");
        let hits = interp.var("hits").expect("hits").as_num().expect("num");
        assert!(hits > 0.0);
    }

    #[test]
    fn big_endian_shuffled_streams_round_trip() {
        let w = workload();
        let st = w.storage_at(1.0 / 1024.0);
        let enc = st
            .get("log_status")
            .expect("status")
            .as_encoded()
            .expect("encoded");
        assert_eq!(enc.decode_all().expect("decode"), status_column());
        // The latency stream decodes with sentinels masked.
        let enc = st
            .get("log_latency")
            .expect("latency")
            .as_encoded()
            .expect("encoded");
        let masked: Vec<f64> = latency_column()
            .iter()
            .map(|&x| if x == MISSING { 0.0 } else { x })
            .collect();
        assert_eq!(enc.decode_all().expect("decode"), masked);
    }
}
