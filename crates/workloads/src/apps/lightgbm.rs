//! LightGBM: gradient-boosted-forest inference over stored features
//! (7.1 GB, Table I).
//!
//! A fixed ten-tree forest scores every stored feature row; the pipeline
//! then counts and averages the positive scores. Scoring reduces 256-byte
//! feature rows to 8-byte scores, so the whole chain is a strong in-storage
//! candidate despite its branchy per-row compute.

use crate::datagen::forestgen::random_forest;
use crate::datagen::linalg::feature_matrix;
use crate::spec::Workload;
use std::sync::Arc;

/// Feature columns per row.
const FEATURES: usize = 32;
/// Trees in the forest.
const TREES: usize = 10;
/// Internal levels per tree.
const DEPTH: u32 = 4;
/// Materialized feature rows.
const ACTUAL_ROWS: usize = 2048;
/// RNG seed.
const SEED: u64 = 0x16B;

const SOURCE: &str = "\
x = scan('features')
model = scan('gbm_model')
score = forest_score(model, x)
m = score > 0
hits = count(m)
pos = select(score, m)
avg = mean(pos)
";

/// Builds the LightGBM workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "LightGBM",
        7.1,
        "boosted-forest inference over stored features; count and average positive scores",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "features",
                feature_matrix(7.1, scale, FEATURES, ACTUAL_ROWS, SEED),
            );
            st.insert(
                "gbm_model",
                random_forest(TREES, DEPTH, FEATURES as u32, SEED),
            );
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn scores_and_counts_are_consistent() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let score = interp.var("score").expect("score").as_array().expect("arr");
        assert_eq!(score.len(), ACTUAL_ROWS);
        let hits = interp.var("hits").expect("hits").as_num().expect("num");
        // Counts extrapolate to logical scale.
        assert!(hits <= score.logical_len() as f64);
        let avg = interp.var("avg").expect("avg").as_num().expect("num");
        assert!(avg > 0.0, "mean of positive scores must be positive: {avg}");
    }

    #[test]
    fn scoring_reduces_volume_thirtytwofold() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let x = interp.var("x").expect("x").virtual_bytes();
        let s = interp.var("score").expect("score").virtual_bytes();
        let ratio = x as f64 / s as f64;
        assert!((ratio - FEATURES as f64).abs() < 1.0, "reduction {ratio}");
    }
}
