//! PageRank: CSR conversion of a dense-stored web graph plus three damped
//! rank iterations (7.7 GB, Table I).
//!
//! The dominant data movement is the dense adjacency scan; converting it to
//! CSR next to the flash shrinks it by orders of magnitude, after which the
//! rank iterations are cheap anywhere. The CSR conversion is also the one
//! operation whose output volume ActivePy systematically over-estimates
//! (§V) — the hub-heavy sample prefixes look denser than the full graph
//! (see [`crate::datagen::graph`]).

use crate::datagen::graph::{adjacency, initial_ranks};
use crate::spec::Workload;
use std::sync::Arc;

/// Materialized adjacency block edge length.
const ACTUAL_N: usize = 384;
/// Full-graph mean out-degree.
const AVG_DEGREE: f64 = 16.0;
/// RNG seed.
const SEED: u64 = 0x46;

const SOURCE: &str = "\
g = scan('web_graph')
adj = to_csr(g)
r0 = scan('ranks')
r1 = pagerank_step(adj, r0, 0.85)
r2 = pagerank_step(adj, r1, 0.85)
r3 = pagerank_step(adj, r2, 0.85)
top = maxv(r3)
";

/// Builds the PageRank workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "PageRank",
        7.7,
        "CSR conversion of a dense-stored web graph, then three damped rank steps",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "web_graph",
                adjacency(7.7, scale, ACTUAL_N, AVG_DEGREE, SEED),
            );
            st.insert("ranks", initial_ranks(7.7, scale, ACTUAL_N));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn rank_mass_is_conserved() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let r3 = interp.var("r3").expect("r3").as_array().expect("arr");
        let total: f64 = r3.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass {total}");
        let top = interp.var("top").expect("top").as_num().expect("num");
        assert!(top > 0.0 && top <= 1.0);
    }

    #[test]
    fn csr_shrinks_the_graph_dramatically() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let dense = interp.var("g").expect("g").virtual_bytes();
        let csr = interp.var("adj").expect("adj").virtual_bytes();
        assert!(
            csr * 100 < dense,
            "CSR {csr} should be far smaller than dense {dense}"
        );
    }
}
