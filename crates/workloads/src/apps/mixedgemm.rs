//! MixedGEMM: a mixed pipeline of streaming projection and dense
//! compute (9.4 GB, Table I).
//!
//! Stage one projects a stored `n × 64` matrix to `n × 8` (streaming,
//! data-reducing — the CSD's sweet spot). Stage two builds the `8 × 8`
//! Gram matrix of the projection and squares it with a dense GEMM
//! (compute-dense — the host's sweet spot). A good framework splits this
//! program across the boundary; a naive all-or-nothing offload loses on
//! one of the halves.

use crate::datagen::linalg::{feature_matrix, weight_matrix};
use crate::spec::Workload;
use std::sync::Arc;

/// Input columns.
const IN_COLS: usize = 64;
/// Projected columns.
const OUT_COLS: usize = 8;
/// Materialized rows.
const ACTUAL_ROWS: usize = 2048;
/// RNG seed.
const SEED: u64 = 0x93E;

const SOURCE: &str = "\
x = scan('mixed_features')
w1 = scan('mixed_proj')
y = matmul(x, w1)
g = gram(y)
g2 = matmul(g, g)
g3 = matmul(g2, g)
trace = frob(g3)
";

/// Builds the MixedGEMM workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "MixedGEMM",
        9.4,
        "streaming projection (n x 64 -> n x 8) feeding dense Gram-matrix powers",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "mixed_features",
                feature_matrix(9.4, scale, IN_COLS, ACTUAL_ROWS, SEED),
            );
            st.insert("mixed_proj", weight_matrix(IN_COLS, OUT_COLS, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn gram_powers_have_right_shape() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let g3 = interp.var("g3").expect("g3").as_matrix().expect("matrix");
        assert_eq!((g3.rows(), g3.cols()), (OUT_COLS, OUT_COLS));
        let trace = interp.var("trace").expect("trace").as_num().expect("num");
        assert!(trace.is_finite() && trace >= 0.0);
    }

    #[test]
    fn gram_matrix_is_symmetric() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let g = interp.var("g").expect("g").as_matrix().expect("matrix");
        for i in 0..OUT_COLS {
            for j in 0..OUT_COLS {
                assert!(
                    (g.get(i, j) - g.get(j, i)).abs() < 1e-6,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }
}
