//! KMeans: one expectation-maximization refinement pass over stored points
//! (5.3 GB, Table I).
//!
//! The workload assigns every stored point to its nearest centroid and
//! recomputes the centroids — a single streaming pass whose output (the
//! centroid matrix) is tiny compared to the input, the shape that profits
//! from in-storage execution.

use crate::datagen::points::{clustered_points, initial_centroids};
use crate::spec::Workload;
use std::sync::Arc;

/// Point dimensionality.
const DIMS: usize = 8;
/// Cluster count.
const K: usize = 8;
/// Materialized point rows.
const ACTUAL_ROWS: usize = 4096;
/// RNG seed.
const SEED: u64 = 0x4B;

const SOURCE: &str = "\
pts = scan('points')
c0 = scan('centroids')
a1 = kmeans_assign(pts, c0)
c1 = kmeans_update(pts, a1, 8)
spread = frob(c1)
";

/// Builds the KMeans workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "KMeans",
        5.3,
        "one k-means EM pass (assign + centroid update) over stored points",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "points",
                clustered_points(5.3, scale, DIMS, K, ACTUAL_ROWS, SEED),
            );
            st.insert("centroids", initial_centroids(DIMS, K, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn updated_centroids_stay_near_lattice() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let c1 = interp.var("c1").expect("c1").as_matrix().expect("matrix");
        assert_eq!(c1.rows(), K);
        assert_eq!(c1.cols(), DIMS);
        // Centres live on a 0..12 lattice; updated centroids must stay in a
        // generous envelope of it.
        assert!(c1.data().iter().all(|x| (-3.0..16.0).contains(x)));
    }

    #[test]
    fn assignment_output_is_small_relative_to_points() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let pts = interp.var("pts").expect("pts").virtual_bytes();
        let c1 = interp.var("c1").expect("c1").virtual_bytes();
        assert!(c1 * 1000 < pts, "centroids must be tiny: {c1} vs {pts}");
    }
}
