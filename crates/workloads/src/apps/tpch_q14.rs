//! TPC-H Q14: the promotion-effect query (7.1 GB, Table I: 6.9 GB
//! `lineitem` + 0.2 GB `part`).
//!
//! Filters `lineitem` to one ship month (~1 % of rows), joins the
//! survivors to `part` through a dense-key gather, and computes the
//! percentage of revenue attributable to `PROMO` parts. The month filter is
//! the in-storage reduction; the join probe runs on whatever side holds the
//! filtered rows.

use crate::datagen::tpch::{lineitem, part};
use crate::spec::Workload;
use std::sync::Arc;

use super::tpch_q6::{ACTUAL_ROWS, PART_ACTUAL_ROWS, SEED};

const SOURCE: &str = "\
l = scan('lineitem')
d = col(l, 'shipdate')
m1 = d >= 9374
m2 = d < 9404
m = m1 and m2
lf = filter(l, m)
p = scan('part')
pt = col(p, 'type')
pm = pt < 1
promo = where(pm, pt * 0 + 1, pt * 0)
pk = col(lf, 'partkey')
isp = gather(promo, pk)
price = col(lf, 'extendedprice')
dc = col(lf, 'discount')
net = price * (1 - dc)
pnet = net * isp
a = sum(pnet)
b = sum(net)
ratio = a * 100 / b
";

/// Builds the TPC-H Q14 workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "TPC-H-14",
        7.1,
        "promotion effect: month filter on lineitem, dense-key join to part, revenue ratio",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "lineitem",
                lineitem(6.9, scale, ACTUAL_ROWS, PART_ACTUAL_ROWS, SEED),
            );
            st.insert("part", part(0.2, scale, PART_ACTUAL_ROWS, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::tpch::{DAY_1995_09_01, DAY_1995_10_01};
    use alang::Interpreter;

    #[test]
    fn query_constants_match_the_month_window() {
        assert!(SOURCE.contains(&format!("{DAY_1995_09_01}")));
        assert!(SOURCE.contains(&format!("{DAY_1995_10_01}")));
    }

    #[test]
    fn promo_ratio_is_a_percentage_near_twenty() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let ratio = interp.var("ratio").expect("ratio").as_num().expect("num");
        // ~20% of parts are PROMO, uncorrelated with revenue.
        assert!(ratio > 5.0 && ratio < 40.0, "promo ratio {ratio}%");
    }

    #[test]
    fn month_filter_is_highly_selective() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let l = interp.var("l").expect("l").as_table().expect("table");
        let lf = interp.var("lf").expect("lf").as_table().expect("table");
        let kept = lf.logical_rows() as f64 / l.logical_rows() as f64;
        assert!(kept < 0.05, "one month of seven years ≈ 1.2%, got {kept}");
    }

    #[test]
    fn join_indicator_is_zero_or_one() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.1);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let isp = interp.var("isp").expect("isp").as_array().expect("arr");
        assert!(isp.data().iter().all(|x| *x == 0.0 || *x == 1.0));
    }
}
