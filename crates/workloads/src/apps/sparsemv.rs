//! SparseMV: CSR conversion plus sparse matrix-vector product (§V and
//! Figure 5; 6.4 GB, not listed in Table I).
//!
//! Shares the CSR-volume misprediction mechanism with
//! [`crate::apps::pagerank`]: the sampled prefixes of the dense-stored
//! sparse matrix look denser than the whole, so ActivePy over-estimates the
//! conversion's output (conservatively — it never makes the plan worse).

use crate::datagen::graph::{adjacency, dense_vector};
use crate::spec::Workload;
use std::sync::Arc;

/// Dataset size in gigabytes (the paper does not list SparseMV in Table I;
/// we size it like its sibling graph workload).
const GB: f64 = 6.4;
/// Materialized block edge length.
const ACTUAL_N: usize = 384;
/// Mean non-zeros per row at full scale.
const AVG_DEGREE: f64 = 24.0;
/// RNG seed.
const SEED: u64 = 0x57F;

const SOURCE: &str = "\
m = scan('sparse_matrix')
a = to_csr(m)
x = scan('xvec')
y = spmv(a, x)
s = sum(y)
";

/// Builds the SparseMV workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "SparseMV",
        GB,
        "CSR conversion of a dense-stored sparse matrix followed by SpMV and a reduction",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "sparse_matrix",
                adjacency(GB, scale, ACTUAL_N, AVG_DEGREE, SEED),
            );
            st.insert("xvec", dense_vector(GB, scale, ACTUAL_N, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn spmv_matches_dense_multiply() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let m = interp.var("m").expect("m").as_matrix().expect("matrix");
        let x = interp.var("x").expect("x").as_array().expect("arr");
        let y = interp.var("y").expect("y").as_array().expect("arr");
        // Check one row against the dense dot product.
        let want: f64 = (0..m.cols()).map(|j| m.get(0, j) * x.data()[j]).sum();
        assert!((y.data()[0] - want).abs() < 1e-9);
    }

    #[test]
    fn reduction_is_finite_and_positive() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let s = interp.var("s").expect("s").as_num().expect("num");
        assert!(s.is_finite() && s > 0.0, "sum {s}");
    }
}
