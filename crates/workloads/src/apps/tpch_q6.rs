//! TPC-H Q6: the forecasting-revenue-change query (6.9 GB, Table I).
//!
//! A pure scan-filter-aggregate over `lineitem`: one year of ship dates, a
//! quantity cap, and a discount band, summing `extendedprice × discount`.
//! The archetypal ISP query — output is a single number.

use crate::datagen::tpch::lineitem;
use crate::spec::Workload;
use std::sync::Arc;

/// Materialized lineitem rows.
pub(crate) const ACTUAL_ROWS: usize = 4096;
/// Materialized part rows (shared with Q14's generator for key ranges).
pub(crate) const PART_ACTUAL_ROWS: usize = 2048;
/// RNG seed shared by the TPC-H workloads.
pub(crate) const SEED: u64 = 0x79C8;

const SOURCE: &str = "\
t = scan('lineitem')
d = col(t, 'shipdate')
m1 = d >= 8766
m2 = d < 9131
q = col(t, 'quantity')
m3 = q < 24
dc = col(t, 'discount')
m4 = dc >= 0.05
m5 = dc <= 0.07
m = m1 and m2 and m3 and m4 and m5
price = col(t, 'extendedprice')
rev = price * dc
sel = select(rev, m)
total = sum(sel)
";

/// Builds the TPC-H Q6 workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "TPC-H-6",
        6.9,
        "scan-filter-aggregate: sum of discounted revenue in a one-year window",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "lineitem",
                lineitem(6.9, scale, ACTUAL_ROWS, PART_ACTUAL_ROWS, SEED),
            );
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::tpch::{DAY_1994_01_01, DAY_1995_01_01};
    use alang::Interpreter;

    #[test]
    fn query_constants_match_the_spec_window() {
        assert!(SOURCE.contains(&format!("{DAY_1994_01_01}")));
        assert!(SOURCE.contains(&format!("{DAY_1995_01_01}")));
    }

    #[test]
    fn total_is_positive_and_extrapolated() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let total = interp.var("total").expect("total").as_num().expect("num");
        assert!(total > 0.0, "some rows must satisfy Q6: {total}");
        // The sum extrapolates to ~123M logical rows, so it is enormous.
        assert!(total > 1e6);
    }

    #[test]
    fn selection_is_a_small_fraction() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let sel = interp.var("sel").expect("sel").as_array().expect("arr");
        let t = interp.var("t").expect("t").as_table().expect("table");
        let fraction = sel.logical_len() as f64 / t.logical_rows() as f64;
        assert!(
            fraction < 0.06,
            "Q6 selects ~2% of lineitem, got {fraction}"
        );
    }
}
