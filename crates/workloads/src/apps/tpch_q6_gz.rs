//! TPC-H Q6 over gzip-compressed columnar storage: the decode-on-host
//! regime of the wire-format experiment.
//!
//! The same forecasting-revenue-change query as [`crate::apps::tpch_q6`],
//! but the four lineitem columns live on flash as shuffled, gzip-deflated
//! streams. Compression shrinks the raw stream the host would pull
//! (`DS_raw` in Eq. 1) by the achieved ratio, while inflating on the CSD
//! costs real operations on cores ~1.8× slower than the host — so the
//! transfer saving the decode+filter pipeline could bank by offloading is
//! smaller than the compute it would pay, and Algorithm 1 correctly keeps
//! the decode on the host. The flip side of this regime is
//! [`crate::apps::loggrep`].

use crate::spec::Workload;
use alang::value::EncodedVal;
use alang::Value;
use csd_sim::wire::Encoding;
use std::sync::Arc;

/// Decoded (post-inflate) dataset size in gigabytes: the same 6.9 GB of
/// lineitem columns Table I lists for TPC-H-6, stored compressed.
pub const DECODED_GB: f64 = 6.9;
/// On-storage (encoded) size in gigabytes, as measured from the
/// deterministic generator below (pinned by a test; the compression
/// ratio of the generated columns is a constant of the generator).
pub const GB: f64 = 0.345;
/// Materialized rows per column.
pub(crate) const ACTUAL_ROWS: usize = 4096;

const SOURCE: &str = "\
rd = scan_raw('shipdate_gz')
d = decode(rd)
m1 = d >= 8766
m2 = d < 9131
rq = scan_raw('quantity_gz')
q = decode(rq)
m3 = q < 24
rc = scan_raw('discount_gz')
dc = decode(rc)
m4 = dc >= 0.05
m5 = dc <= 0.07
m = m1 and m2 and m3 and m4 and m5
rp = scan_raw('extendedprice_gz')
price = decode(rp)
rev = price * dc
sel = select(rev, m)
total = sum(sel)
";

/// The wire format every column is stored under: byte-shuffled then
/// gzip-deflated (shuffling groups the eight byte planes of the f64
/// stream, which is what lets DEFLATE find the runs).
#[must_use]
pub fn encoding() -> Encoding {
    Encoding::gzip_shuffled()
}

/// Logical rows per column at `scale` (decoded volume = 4 columns ×
/// 8 bytes × rows).
fn logical_rows(scale: f64) -> u64 {
    (((DECODED_GB * scale * 1e9) / 32.0).round() as u64).max(ACTUAL_ROWS as u64)
}

/// The four materialized columns, in dataset order. Deterministic
/// arithmetic patterns — integer-valued and low-cardinality columns
/// compress hard; `extendedprice` carries two-decimal cents and
/// compresses least.
fn columns() -> [(&'static str, Vec<f64>); 4] {
    let shipdate: Vec<f64> = (0..ACTUAL_ROWS)
        .map(|i| (8400 + (i * 8131) % 1200) as f64)
        .collect();
    let quantity: Vec<f64> = (0..ACTUAL_ROWS)
        .map(|i| (1 + (i * 7919) % 50) as f64)
        .collect();
    let discount: Vec<f64> = (0..ACTUAL_ROWS)
        .map(|i| ((i * 104_729) % 11) as f64 / 100.0)
        .collect();
    let extendedprice: Vec<f64> = (0..ACTUAL_ROWS)
        .map(|i| 900.0 + ((i * 15_485_863) % 100_000) as f64 / 100.0)
        .collect();
    [
        ("shipdate_gz", shipdate),
        ("quantity_gz", quantity),
        ("discount_gz", discount),
        ("extendedprice_gz", extendedprice),
    ]
}

/// Builds the compressed-columnar TPC-H Q6 workload.
#[must_use]
pub fn workload() -> Workload {
    let enc = encoding();
    Workload::new(
        "TPC-H-6-gz",
        GB,
        "Q6 scan-filter-aggregate over gzip+shuffle columnar storage (decode-on-host regime)",
        SOURCE,
        Arc::new(|scale| {
            let rows = logical_rows(scale);
            let mut st = alang::Storage::new();
            for (name, data) in columns() {
                st.insert(
                    name,
                    Value::Encoded(EncodedVal::from_f64s(encoding(), &data, rows)),
                );
            }
            st
        }),
    )
    .with_encodings(
        columns()
            .iter()
            .map(|(name, _)| ((*name).to_string(), enc))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn columns_compress_and_declared_size_matches() {
        let w = workload();
        let st = w.storage_at(1.0);
        let encoded: u64 = [
            "shipdate_gz",
            "quantity_gz",
            "discount_gz",
            "extendedprice_gz",
        ]
        .iter()
        .map(|n| st.get(n).expect(n).virtual_bytes())
        .sum();
        let decoded = (logical_rows(1.0) * 32) as f64;
        let ratio = decoded / encoded as f64;
        assert!(
            ratio > 2.0,
            "shuffled gzip must compress the columns well, got {ratio:.2}x"
        );
        let gb = encoded as f64 / 1e9;
        assert!(
            (gb - GB).abs() / GB < 0.05,
            "declared {GB} GB vs generated {gb:.3} GB — re-pin the constant"
        );
    }

    #[test]
    fn query_selects_a_fraction_and_extrapolates() {
        let w = workload();
        let program = w.program().expect("parse");
        let st = w.storage_at(1.0);
        let mut interp = Interpreter::new(&st);
        interp.run(&program, &[]).expect("run");
        let total = interp.var("total").expect("total").as_num().expect("num");
        assert!(total > 1e6, "extrapolated revenue must be large: {total}");
        let sel = interp.var("sel").expect("sel").as_array().expect("arr");
        let fraction = sel.logical_len() as f64 / logical_rows(1.0) as f64;
        assert!(
            fraction > 0.001 && fraction < 0.2,
            "Q6 predicates must select a small fraction, got {fraction}"
        );
    }

    #[test]
    fn decoded_columns_match_the_plain_generators() {
        // decode(scan_raw(x)) must reproduce the exact column bytes.
        let w = workload();
        let st = w.storage_at(1.0 / 1024.0);
        for (name, data) in columns() {
            let enc = st.get(name).expect(name).as_encoded().expect("encoded");
            assert_eq!(enc.decode_all().expect("decode"), data, "{name}");
        }
    }
}
