//! MatrixMul: a tall-skinny projection matmul over stored features
//! (6.0 GB, Table I).
//!
//! A stored `n × 64` feature matrix is projected through a fixed `64 × 4`
//! weight block — 16× data reduction at one multiply-add per input byte —
//! then summarized by its Frobenius norm. The projection is the offload
//! candidate; the norm is trivial either way.

use crate::datagen::linalg::{feature_matrix, weight_matrix};
use crate::spec::Workload;
use std::sync::Arc;

/// Input feature columns.
const IN_COLS: usize = 64;
/// Projected columns.
const OUT_COLS: usize = 4;
/// Materialized feature rows.
const ACTUAL_ROWS: usize = 2048;
/// RNG seed.
const SEED: u64 = 0x3A7;

const SOURCE: &str = "\
a = scan('features64')
w = scan('proj_weights')
y = matmul(a, w)
norm = frob(y)
";

/// Builds the MatrixMul workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "MatrixMul",
        6.0,
        "tall-skinny feature projection (n x 64 times 64 x 4) with a norm summary",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert(
                "features64",
                feature_matrix(6.0, scale, IN_COLS, ACTUAL_ROWS, SEED),
            );
            st.insert("proj_weights", weight_matrix(IN_COLS, OUT_COLS, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn projection_shapes_compose() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let y = interp.var("y").expect("y").as_matrix().expect("matrix");
        assert_eq!(y.rows(), ACTUAL_ROWS);
        assert_eq!(y.cols(), OUT_COLS);
        let norm = interp.var("norm").expect("norm").as_num().expect("num");
        assert!(norm > 0.0 && norm.is_finite());
    }

    #[test]
    fn projection_reduces_sixteenfold() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let a = interp.var("a").expect("a").virtual_bytes();
        let y = interp.var("y").expect("y").virtual_bytes();
        let ratio = a as f64 / y as f64;
        assert!((ratio - 16.0).abs() < 0.1, "reduction {ratio}");
    }
}
