//! Blackscholes: European call pricing over a stored option chain
//! (9.1 GB, Table I).
//!
//! The pipeline first screens out expired / junk-volatility options — the
//! classic data-reduction stage a CSD executes next to the flash — then
//! prices the survivors with the Black–Scholes closed form (`N(x)` via
//! `erf`), and reports the mean price.

use crate::datagen::options::option_chain;
use crate::spec::Workload;
use std::sync::Arc;

/// Materialized option rows.
const ACTUAL_ROWS: usize = 4096;
/// RNG seed.
const SEED: u64 = 0xB5;

const SOURCE: &str = "\
opt = scan('options')
tte = col(opt, 'tte')
m1 = tte > 0.02
vol = col(opt, 'vol')
m2 = vol < 0.9
m = m1 and m2
live = filter(opt, m)
s = col(live, 'spot')
k = col(live, 'strike')
t = col(live, 'tte')
v = col(live, 'vol')
rt = v * 0 + 0.03
sq = sqrt(t)
d1 = (log(s / k) + (rt + v * v * 0.5) * t) / (v * sq)
d2 = d1 - v * sq
nd1 = erf(d1 / 1.4142135623730951) * 0.5 + 0.5
nd2 = erf(d2 / 1.4142135623730951) * 0.5 + 0.5
disc = exp(0 - rt * t)
price = s * nd1 - k * disc * nd2
avg = mean(price)
";

/// Builds the Blackscholes workload.
#[must_use]
pub fn workload() -> Workload {
    Workload::new(
        "blackscholes",
        9.1,
        "screen a stored option chain, price survivors with Black-Scholes, report the mean",
        SOURCE,
        Arc::new(|scale| {
            let mut st = alang::Storage::new();
            st.insert("options", option_chain(9.1, scale, ACTUAL_ROWS, SEED));
            st
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Interpreter;

    #[test]
    fn prices_are_sane() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(0.01);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let avg = interp.var("avg").expect("avg").as_num().expect("num");
        // Mean call price on spots of 10..200 must be positive and bounded
        // by the largest spot.
        assert!(avg > 0.0 && avg < 200.0, "mean price {avg}");
    }

    #[test]
    fn screening_reduces_volume() {
        let w = workload();
        let program = w.program().expect("parse");
        let storage = w.storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        interp.run(&program, &[]).expect("run");
        let live = interp.var("live").expect("live").virtual_bytes();
        let raw = interp.var("opt").expect("opt").virtual_bytes();
        let ratio = live as f64 / raw as f64;
        assert!(
            ratio > 0.3 && ratio < 0.6,
            "screen should keep roughly half: {ratio}"
        );
    }
}
