//! The [`Workload`] type: an unannotated ALang program plus its input
//! generator and Table-I metadata.

use activepy::sampling::InputSource;
use alang::builtins::Storage;
use alang::error::Result;
use alang::{parser, Program};
use csd_sim::wire::Encoding;
use std::fmt;
use std::sync::Arc;

/// Type of the input-materialization closures workloads carry.
pub type Generator = Arc<dyn Fn(f64) -> Storage + Send + Sync>;

/// One evaluated application: name, Table-I data size, the ALang source
/// (with one single-entry-single-exit region per line), and a deterministic
/// input generator parameterized by scale.
#[derive(Clone)]
pub struct Workload {
    name: String,
    table1_gb: f64,
    description: String,
    source: String,
    generator: Generator,
    /// Declared on-storage wire formats, `(dataset, encoding)` pairs in
    /// declaration order. Metadata mirroring what the generator encodes —
    /// it lets [`InputSource::wire_fingerprint`] answer without ever
    /// materializing storage, keeping warm starts zero-datagen.
    encodings: Vec<(String, Encoding)>,
}

impl Workload {
    /// Assembles a workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        table1_gb: f64,
        description: impl Into<String>,
        source: impl Into<String>,
        generator: Generator,
    ) -> Self {
        Workload {
            name: name.into(),
            table1_gb,
            description: description.into(),
            source: source.into(),
            generator,
            encodings: Vec::new(),
        }
    }

    /// Declares the on-storage wire formats the generator applies, as
    /// `(dataset, encoding)` pairs. The declaration feeds plan-cache
    /// fingerprints (a re-encoded dataset invalidates cached plans);
    /// generators must encode exactly what is declared here.
    #[must_use]
    pub fn with_encodings(mut self, encodings: Vec<(String, Encoding)>) -> Self {
        self.encodings = encodings;
        self
    }

    /// The declared `(dataset, encoding)` pairs (empty for plain
    /// workloads).
    #[must_use]
    pub fn encodings(&self) -> &[(String, Encoding)] {
        &self.encodings
    }

    /// The workload's name as printed in Table I.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input data size in gigabytes (Table I).
    #[must_use]
    pub fn table1_gb(&self) -> f64 {
        self.table1_gb
    }

    /// One-line description of the computation.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The unannotated program source.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Parses the program.
    ///
    /// # Errors
    ///
    /// Propagates parse errors (none expected for the built-in sources).
    pub fn program(&self) -> Result<Program> {
        parser::parse(&self.source)
    }

    /// Materializes the workload's storage at `scale` (1.0 = Table-I size).
    #[must_use]
    pub fn storage_at(&self, scale: f64) -> Storage {
        (self.generator)(scale)
    }
}

impl InputSource for Workload {
    fn storage_at(&self, scale: f64) -> Storage {
        Workload::storage_at(self, scale)
    }

    /// FNV-1a over the declared `(dataset, encoding)` pairs — `0` for
    /// plain workloads, matching the trait default. Computed from the
    /// declarations alone, so plan-cache keys never materialize storage.
    fn wire_fingerprint(&self) -> u64 {
        if self.encodings.is_empty() {
            return 0;
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for (name, enc) in &self.encodings {
            for &byte in name
                .as_bytes()
                .iter()
                .chain(&enc.fingerprint().to_le_bytes())
            {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("table1_gb", &self.table1_gb)
            .field(
                "lines",
                &self.source.lines().filter(|l| !l.trim().is_empty()).count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::Value;

    fn toy() -> Workload {
        Workload::new(
            "toy",
            1.0,
            "toy sum",
            "a = scan('v')\ns = sum(a)\n",
            Arc::new(|scale| {
                let logical = ((scale * 1e8) as u64).max(16);
                let mut st = Storage::new();
                st.insert(
                    "v",
                    Value::Array(alang::value::ArrayVal::with_logical(vec![1.0; 16], logical)),
                );
                st
            }),
        )
    }

    #[test]
    fn accessors_and_parse() {
        let w = toy();
        assert_eq!(w.name(), "toy");
        assert_eq!(w.table1_gb(), 1.0);
        assert_eq!(w.program().expect("parse").len(), 2);
        assert!(format!("{w:?}").contains("toy"));
    }

    #[test]
    fn storage_scales() {
        let w = toy();
        let full = w.storage_at(1.0);
        let tiny = w.storage_at(1.0 / 1024.0);
        let fb = full.get("v").expect("v").virtual_bytes();
        let tb = tiny.get("v").expect("v").virtual_bytes();
        assert!(fb > 500 * tb);
    }
}
