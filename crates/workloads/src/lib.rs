//! # isp-workloads — the ActivePy evaluation applications
//!
//! The nine applications of the paper's Table I (plus SparseMV from §V),
//! each as an *unannotated* ALang program — no ISP hints, pragmas, or
//! device code anywhere, exactly the input contract ActivePy promises —
//! together with deterministic input generators sized to the paper's data
//! volumes:
//!
//! | Name | Size | Shape |
//! |---|---|---|
//! | blackscholes | 9.1 GB | screen + closed-form pricing |
//! | KMeans | 5.3 GB | one EM pass over stored points |
//! | LightGBM | 7.1 GB | boosted-forest inference |
//! | MatrixMul | 6.0 GB | tall-skinny projection GEMM |
//! | MixedGEMM | 9.4 GB | streaming projection + dense Gram powers |
//! | PageRank | 7.7 GB | CSR conversion + rank iterations |
//! | TPC-H-1 | 6.9 GB | grouped aggregation |
//! | TPC-H-6 | 6.9 GB | scan-filter-aggregate |
//! | TPC-H-14 | 7.1 GB | month filter + dense-key join |
//! | SparseMV | 6.4 GB | CSR conversion + SpMV (§V) |
//!
//! ```
//! let q6 = isp_workloads::by_name("TPC-H-6").expect("registered");
//! let program = q6.program()?;
//! assert!(program.len() > 10);
//! let storage = q6.storage_at(1.0 / 1024.0); // a sampling-scale input
//! assert!(storage.get("lineitem").is_ok());
//! # Ok::<(), alang::LangError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod datagen;
pub mod spec;

pub use apps::{by_name, decode_set, full_set, table1, with_sparsemv};
pub use spec::Workload;
