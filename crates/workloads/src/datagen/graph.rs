//! Web-graph adjacency generator with a hub-heavy head.
//!
//! The paper's one systematic misprediction is the CSR conversion in
//! PageRank and SparseMV: "the sparsity is challenging to estimate with the
//! limited number of samples", and ActivePy *over-estimates* the CSR volume
//! by up to 2.41× (§V). The cause is real: web graphs are scale-free, and a
//! prefix sample of nodes is dominated by hubs, so the sampled edge density
//! overstates the full graph's.
//!
//! This generator models that directly: the logical adjacency matrix at
//! scale `s` covers the first `√s·N` nodes, whose edge density follows
//! `density(s) = d_full · s^(−β)`. With β ≈ 0.15 and the paper's four
//! sampling scales (geometric mean 2⁻⁸·⁵), a linear extrapolation of CSR
//! bytes over-estimates by `2^(8.5·β) ≈ 2.4×` — the paper's figure.

use super::rng_for;
use alang::matrix::Matrix;
use alang::Value;
use rand::Rng;

/// Density skew exponent of the hub-heavy head.
pub const DENSITY_BETA: f64 = 0.15;

/// Generates the adjacency matrix of a scale-free-ish graph: `gb × scale`
/// logical gigabytes of dense-stored adjacency, materialized as an
/// `actual_n × actual_n` block whose density matches the logical prefix.
///
/// `avg_degree` is the full graph's mean out-degree.
#[must_use]
pub fn adjacency(gb: f64, scale: f64, actual_n: usize, avg_degree: f64, seed: u64) -> Value {
    let full_n = (gb * 1e9 / 8.0).sqrt();
    let logical_n = ((full_n * scale.sqrt()).round() as u64).max(actual_n as u64);
    let full_density = avg_degree / full_n;
    let density = (full_density * scale.powf(-DENSITY_BETA)).min(0.5);
    let mut rng = rng_for(seed, scale);
    let mut data = vec![0.0; actual_n * actual_n];
    // Expected nnz in the block; place that many edges at random positions.
    // A small floor keeps degenerate blocks usable without distorting the
    // density-vs-scale relationship the misprediction experiment relies on.
    let nnz = ((actual_n * actual_n) as f64 * density).round().max(16.0) as usize;
    for _ in 0..nnz {
        let r = rng.gen_range(0..actual_n);
        let c = rng.gen_range(0..actual_n);
        data[r * actual_n + c] = 1.0;
    }
    Value::Matrix(
        Matrix::with_logical(data, actual_n, actual_n, logical_n, logical_n)
            .expect("shape is consistent by construction"),
    )
}

/// A uniform initial rank vector sized to the graph's logical node count.
#[must_use]
pub fn initial_ranks(gb: f64, scale: f64, actual_n: usize) -> Value {
    let full_n = (gb * 1e9 / 8.0).sqrt();
    let logical_n = ((full_n * scale.sqrt()).round() as u64).max(actual_n as u64);
    let r = 1.0 / actual_n as f64;
    Value::Array(alang::value::ArrayVal::with_logical(
        vec![r; actual_n],
        logical_n,
    ))
}

/// A dense input vector for SparseMV, sized like the rank vector.
#[must_use]
pub fn dense_vector(gb: f64, scale: f64, actual_n: usize, seed: u64) -> Value {
    let full_n = (gb * 1e9 / 8.0).sqrt();
    let logical_n = ((full_n * scale.sqrt()).round() as u64).max(actual_n as u64);
    let mut rng = rng_for(seed, scale);
    let data: Vec<f64> = (0..actual_n).map(|_| rng.gen_range(0.0..1.0)).collect();
    Value::Array(alang::value::ArrayVal::with_logical(data, logical_n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_volume_matches_gb() {
        let v = adjacency(7.7, 1.0, 256, 16.0, 1);
        let m = v.as_matrix().expect("matrix");
        let gb = m.virtual_bytes() as f64 / 1e9;
        assert!((gb - 7.7).abs() / 7.7 < 0.01, "got {gb}");
    }

    #[test]
    fn sampled_density_exceeds_full_density() {
        let full = adjacency(7.7, 1.0, 512, 16.0, 1);
        let tiny = adjacency(7.7, 1.0 / 1024.0, 512, 16.0, 1);
        let df = full.as_matrix().expect("f").density();
        let dt = tiny.as_matrix().expect("t").density();
        assert!(
            dt > df * 1.5,
            "hub-heavy prefix must look denser: tiny {dt} vs full {df}"
        );
    }

    #[test]
    fn csr_extrapolation_overestimates_near_paper_factor() {
        // Reproduce the fitting pipeline's behaviour analytically: CSR bytes
        // at scale s go as s^(1-beta); a linear fit over the paper's scales
        // lands 2^ (8.5*beta) ≈ 2.4x above the true full-scale volume.
        let scales = [2f64.powi(-10), 2f64.powi(-9), 2f64.powi(-8), 2f64.powi(-7)];
        let nnz_at = |s: f64| {
            let v = adjacency(7.7, s, 512, 16.0, 9);
            let m = v.as_matrix().expect("m");
            m.to_csr().logical_nnz() as f64
        };
        let mean_log_ratio: f64 =
            scales.iter().map(|s| (nnz_at(*s) / s).ln()).sum::<f64>() / scales.len() as f64;
        let predicted_full = mean_log_ratio.exp();
        let true_full = nnz_at(1.0);
        let factor = predicted_full / true_full;
        assert!(
            factor > 1.5 && factor < 3.5,
            "over-estimation factor {factor} should sit near the paper's 2.41x"
        );
    }

    #[test]
    fn rank_vector_sums_to_one() {
        let v = initial_ranks(7.7, 1.0, 256);
        let a = v.as_array().expect("arr");
        let total: f64 = a.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(a.logical_len() > a.len() as u64);
    }

    #[test]
    fn vector_lengths_match_graph_block() {
        let g = adjacency(6.4, 0.01, 384, 16.0, 2);
        let x = dense_vector(6.4, 0.01, 384, 2);
        assert_eq!(
            g.as_matrix().expect("g").cols(),
            x.as_array().expect("x").len()
        );
    }
}
