//! Random gradient-boosted-forest generator for the LightGBM workload.
//!
//! The paper evaluates LightGBM *inference* over stored feature data; the
//! model itself is a fixed artifact. We synthesize a forest of complete
//! binary trees with random split features/thresholds and ±leaf values —
//! the traversal cost and output shape match scoring a trained model.

use super::rng_for;
use alang::forest::{Forest, Tree, TreeNode};
use alang::Value;
use rand::Rng;

/// Builds a forest of `trees` complete binary trees of the given `depth`
/// (internal levels; a depth-4 tree has 15 internal nodes and 16 leaves)
/// over `features` feature columns with thresholds in `(-1, 1)`.
///
/// # Panics
///
/// Panics if `trees`, `depth`, or `features` is zero.
#[must_use]
pub fn random_forest(trees: usize, depth: u32, features: u32, seed: u64) -> Value {
    assert!(
        trees > 0 && depth > 0 && features > 0,
        "forest must be non-trivial"
    );
    let mut rng = rng_for(seed, 1.0);
    let mut out = Vec::with_capacity(trees);
    for _ in 0..trees {
        let internal = (1usize << depth) - 1;
        let leaves = 1usize << depth;
        let mut nodes = Vec::with_capacity(internal + leaves);
        for i in 0..internal {
            let left = (2 * i + 1) as u32;
            let right = (2 * i + 2) as u32;
            nodes.push(TreeNode::split(
                rng.gen_range(0..features),
                rng.gen_range(-1.0..1.0),
                left,
                right,
            ));
        }
        for _ in 0..leaves {
            nodes.push(TreeNode::leaf(rng.gen_range(-1.0..1.0)));
        }
        out.push(Tree::new(nodes).expect("complete binary trees are well-formed"));
    }
    Value::Forest(Forest::new(out, features).expect("at least one tree"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_shape() {
        let v = random_forest(10, 4, 32, 1);
        let f = v.as_forest().expect("forest");
        assert_eq!(f.tree_count(), 10);
        assert_eq!(f.feature_count(), 32);
        // Each depth-4 tree: 15 internal + 16 leaves = 31 nodes.
        assert_eq!(f.node_count(), 310);
        assert!(
            (f.mean_depth() - 5.0).abs() < 1e-9,
            "depth counts nodes on the path"
        );
    }

    #[test]
    fn scoring_visits_depth_plus_one_nodes_per_tree() {
        let v = random_forest(3, 4, 8, 2);
        let f = v.as_forest().expect("forest");
        let (_, visited) = f.score(&[0.0; 8]);
        assert_eq!(visited, 3 * 5);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_forest(4, 3, 8, 7), random_forest(4, 3, 8, 7));
        assert_ne!(random_forest(4, 3, 8, 7), random_forest(4, 3, 8, 8));
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn zero_trees_panics() {
        let _ = random_forest(0, 3, 8, 1);
    }
}
