//! Deterministic data generators for the Table-I workloads.
//!
//! Every generator follows the same discipline:
//!
//! * **Logical sizes scale with the requested factor** — a request at scale
//!   `s` describes a dataset `s ×` the paper's Table-I volume, which is what
//!   the ActivePy sampling phase slices.
//! * **Materialized sizes stay laptop-small and fixed** — a few thousand
//!   rows regardless of scale, regenerated from a seed mixed with the scale
//!   so that data-dependent properties (selectivities, tree paths) carry
//!   realistic finite-sample noise between sampling runs.
//! * **Data-dependent structure is honest** — in particular the web-graph
//!   generator's density varies with the observed prefix (hub-heavy head),
//!   which is what reproduces the paper's CSR-volume over-estimation.

pub mod forestgen;
pub mod graph;
pub mod linalg;
pub mod options;
pub mod points;
pub mod tpch;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a base seed with the scale factor so each sampling scale sees a
/// fresh (but reproducible) draw of the underlying distribution.
#[must_use]
pub fn rng_for(seed: u64, scale: f64) -> StdRng {
    let bits = scale.to_bits();
    StdRng::seed_from_u64(seed ^ bits.rotate_left(17))
}

/// Logical row count of a dataset occupying `gb` gigabytes at `bytes_per_row`,
/// scaled by `scale`, never below the materialized `actual` count.
#[must_use]
pub fn logical_rows(gb: f64, bytes_per_row: u64, scale: f64, actual: usize) -> u64 {
    let rows = (gb * 1e9 * scale / bytes_per_row as f64).round() as u64;
    rows.max(actual as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic_per_scale() {
        let mut a = rng_for(42, 0.5);
        let mut b = rng_for(42, 0.5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for(42, 0.25);
        let va = rng_for(42, 0.5).next_u64();
        assert_ne!(va, c.next_u64(), "different scales draw differently");
    }

    #[test]
    fn logical_rows_scales_linearly_and_floors_at_actual() {
        let full = logical_rows(6.9, 56, 1.0, 4096);
        let half = logical_rows(6.9, 56, 0.5, 4096);
        assert!((full as f64 / half as f64 - 2.0).abs() < 1e-6);
        assert_eq!(logical_rows(6.9, 56, 1e-12, 4096), 4096);
    }
}
