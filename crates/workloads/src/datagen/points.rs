//! Clustered point-cloud generator for the KMeans workload.

use super::{logical_rows, rng_for};
use alang::matrix::Matrix;
use alang::Value;
use rand::Rng;

/// Generates an `n × dims` point matrix of `gb × scale` logical gigabytes,
/// drawn from `k` Gaussian-ish clusters, materialized at `actual_rows`.
#[must_use]
pub fn clustered_points(
    gb: f64,
    scale: f64,
    dims: usize,
    k: usize,
    actual_rows: usize,
    seed: u64,
) -> Value {
    let mut rng = rng_for(seed, scale);
    // Cluster centres on a fixed lattice so every scale sees the same
    // population structure.
    let centres: Vec<Vec<f64>> = (0..k)
        .map(|c| (0..dims).map(|d| ((c * 7 + d * 3) % 13) as f64).collect())
        .collect();
    let mut data = Vec::with_capacity(actual_rows * dims);
    for i in 0..actual_rows {
        let c = &centres[i % k];
        for centre_coord in c.iter().take(dims) {
            // Triangular noise approximates a Gaussian cheaply.
            let noise = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
            data.push(centre_coord + noise);
        }
    }
    let logical = logical_rows(gb, dims as u64 * 8, scale, actual_rows);
    Value::Matrix(
        Matrix::with_logical(data, actual_rows, dims, logical, dims as u64)
            .expect("shape is consistent by construction"),
    )
}

/// Initial centroids: the first `k` cluster centres, slightly perturbed.
#[must_use]
pub fn initial_centroids(dims: usize, k: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed.wrapping_add(1), 1.0);
    let mut data = Vec::with_capacity(k * dims);
    for c in 0..k {
        for d in 0..dims {
            data.push(((c * 7 + d * 3) % 13) as f64 + rng.gen_range(-0.5..0.5));
        }
    }
    Value::Matrix(Matrix::new(data, k, dims).expect("shape is consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_volume_matches_gb() {
        let v = clustered_points(5.3, 1.0, 8, 8, 4096, 1);
        let m = v.as_matrix().expect("matrix");
        let gb = m.virtual_bytes() as f64 / 1e9;
        assert!((gb - 5.3).abs() < 0.01, "got {gb}");
    }

    #[test]
    fn centroids_shape() {
        let v = initial_centroids(8, 8, 1);
        let m = v.as_matrix().expect("matrix");
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 8);
    }

    #[test]
    fn clusters_are_separable() {
        // Points near centre 0 should be closer to centroid 0 than to any
        // other centroid for a majority of rows with i % k == 0.
        let pts = clustered_points(1.0, 1.0, 4, 4, 1024, 2);
        let cents = initial_centroids(4, 4, 2);
        let (p, c) = (pts.as_matrix().expect("p"), cents.as_matrix().expect("c"));
        let mut correct = 0;
        let mut total = 0;
        for i in (0..1024).step_by(4) {
            total += 1;
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for kc in 0..4 {
                let d: f64 = (0..4).map(|j| (p.get(i, j) - c.get(kc, j)).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = kc;
                }
            }
            if best == 0 {
                correct += 1;
            }
        }
        assert!(
            correct * 10 >= total * 7,
            "only {correct}/{total} rows nearest their own centroid"
        );
    }
}
