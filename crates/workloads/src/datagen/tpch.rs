//! TPC-H `lineitem` and `part` generators (columnar, dictionary-encoded).
//!
//! Only the columns the three evaluated queries touch are generated. Dates
//! are stored as days since 1970-01-01, matching the integer-date columnar
//! layouts real engines use. `l_partkey` indexes the *materialized* part
//! rows so the dense-key join in Q14 probes real data at every scale.

use super::{logical_rows, rng_for};
use alang::table::{Column, Table};
use alang::Value;
use rand::Rng;
use std::sync::Arc;

/// Bytes per `lineitem` row: five `f64` measures + shipdate + partkey
/// (`f64`/`i64`-width) and two 4-byte dictionary codes.
pub const LINEITEM_BYTES_PER_ROW: u64 = 8 * 6 + 4 + 4;

/// Bytes per `part` row: a 4-byte `p_type` code and an 8-byte retail price.
pub const PART_BYTES_PER_ROW: u64 = 4 + 8;

/// Day number of 1994-01-01 (Q6's date window start).
pub const DAY_1994_01_01: f64 = 8766.0;
/// Day number of 1995-01-01 (Q6's window end).
pub const DAY_1995_01_01: f64 = 9131.0;
/// Day number of 1995-09-01 (Q14's month).
pub const DAY_1995_09_01: f64 = 9374.0;
/// Day number of 1995-10-01.
pub const DAY_1995_10_01: f64 = 9404.0;

/// Number of `p_type` dictionary entries; code 0 is the `PROMO` family.
pub const PART_TYPES: usize = 5;

/// Generates a `lineitem` table: `gb × scale` logical gigabytes,
/// materialized at `actual` rows, with part keys in `[0, part_actual)`.
#[must_use]
pub fn lineitem(gb: f64, scale: f64, actual: usize, part_actual: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed, scale);
    let mut quantity = Vec::with_capacity(actual);
    let mut price = Vec::with_capacity(actual);
    let mut discount = Vec::with_capacity(actual);
    let mut tax = Vec::with_capacity(actual);
    let mut shipdate = Vec::with_capacity(actual);
    let mut partkey = Vec::with_capacity(actual);
    let mut returnflag = Vec::with_capacity(actual);
    let mut linestatus = Vec::with_capacity(actual);
    for _ in 0..actual {
        quantity.push(f64::from(rng.gen_range(1..=50)));
        price.push(900.0 + rng.gen_range(0.0..104_000.0));
        discount.push(f64::from(rng.gen_range(0..=10)) / 100.0);
        tax.push(f64::from(rng.gen_range(0..=8)) / 100.0);
        // Ship dates uniform over 1992-01-01..1998-12-01 (TPC-H spec).
        shipdate.push(f64::from(rng.gen_range(8035..10561)));
        partkey.push(rng.gen_range(0..part_actual) as f64);
        returnflag.push(rng.gen_range(0..3u32));
        linestatus.push(rng.gen_range(0..2u32));
    }
    let logical = logical_rows(gb, LINEITEM_BYTES_PER_ROW, scale, actual);
    let table = Table::with_logical_rows(
        vec![
            ("quantity".into(), Column::F64(Arc::new(quantity))),
            ("extendedprice".into(), Column::F64(Arc::new(price))),
            ("discount".into(), Column::F64(Arc::new(discount))),
            ("tax".into(), Column::F64(Arc::new(tax))),
            ("shipdate".into(), Column::F64(Arc::new(shipdate))),
            ("partkey".into(), Column::F64(Arc::new(partkey))),
            (
                "returnflag".into(),
                Column::Dict {
                    codes: Arc::new(returnflag),
                    dict: Arc::new(vec!["A".into(), "N".into(), "R".into()]),
                },
            ),
            (
                "linestatus".into(),
                Column::Dict {
                    codes: Arc::new(linestatus),
                    dict: Arc::new(vec!["O".into(), "F".into()]),
                },
            ),
        ],
        logical,
    )
    .expect("lineitem columns are equal-length by construction");
    Value::Table(table)
}

/// Generates a `part` table of `gb × scale` logical gigabytes at `actual`
/// materialized rows. Codes into the five-entry `p_type` dictionary are
/// uniform, so ≈20 % of parts are `PROMO`.
#[must_use]
pub fn part(gb: f64, scale: f64, actual: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed.wrapping_add(0x9e3779b9), scale);
    let mut ptype = Vec::with_capacity(actual);
    let mut retail = Vec::with_capacity(actual);
    for _ in 0..actual {
        ptype.push(rng.gen_range(0..PART_TYPES as u32));
        retail.push(900.0 + rng.gen_range(0.0..1100.0));
    }
    let logical = logical_rows(gb, PART_BYTES_PER_ROW, scale, actual);
    let table = Table::with_logical_rows(
        vec![
            (
                "type".into(),
                Column::Dict {
                    codes: Arc::new(ptype),
                    dict: Arc::new(vec![
                        "PROMO ANODIZED".into(),
                        "STANDARD POLISHED".into(),
                        "SMALL PLATED".into(),
                        "MEDIUM BRUSHED".into(),
                        "ECONOMY BURNISHED".into(),
                    ]),
                },
            ),
            ("retailprice".into(), Column::F64(Arc::new(retail))),
        ],
        logical,
    )
    .expect("part columns are equal-length by construction");
    Value::Table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_shape_and_volume() {
        let v = lineitem(6.9, 1.0, 4096, 2048, 7);
        let t = v.as_table().expect("table");
        assert_eq!(t.rows(), 4096);
        assert_eq!(t.bytes_per_row(), LINEITEM_BYTES_PER_ROW);
        let gb = t.virtual_bytes() as f64 / 1e9;
        assert!((gb - 6.9).abs() < 0.01, "got {gb} GB");
    }

    #[test]
    fn lineitem_scales_logically_not_physically() {
        let full = lineitem(6.9, 1.0, 4096, 2048, 7);
        let tiny = lineitem(6.9, 1.0 / 1024.0, 4096, 2048, 7);
        let (tf, tt) = (full.as_table().expect("f"), tiny.as_table().expect("t"));
        assert_eq!(tf.rows(), tt.rows());
        assert!(tf.logical_rows() > 1000 * tt.logical_rows());
    }

    #[test]
    fn partkeys_stay_in_part_range() {
        let v = lineitem(6.9, 0.01, 4096, 512, 3);
        let t = v.as_table().expect("table");
        match t.column("partkey").expect("pk") {
            Column::F64(keys) => {
                assert!(keys.iter().all(|k| *k >= 0.0 && *k < 512.0));
            }
            other => panic!("wrong type {}", other.type_name()),
        }
    }

    #[test]
    fn q6_predicates_have_plausible_selectivity() {
        let v = lineitem(6.9, 1.0, 8192, 2048, 11);
        let t = v.as_table().expect("table");
        let (dates, qtys, discs) = match (
            t.column("shipdate").expect("d"),
            t.column("quantity").expect("q"),
            t.column("discount").expect("disc"),
        ) {
            (Column::F64(d), Column::F64(q), Column::F64(disc)) => (d, q, disc),
            _ => panic!("wrong column types"),
        };
        let hits = dates
            .iter()
            .zip(qtys.iter())
            .zip(discs.iter())
            .filter(|((d, q), disc)| {
                **d >= DAY_1994_01_01
                    && **d < DAY_1995_01_01
                    && **q < 24.0
                    && **disc >= 0.05
                    && **disc <= 0.07
            })
            .count();
        let sel = hits as f64 / 8192.0;
        // TPC-H Q6 selects roughly 2% of lineitem.
        assert!(sel > 0.005 && sel < 0.05, "selectivity {sel}");
    }

    #[test]
    fn part_promo_fraction_near_one_fifth() {
        let v = part(0.2, 1.0, 4096, 5);
        let t = v.as_table().expect("table");
        match t.column("type").expect("type") {
            Column::Dict { codes, dict } => {
                assert!(dict[0].starts_with("PROMO"));
                let promo = codes.iter().filter(|c| **c == 0).count() as f64 / 4096.0;
                assert!((promo - 0.2).abs() < 0.05, "promo fraction {promo}");
            }
            other => panic!("wrong type {}", other.type_name()),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = lineitem(6.9, 0.5, 1024, 512, 99);
        let b = lineitem(6.9, 0.5, 1024, 512, 99);
        assert_eq!(a, b);
    }
}
