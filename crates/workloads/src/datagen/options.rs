//! Option-chain generator for the Blackscholes workload.

use super::{logical_rows, rng_for};
use alang::table::{Column, Table};
use alang::Value;
use rand::Rng;
use std::sync::Arc;

/// Bytes per option row: spot, strike, time-to-expiry, volatility.
pub const OPTION_BYTES_PER_ROW: u64 = 8 * 4;

/// Generates an option chain of `gb × scale` logical gigabytes at
/// `actual` materialized rows. Roughly half the rows are "live" (time to
/// expiry above a trading-floor threshold and sane volatility), which is
/// the data reduction the pricing pipeline's pre-filter exploits.
#[must_use]
pub fn option_chain(gb: f64, scale: f64, actual: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed, scale);
    let mut spot = Vec::with_capacity(actual);
    let mut strike = Vec::with_capacity(actual);
    let mut tte = Vec::with_capacity(actual);
    let mut vol = Vec::with_capacity(actual);
    for _ in 0..actual {
        let s = rng.gen_range(10.0..200.0);
        spot.push(s);
        strike.push(s * rng.gen_range(0.6..1.4));
        // Half the chain is at/past expiry or illiquid (tte below the 0.02y
        // floor), half is live out to two years.
        if rng.gen_bool(0.5) {
            tte.push(rng.gen_range(0.0..0.02));
        } else {
            tte.push(rng.gen_range(0.02..2.0));
        }
        // A long tail of junk vol marks another slice as unpriceable.
        if rng.gen_bool(0.9) {
            vol.push(rng.gen_range(0.05..0.9));
        } else {
            vol.push(rng.gen_range(0.9..3.0));
        }
    }
    let logical = logical_rows(gb, OPTION_BYTES_PER_ROW, scale, actual);
    let table = Table::with_logical_rows(
        vec![
            ("spot".into(), Column::F64(Arc::new(spot))),
            ("strike".into(), Column::F64(Arc::new(strike))),
            ("tte".into(), Column::F64(Arc::new(tte))),
            ("vol".into(), Column::F64(Arc::new(vol))),
        ],
        logical,
    )
    .expect("option columns are equal-length by construction");
    Value::Table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_matches_gb() {
        let v = option_chain(9.1, 1.0, 4096, 1);
        let t = v.as_table().expect("table");
        let gb = t.virtual_bytes() as f64 / 1e9;
        assert!((gb - 9.1).abs() < 0.01, "got {gb}");
    }

    #[test]
    fn live_fraction_near_half() {
        let v = option_chain(9.1, 1.0, 8192, 2);
        let t = v.as_table().expect("table");
        let (ttes, vols) = match (t.column("tte").expect("t"), t.column("vol").expect("v")) {
            (Column::F64(a), Column::F64(b)) => (a, b),
            _ => panic!("wrong column types"),
        };
        let live = ttes
            .iter()
            .zip(vols.iter())
            .filter(|(t, v)| **t > 0.02 && **v < 0.9)
            .count() as f64
            / 8192.0;
        assert!((live - 0.45).abs() < 0.1, "live fraction {live}");
    }

    #[test]
    fn prices_are_positive_domain() {
        let v = option_chain(9.1, 0.25, 1024, 3);
        let t = v.as_table().expect("table");
        match t.column("spot").expect("s") {
            Column::F64(s) => assert!(s.iter().all(|x| *x > 0.0)),
            other => panic!("wrong type {}", other.type_name()),
        }
    }
}
