//! Dense linear-algebra generators: feature matrices and weight blocks.

use super::{logical_rows, rng_for};
use alang::matrix::Matrix;
use alang::Value;
use rand::Rng;

/// Generates an `n × cols` feature matrix of `gb × scale` logical
/// gigabytes, materialized at `actual_rows` rows.
#[must_use]
pub fn feature_matrix(gb: f64, scale: f64, cols: usize, actual_rows: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed, scale);
    let data: Vec<f64> = (0..actual_rows * cols)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let logical = logical_rows(gb, cols as u64 * 8, scale, actual_rows);
    Value::Matrix(
        Matrix::with_logical(data, actual_rows, cols, logical, cols as u64)
            .expect("shape is consistent by construction"),
    )
}

/// Generates a small unscaled `rows × cols` weight matrix (a model
/// parameter, not a dataset — its size does not scale).
#[must_use]
pub fn weight_matrix(rows: usize, cols: usize, seed: u64) -> Value {
    let mut rng = rng_for(seed, 1.0);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-0.5..0.5)).collect();
    Value::Matrix(Matrix::new(data, rows, cols).expect("shape is consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_volume_matches_gb() {
        let v = feature_matrix(6.0, 1.0, 64, 2048, 1);
        let m = v.as_matrix().expect("matrix");
        assert_eq!(m.cols(), 64);
        assert_eq!(m.rows(), 2048);
        let gb = m.virtual_bytes() as f64 / 1e9;
        assert!((gb - 6.0).abs() < 0.01, "got {gb}");
    }

    #[test]
    fn weight_matrix_is_unscaled() {
        let v = weight_matrix(64, 4, 2);
        let m = v.as_matrix().expect("matrix");
        assert_eq!(m.logical_rows(), 64);
        assert_eq!(m.logical_cols(), 4);
    }

    #[test]
    fn values_are_bounded() {
        let v = feature_matrix(1.0, 0.01, 8, 256, 3);
        let m = v.as_matrix().expect("matrix");
        assert!(m.data().iter().all(|x| (-1.0..1.0).contains(x)));
    }
}
