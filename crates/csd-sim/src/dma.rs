//! DMA engine for bulk host↔device transfers.
//!
//! ActivePy distributes generated CSD binaries and migration state by
//! writing directly into BAR-mapped device memory (§III-C0d), which the
//! hardware realizes as DMA bursts over the device-to-host path. The engine
//! adds a fixed per-descriptor setup cost on top of the link transfer time.

use crate::link::Path;
use crate::units::{Bytes, Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host memory to device memory.
    HostToDevice,
    /// Device memory to host memory.
    DeviceToHost,
}

/// A DMA engine bound to an interconnect path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaEngine {
    setup: Duration,
    h2d_bytes: Bytes,
    d2h_bytes: Bytes,
    transfers: u64,
    faulted_transfers: u64,
}

impl DmaEngine {
    /// Creates a DMA engine with per-descriptor `setup` cost.
    #[must_use]
    pub fn new(setup: Duration) -> Self {
        DmaEngine {
            setup,
            h2d_bytes: Bytes::ZERO,
            d2h_bytes: Bytes::ZERO,
            transfers: 0,
            faulted_transfers: 0,
        }
    }

    /// Per-descriptor setup cost.
    #[must_use]
    pub fn setup(&self) -> Duration {
        self.setup
    }

    /// Performs a transfer of `bytes` in `dir` over `path` starting at
    /// `start`; returns the wall-clock duration including setup.
    pub fn transfer(
        &mut self,
        path: &mut Path,
        start: SimTime,
        dir: Direction,
        bytes: Bytes,
    ) -> Duration {
        self.transfers += 1;
        match dir {
            Direction::HostToDevice => self.h2d_bytes += bytes,
            Direction::DeviceToHost => self.d2h_bytes += bytes,
        }
        self.setup + path.transfer(start + self.setup, bytes)
    }

    /// Total bytes moved host-to-device.
    #[must_use]
    pub fn h2d_bytes(&self) -> Bytes {
        self.h2d_bytes
    }

    /// Total bytes moved device-to-host.
    #[must_use]
    pub fn d2h_bytes(&self) -> Bytes {
        self.d2h_bytes
    }

    /// Number of transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Records one transfer attempt killed by an injected DMA error
    /// (no payload moved, no descriptor charged).
    pub fn record_fault(&mut self) {
        self.faulted_transfers += 1;
    }

    /// Transfer attempts killed by injected errors.
    #[must_use]
    pub fn faulted_transfers(&self) -> u64 {
        self.faulted_transfers
    }

    /// Resets traffic counters.
    pub fn reset_counters(&mut self) {
        self.h2d_bytes = Bytes::ZERO;
        self.d2h_bytes = Bytes::ZERO;
        self.transfers = 0;
        self.faulted_transfers = 0;
    }
}

impl Default for DmaEngine {
    fn default() -> Self {
        DmaEngine::new(Duration::from_micros(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::units::Bandwidth;

    fn path() -> Path {
        Path::new(vec![Link::new(
            "nvme",
            Bandwidth::from_gb_per_sec(5.0),
            Duration::from_micros(5.0),
        )])
    }

    #[test]
    fn transfer_includes_setup_and_link_time() {
        let mut dma = DmaEngine::new(Duration::from_micros(1.0));
        let mut p = path();
        let t = dma.transfer(
            &mut p,
            SimTime::ZERO,
            Direction::DeviceToHost,
            Bytes::from_gb_f64(5.0),
        );
        // 1us setup + 5us link latency + 1s payload.
        assert!((t.as_secs() - (1.0 + 6e-6)).abs() < 1e-9);
        assert_eq!(dma.d2h_bytes(), Bytes::from_gb_f64(5.0));
        assert_eq!(dma.transfers(), 1);
    }

    #[test]
    fn directional_accounting() {
        let mut dma = DmaEngine::default();
        let mut p = path();
        dma.transfer(
            &mut p,
            SimTime::ZERO,
            Direction::HostToDevice,
            Bytes::from_mib(1),
        );
        dma.transfer(
            &mut p,
            SimTime::ZERO,
            Direction::DeviceToHost,
            Bytes::from_mib(2),
        );
        assert_eq!(dma.h2d_bytes(), Bytes::from_mib(1));
        assert_eq!(dma.d2h_bytes(), Bytes::from_mib(2));
        dma.reset_counters();
        assert_eq!(dma.transfers(), 0);
    }
}
