//! # csd-sim — a computational storage device and its host, in discrete events
//!
//! This crate is the hardware substrate for the ActivePy (DAC 2023)
//! reproduction. The paper evaluates on a physical prototype — an SoC with
//! 8 ARM Cortex-A72 cores inside a 2 TB NVMe drive, reading its NAND at
//! 9 GB/s internally while the host can only pull 4–5 GB/s across
//! NVMe/PCIe. Lacking that hardware, everything here is a deterministic
//! timing model calibrated to the paper's published figures.
//!
//! The model is intentionally *analytic*: compute engines are aggregate
//! operation servers throttled by piecewise-constant
//! [`availability::AvailabilityTrace`]s, links are bandwidth + latency,
//! flash is bandwidth + garbage-collection windows, and NVMe queue pairs
//! are real FIFO rings with microsecond hop costs. Every quantity in the
//! paper's net-profit equation (Eq. 1) — `CT_host`, `CT_device`,
//! `D_in`/`D_out`, `BW_D2H` — has a faithful counterpart.
//!
//! ## Quick start
//!
//! ```
//! use csd_sim::{System, EngineKind};
//! use csd_sim::units::{Bytes, Ops};
//!
//! let mut sys = System::paper_default();
//! // Stream 1 GB of stored data into the CSE and crunch it.
//! sys.storage_read(EngineKind::Cse, Bytes::from_gb_f64(1.0));
//! sys.compute(EngineKind::Cse, Ops::new(100_000_000));
//! println!("finished at t = {}", sys.now());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod availability;
pub mod config;
pub mod contention;
pub mod counters;
pub mod dma;
pub mod engine;
pub mod fault;
pub mod flash;
pub mod fleet;
pub mod link;
pub mod memory;
pub mod nvme;
pub mod system;
pub mod units;
pub mod wire;

pub use config::SystemConfig;
pub use contention::ContentionScenario;
pub use dma::Direction;
pub use engine::EngineKind;
pub use fault::{DeviceFault, FaultCounters, FaultInjector, FaultPlan, GcBurst};
pub use fleet::Fleet;
pub use system::System;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<System>();
        assert_sync::<System>();
    }
}
