//! Interconnect links.
//!
//! The CSD talks to the host over NVMe at up to 5 GB/s, while the host's
//! PCIe 3.0 hub gives storage traffic a 4 GB/s budget (§II-A, §IV-A). A
//! transfer between device and host therefore crosses a *path* of links and
//! is limited by the slowest one. Links carry a per-message latency and an
//! optional availability trace (shared-bus contention).

use crate::availability::AvailabilityTrace;
use crate::units::{Bandwidth, Bytes, Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point-to-point interconnect link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    name: String,
    bandwidth: Bandwidth,
    latency: Duration,
    availability: AvailabilityTrace,
    bytes_moved: Bytes,
}

impl Link {
    /// Creates a link with the given peak `bandwidth` and per-message
    /// `latency`.
    #[must_use]
    pub fn new(name: impl Into<String>, bandwidth: Bandwidth, latency: Duration) -> Self {
        Link {
            name: name.into(),
            bandwidth,
            latency,
            availability: AvailabilityTrace::full(),
            bytes_moved: Bytes::ZERO,
        }
    }

    /// The link's name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Per-message latency.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Total bytes this link has carried.
    #[must_use]
    pub fn bytes_moved(&self) -> Bytes {
        self.bytes_moved
    }

    /// Replaces the availability trace (shared-bus contention).
    pub fn set_availability(&mut self, trace: AvailabilityTrace) {
        self.availability = trace;
    }

    /// Time to move `bytes` starting at `start`, without recording traffic.
    ///
    /// Zero-byte transfers still pay the message latency (a doorbell ring is
    /// never free).
    #[must_use]
    pub fn time_to_transfer(&self, start: SimTime, bytes: Bytes) -> Duration {
        let effective_secs = self.bandwidth.transfer_time(bytes).as_secs();
        self.latency
            + self
                .availability
                .invert(start + self.latency, effective_secs)
    }

    /// Moves `bytes` starting at `start`: returns the wall-clock duration and
    /// records the traffic.
    pub fn transfer(&mut self, start: SimTime, bytes: Bytes) -> Duration {
        let d = self.time_to_transfer(start, bytes);
        self.bytes_moved += bytes;
        d
    }

    /// Resets the traffic counter.
    pub fn reset_counters(&mut self) {
        self.bytes_moved = Bytes::ZERO;
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.bandwidth, self.latency)
    }
}

/// A path across several links; throughput is the minimum bandwidth along
/// the path and latency is the sum.
///
/// ```
/// use csd_sim::link::{Link, Path};
/// use csd_sim::units::{Bandwidth, Bytes, Duration, SimTime};
///
/// let nvme = Link::new("nvme", Bandwidth::from_gb_per_sec(5.0), Duration::from_micros(5.0));
/// let pcie = Link::new("pcie", Bandwidth::from_gb_per_sec(4.0), Duration::from_micros(1.0));
/// let path = Path::new(vec![nvme, pcie]);
/// // Bottleneck is 4 GB/s.
/// let t = path.time_to_transfer(SimTime::ZERO, Bytes::from_gb_f64(4.0));
/// assert!(t.as_secs() > 1.0 && t.as_secs() < 1.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    links: Vec<Link>,
}

impl Path {
    /// Creates a path from an ordered list of links.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty.
    #[must_use]
    pub fn new(links: Vec<Link>) -> Self {
        assert!(!links.is_empty(), "a path needs at least one link");
        Path { links }
    }

    /// The bottleneck bandwidth along the path.
    #[must_use]
    pub fn bottleneck(&self) -> Bandwidth {
        self.links
            .iter()
            .map(Link::bandwidth)
            .fold(self.links[0].bandwidth(), Bandwidth::min)
    }

    /// Total per-message latency along the path.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.links.iter().map(Link::latency).sum()
    }

    /// Time to move `bytes` across the whole path starting at `start`
    /// (store-and-forward is not modelled; the bottleneck link dominates).
    #[must_use]
    pub fn time_to_transfer(&self, start: SimTime, bytes: Bytes) -> Duration {
        // Use the bottleneck link's availability-aware timing, then add the
        // other links' latencies.
        let (bi, _) = self
            .links
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.bandwidth()
                    .as_bytes_per_sec()
                    .partial_cmp(&b.bandwidth().as_bytes_per_sec())
                    .expect("bandwidths are finite")
            })
            .expect("path is non-empty");
        let extra_latency: Duration = self
            .links
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bi)
            .map(|(_, l)| l.latency())
            .sum();
        extra_latency + self.links[bi].time_to_transfer(start + extra_latency, bytes)
    }

    /// Moves `bytes` across the path, recording traffic on every link.
    pub fn transfer(&mut self, start: SimTime, bytes: Bytes) -> Duration {
        let d = self.time_to_transfer(start, bytes);
        for l in &mut self.links {
            l.bytes_moved += bytes;
        }
        d
    }

    /// The links making up this path.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Mutable access to the links (e.g. to install contention traces).
    #[must_use]
    pub fn links_mut(&mut self) -> &mut [Link] {
        &mut self.links
    }

    /// Resets traffic counters on all links.
    pub fn reset_counters(&mut self) {
        for l in &mut self.links {
            l.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(b: f64) -> Bandwidth {
        Bandwidth::from_gb_per_sec(b)
    }

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bw() {
        let l = Link::new("x", gb(5.0), Duration::from_micros(10.0));
        let t = l.time_to_transfer(SimTime::ZERO, Bytes::from_gb_f64(5.0));
        assert!((t.as_secs() - (1.0 + 10e-6)).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_still_pays_latency() {
        let l = Link::new("x", gb(5.0), Duration::from_micros(10.0));
        let t = l.time_to_transfer(SimTime::ZERO, Bytes::ZERO);
        assert!((t.as_secs() - 10e-6).abs() < 1e-15);
    }

    #[test]
    fn transfer_records_traffic() {
        let mut l = Link::new("x", gb(5.0), Duration::ZERO);
        l.transfer(SimTime::ZERO, Bytes::from_mib(1));
        l.transfer(SimTime::ZERO, Bytes::from_mib(2));
        assert_eq!(l.bytes_moved(), Bytes::from_mib(3));
        l.reset_counters();
        assert_eq!(l.bytes_moved(), Bytes::ZERO);
    }

    #[test]
    fn path_bottleneck_is_min_bandwidth() {
        let p = Path::new(vec![
            Link::new("a", gb(5.0), Duration::ZERO),
            Link::new("b", gb(4.0), Duration::ZERO),
            Link::new("c", gb(9.0), Duration::ZERO),
        ]);
        assert!((p.bottleneck().as_bytes_per_sec() - 4e9).abs() < 1.0);
    }

    #[test]
    fn path_latency_sums() {
        let p = Path::new(vec![
            Link::new("a", gb(5.0), Duration::from_micros(2.0)),
            Link::new("b", gb(4.0), Duration::from_micros(3.0)),
        ]);
        assert!((p.latency().as_secs() - 5e-6).abs() < 1e-15);
    }

    #[test]
    fn contended_link_slows_transfer() {
        let mut l = Link::new("x", gb(4.0), Duration::ZERO);
        l.set_availability(AvailabilityTrace::constant(0.5));
        let t = l.time_to_transfer(SimTime::ZERO, Bytes::from_gb_f64(4.0));
        assert!((t.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn path_transfer_charges_all_links() {
        let mut p = Path::new(vec![
            Link::new("a", gb(5.0), Duration::ZERO),
            Link::new("b", gb(4.0), Duration::ZERO),
        ]);
        p.transfer(SimTime::ZERO, Bytes::from_mib(8));
        for l in p.links() {
            assert_eq!(l.bytes_moved(), Bytes::from_mib(8));
        }
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        let _ = Path::new(Vec::new());
    }
}
