//! On-storage wire formats: the byte-level encodings bulk data is stored
//! in before any kernel sees an `f64`.
//!
//! Real storage does not serve pristine in-memory arrays — it serves
//! bytes: DEFLATE-compressed (gzip/zlib framing), byte-shuffled for
//! compressibility, possibly non-native-endian, and holey (a fill value
//! marking missing readings). This module is the self-contained codec
//! layer for that feature matrix — the same one reductionist-rs serves in
//! production — implemented in-repo because the build environment has no
//! registry access.
//!
//! Everything here is deterministic byte-in/byte-out transformation, so
//! decode can run on either side of the host/device link and Eq. 1 can
//! price the two placements against each other: decoding on the CSD ships
//! decoded (large) bytes nowhere but pays device cycles; decoding on the
//! host ships the compressed (small) stream across `BW_D2H` first.
//!
//! The DEFLATE implementation covers the full inflate side (stored,
//! fixed-Huffman, and dynamic-Huffman blocks per RFC 1951) and a
//! fixed-Huffman encoder with greedy hash-chain LZ77 matching — enough to
//! get real compression ratios on patterned data (especially after the
//! byte shuffle) while staying a few hundred lines.

use serde::{Deserialize, Serialize};

/// Compression codec of an encoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Codec {
    /// RFC 1952 gzip framing around a DEFLATE body (CRC32 + length).
    Gzip,
    /// RFC 1950 zlib framing around a DEFLATE body (Adler32).
    Zlib,
    /// No compression: the (possibly shuffled/swapped) bytes verbatim.
    None,
}

/// Byte order of the serialized f64 lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ByteOrder {
    /// Little-endian (x86/aarch64 native).
    Little,
    /// Big-endian (network order, common in scientific archives).
    Big,
}

/// The on-storage encoding of one bulk dataset.
///
/// The serialization pipeline is: f64 → bytes in `byte_order` → optional
/// byte [`shuffle`](shuffle) → `codec` compression. Decode inverts it and
/// then masks elements equal to `fill_value` (missing readings) to the
/// additive identity `0.0`, so downstream sums and dot products skip
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    /// Compression applied last (encode) / removed first (decode).
    pub codec: Codec,
    /// Whether bytes are shuffled (transposed by byte position) before
    /// compression — the classic HDF5 trick that groups exponent bytes
    /// together and makes patterned f64 data compress well.
    pub shuffle: bool,
    /// Serialized byte order of each f64.
    pub byte_order: ByteOrder,
    /// Sentinel marking missing elements; decoded occurrences are masked
    /// to `0.0`. Compared by bit pattern, so NaN sentinels work.
    pub fill_value: Option<f64>,
}

impl Encoding {
    /// The trivial encoding: native little-endian, no shuffle, no
    /// compression, no fill.
    #[must_use]
    pub fn raw() -> Self {
        Encoding {
            codec: Codec::None,
            shuffle: false,
            byte_order: ByteOrder::Little,
            fill_value: None,
        }
    }

    /// Gzip with byte shuffle — the highest-ratio encoding for patterned
    /// data, and the default for compressed workloads.
    #[must_use]
    pub fn gzip_shuffled() -> Self {
        Encoding {
            codec: Codec::Gzip,
            shuffle: true,
            byte_order: ByteOrder::Little,
            fill_value: None,
        }
    }

    /// Stable 64-bit fingerprint of the descriptor (FNV-1a over a
    /// canonical rendering, fill compared by bit pattern). Folded into
    /// plan-cache keys so plans for differently-encoded inputs never
    /// collide.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(match self.codec {
            Codec::Gzip => 1,
            Codec::Zlib => 2,
            Codec::None => 3,
        });
        eat(u8::from(self.shuffle));
        eat(match self.byte_order {
            ByteOrder::Little => 0,
            ByteOrder::Big => 1,
        });
        match self.fill_value {
            None => eat(0),
            Some(f) => {
                eat(1);
                for b in f.to_bits().to_le_bytes() {
                    eat(b);
                }
            }
        }
        h
    }

    /// Encodes a slice of f64s into the wire representation.
    #[must_use]
    pub fn encode(&self, data: &[f64]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for &x in data {
            match self.byte_order {
                ByteOrder::Little => bytes.extend_from_slice(&x.to_le_bytes()),
                ByteOrder::Big => bytes.extend_from_slice(&x.to_be_bytes()),
            }
        }
        if self.shuffle {
            bytes = shuffle(&bytes, 8);
        }
        match self.codec {
            Codec::Gzip => gzip_compress(&bytes),
            Codec::Zlib => zlib_compress(&bytes),
            Codec::None => bytes,
        }
    }

    /// Decodes a wire stream back into f64s, masking fill-value elements
    /// to `0.0`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing/stream corruption, or
    /// of a payload whose length is not a multiple of 8.
    pub fn decode(&self, stream: &[u8]) -> Result<Vec<f64>, String> {
        let bytes = match self.codec {
            Codec::Gzip => gzip_decompress(stream)?,
            Codec::Zlib => zlib_decompress(stream)?,
            Codec::None => stream.to_vec(),
        };
        if bytes.len() % 8 != 0 {
            return Err(format!(
                "decoded payload of {} bytes is not f64-aligned",
                bytes.len()
            ));
        }
        let bytes = if self.shuffle {
            unshuffle(&bytes, 8)
        } else {
            bytes
        };
        let fill_bits = self.fill_value.map(f64::to_bits);
        let mut out = Vec::with_capacity(bytes.len() / 8);
        for lane in bytes.chunks_exact(8) {
            let raw: [u8; 8] = lane.try_into().expect("chunks_exact(8)");
            let x = match self.byte_order {
                ByteOrder::Little => f64::from_le_bytes(raw),
                ByteOrder::Big => f64::from_be_bytes(raw),
            };
            out.push(if fill_bits == Some(x.to_bits()) {
                0.0
            } else {
                x
            });
        }
        Ok(out)
    }
}

/// Byte shuffle: transposes an `[n][stride]` byte matrix to
/// `[stride][n]`, grouping same-position bytes of consecutive elements.
/// The tail (len % stride) passes through unshuffled.
#[must_use]
pub fn shuffle(bytes: &[u8], stride: usize) -> Vec<u8> {
    let n = bytes.len() / stride;
    let mut out = Vec::with_capacity(bytes.len());
    for pos in 0..stride {
        for elem in 0..n {
            out.push(bytes[elem * stride + pos]);
        }
    }
    out.extend_from_slice(&bytes[n * stride..]);
    out
}

/// Inverse of [`shuffle`]. Written as a flat gather so the inner loop
/// autovectorizes (a strided load per output byte).
#[must_use]
pub fn unshuffle(bytes: &[u8], stride: usize) -> Vec<u8> {
    let n = bytes.len() / stride;
    let mut out = vec![0u8; bytes.len()];
    for pos in 0..stride {
        let lane = &bytes[pos * n..(pos + 1) * n];
        for (elem, &b) in lane.iter().enumerate() {
            out[elem * stride + pos] = b;
        }
    }
    out[n * stride..].copy_from_slice(&bytes[n * stride..]);
    out
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    !c
}

/// Adler-32 checksum (RFC 1950) of `bytes`.
#[must_use]
pub fn adler32(bytes: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let (mut a, mut b) = (1u32, 0u32);
    for chunk in bytes.chunks(5550) {
        for &x in chunk {
            a += u32::from(x);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

// ---------------------------------------------------------------------------
// DEFLATE bit I/O
// ---------------------------------------------------------------------------

/// LSB-first bit writer over a growing byte buffer (RFC 1951 bit order).
#[derive(Debug, Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Writes the low `n` bits of `v`, LSB first.
    fn put(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        self.acc |= u64::from(v) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman code of length `n`: deflate packs codes starting
    /// from their most significant bit, so the canonical code is
    /// bit-reversed before the LSB-first write.
    fn put_code(&mut self, code: u32, n: u32) {
        self.put(code.reverse_bits() >> (32 - n), n);
    }

    /// Pads to a byte boundary and returns the buffer.
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// LSB-first bit reader (RFC 1951 bit order).
#[derive(Debug)]
struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte: 0,
            bit: 0,
        }
    }

    fn bit(&mut self) -> Result<u32, String> {
        let Some(&b) = self.data.get(self.byte) else {
            return Err("deflate stream truncated".to_owned());
        };
        let v = u32::from(b >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte += 1;
        }
        Ok(v)
    }

    fn bits(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0u32;
        for i in 0..n {
            v |= self.bit()? << i;
        }
        Ok(v)
    }

    fn align_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical Huffman tables
// ---------------------------------------------------------------------------

/// Canonical Huffman decoder built from per-symbol code lengths
/// (RFC 1951 §3.2.2): symbols sorted by (length, symbol index).
#[derive(Debug)]
struct Huffman {
    /// `count[l]` = number of codes of length `l`.
    count: [u16; 16],
    /// Symbols ordered canonically.
    symbols: Vec<u16>,
}

impl Huffman {
    fn from_lengths(lengths: &[u8]) -> Result<Huffman, String> {
        let mut count = [0u16; 16];
        for &l in lengths {
            if l > 15 {
                return Err(format!("huffman code length {l} > 15"));
            }
            count[usize::from(l)] += 1;
        }
        count[0] = 0;
        // Over-subscribed length sets cannot decode unambiguously.
        let mut left = 1i32;
        for &c in &count[1..16] {
            left = (left << 1) - i32::from(c);
            if left < 0 {
                return Err("over-subscribed huffman code".to_owned());
            }
        }
        let mut offsets = [0u16; 16];
        for l in 1..15 {
            offsets[l + 1] = offsets[l] + count[l];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l != 0 {
                let o = &mut offsets[usize::from(l)];
                symbols[usize::from(*o)] = sym as u16;
                *o += 1;
            }
        }
        Ok(Huffman { count, symbols })
    }

    /// Decodes one symbol, reading bits MSB-of-code-first.
    fn decode(&self, r: &mut BitReader) -> Result<u16, String> {
        let (mut code, mut first, mut index) = (0i32, 0i32, 0i32);
        for l in 1..16 {
            code |= r.bit()? as i32;
            let cnt = i32::from(self.count[l]);
            if code - first < cnt {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err("invalid huffman code".to_owned())
    }
}

/// Canonical code assignment (code value per symbol) from lengths — the
/// encoder-side twin of [`Huffman::from_lengths`].
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut count = [0u32; 16];
    for &l in lengths {
        count[usize::from(l)] += 1;
    }
    count[0] = 0;
    let mut next = [0u32; 16];
    let mut code = 0u32;
    for l in 1..16 {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[usize::from(l)];
                next[usize::from(l)] += 1;
                c
            }
        })
        .collect()
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
fn fixed_lit_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    l[144..256].iter_mut().for_each(|x| *x = 9);
    l[256..280].iter_mut().for_each(|x| *x = 7);
    l
}

const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

// ---------------------------------------------------------------------------
// Inflate
// ---------------------------------------------------------------------------

/// Decompresses a raw DEFLATE stream (RFC 1951): stored, fixed-Huffman,
/// and dynamic-Huffman blocks.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let last = r.bits(1)?;
        match r.bits(2)? {
            0 => {
                r.align_byte();
                let len = r.bits(16)? as usize;
                let nlen = r.bits(16)? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err("stored block LEN/NLEN mismatch".to_owned());
                }
                for _ in 0..len {
                    out.push(r.bits(8)? as u8);
                }
            }
            1 => {
                let lit = Huffman::from_lengths(&fixed_lit_lengths())?;
                let dist = Huffman::from_lengths(&[5u8; 30])?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            2 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_block(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err("reserved deflate block type 3".to_owned()),
        }
        if last == 1 {
            return Ok(out);
        }
    }
}

/// Order the code-length code lengths are transmitted in (§3.2.7).
const CLCL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn read_dynamic_tables(r: &mut BitReader) -> Result<(Huffman, Huffman), String> {
    let hlit = r.bits(5)? as usize + 257;
    let hdist = r.bits(5)? as usize + 1;
    let hclen = r.bits(4)? as usize + 4;
    let mut cl_lengths = [0u8; 19];
    for &pos in CLCL_ORDER.iter().take(hclen) {
        cl_lengths[pos] = r.bits(3)? as u8;
    }
    let cl = Huffman::from_lengths(&cl_lengths)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        match cl.decode(r)? {
            sym @ 0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths.last().ok_or("repeat with no previous length")?;
                let n = r.bits(2)? + 3;
                lengths.extend(std::iter::repeat_n(prev, n as usize));
            }
            17 => {
                let n = r.bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            18 => {
                let n = r.bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0u8, n as usize));
            }
            other => return Err(format!("invalid code-length symbol {other}")),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err("code-length run overflows the table".to_owned());
    }
    let lit = Huffman::from_lengths(&lengths[..hlit])?;
    let dist = Huffman::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), String> {
    loop {
        match lit.decode(r)? {
            sym @ 0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            sym @ 257..=285 => {
                let i = usize::from(sym - 257);
                let len = usize::from(LEN_BASE[i]) + r.bits(u32::from(LEN_EXTRA[i]))? as usize;
                let d = usize::from(dist.decode(r)?);
                if d >= 30 {
                    return Err(format!("invalid distance symbol {d}"));
                }
                let distance =
                    usize::from(DIST_BASE[d]) + r.bits(u32::from(DIST_EXTRA[d]))? as usize;
                if distance > out.len() {
                    return Err("back-reference before stream start".to_owned());
                }
                let start = out.len() - distance;
                // Overlapping copies are the point (run-length encoding).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => return Err(format!("invalid literal/length symbol {other}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Deflate (fixed-Huffman encoder with greedy hash-chain LZ77)
// ---------------------------------------------------------------------------

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Longest hash chain walked per position; bounds worst-case encode time.
const MAX_CHAIN: usize = 48;

fn hash3(data: &[u8], i: usize) -> usize {
    let h = (u32::from(data[i]) << 16) ^ (u32::from(data[i + 1]) << 8) ^ u32::from(data[i + 2]);
    (h.wrapping_mul(2654435761) >> 17) as usize & 0x7FFF
}

/// Compresses `data` into a raw DEFLATE stream (one fixed-Huffman block).
#[must_use]
pub fn deflate(data: &[u8]) -> Vec<u8> {
    let lit_lengths = fixed_lit_lengths();
    let lit_codes = canonical_codes(&lit_lengths);
    let mut w = BitWriter::default();
    w.put(1, 1); // final block
    w.put(1, 2); // fixed Huffman
    let put_lit = |w: &mut BitWriter, sym: usize| {
        w.put_code(lit_codes[sym], u32::from(lit_lengths[sym]));
    };

    let mut head = vec![usize::MAX; 0x8000];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let mut cand = head[hash3(data, i)];
            let mut chain = 0usize;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if best_len >= MIN_MATCH {
            // Length symbol + extra bits.
            let li = LEN_BASE
                .iter()
                .rposition(|&b| usize::from(b) <= best_len)
                .expect("len >= 3");
            put_lit(&mut w, 257 + li);
            w.put(
                (best_len - usize::from(LEN_BASE[li])) as u32,
                u32::from(LEN_EXTRA[li]),
            );
            // Distance symbol (5-bit fixed code) + extra bits.
            let di = DIST_BASE
                .iter()
                .rposition(|&b| usize::from(b) <= best_dist)
                .expect("dist >= 1");
            w.put_code(di as u32, 5);
            w.put(
                (best_dist - usize::from(DIST_BASE[di])) as u32,
                u32::from(DIST_EXTRA[di]),
            );
            // Insert every covered position into the hash chains.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for (off, slot) in prev[i..end].iter_mut().enumerate() {
                let h = hash3(data, i + off);
                *slot = head[h];
                head[h] = i + off;
            }
            i += best_len;
        } else {
            put_lit(&mut w, usize::from(data[i]));
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    put_lit(&mut w, 256); // end of block
    w.finish()
}

// ---------------------------------------------------------------------------
// gzip / zlib framing
// ---------------------------------------------------------------------------

/// Wraps [`deflate`] output in a gzip member (RFC 1952).
#[must_use]
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF];
    out.extend_from_slice(&deflate(data));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Unwraps a gzip member and inflates it, verifying CRC32 and length.
///
/// # Errors
///
/// Returns a description of the first framing or checksum failure.
pub fn gzip_decompress(stream: &[u8]) -> Result<Vec<u8>, String> {
    if stream.len() < 18 {
        return Err("gzip stream shorter than header + trailer".to_owned());
    }
    if stream[0] != 0x1F || stream[1] != 0x8B {
        return Err("bad gzip magic".to_owned());
    }
    if stream[2] != 8 {
        return Err(format!("unsupported gzip method {}", stream[2]));
    }
    let flags = stream[3];
    let mut pos = 10usize;
    if flags & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > stream.len() {
            return Err("gzip FEXTRA truncated".to_owned());
        }
        let xlen = usize::from(stream[pos]) | (usize::from(stream[pos + 1]) << 8);
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flags & flag != 0 {
            while *stream.get(pos).ok_or("gzip name/comment truncated")? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flags & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > stream.len() {
        return Err("gzip stream truncated".to_owned());
    }
    let body = &stream[pos..stream.len() - 8];
    let out = inflate(body)?;
    let trailer = &stream[stream.len() - 8..];
    let want_crc = u32::from_le_bytes(trailer[0..4].try_into().expect("4 bytes"));
    let want_len = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes"));
    if crc32(&out) != want_crc {
        return Err("gzip CRC32 mismatch".to_owned());
    }
    if out.len() as u32 != want_len {
        return Err("gzip ISIZE mismatch".to_owned());
    }
    Ok(out)
}

/// Wraps [`deflate`] output in a zlib stream (RFC 1950).
#[must_use]
pub fn zlib_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x78, 0x9C];
    out.extend_from_slice(&deflate(data));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Unwraps a zlib stream and inflates it, verifying the Adler32.
///
/// # Errors
///
/// Returns a description of the first framing or checksum failure.
pub fn zlib_decompress(stream: &[u8]) -> Result<Vec<u8>, String> {
    if stream.len() < 6 {
        return Err("zlib stream shorter than header + trailer".to_owned());
    }
    let cmf = stream[0];
    let flg = stream[1];
    if cmf & 0x0F != 8 {
        return Err(format!("unsupported zlib method {}", cmf & 0x0F));
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err("zlib header check failed".to_owned());
    }
    if flg & 0x20 != 0 {
        return Err("zlib preset dictionaries unsupported".to_owned());
    }
    let out = inflate(&stream[2..stream.len() - 4])?;
    let want = u32::from_be_bytes(stream[stream.len() - 4..].try_into().expect("4 bytes"));
    if adler32(&out) != want {
        return Err("zlib Adler32 mismatch".to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i / 7) % 251) as u8).collect()
    }

    fn patterned_f64(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i % 97) as f64).mul_add(0.25, -11.0))
            .collect()
    }

    #[test]
    fn crc32_and_adler32_match_known_vectors() {
        // Standard check values for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(adler32(b"123456789"), 0x091E_01DE);
        assert_eq!(crc32(b""), 0);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn shuffle_roundtrips_and_groups_lanes() {
        let bytes: Vec<u8> = (0..64).collect();
        let s = shuffle(&bytes, 8);
        // First lane of the shuffle holds byte 0 of each element.
        assert_eq!(&s[0..8], &[0, 8, 16, 24, 32, 40, 48, 56]);
        assert_eq!(unshuffle(&s, 8), bytes);
        // Non-multiple tails pass through.
        let odd: Vec<u8> = (0..21).collect();
        assert_eq!(unshuffle(&shuffle(&odd, 8), 8), odd);
    }

    #[test]
    fn deflate_roundtrips_all_shapes() {
        for data in [
            Vec::new(),
            vec![42u8],
            b"abcabcabcabcabcabc".to_vec(),
            patterned(10_000),
            (0..=255u8).cycle().take(4096).collect(),
        ] {
            let packed = deflate(&data);
            assert_eq!(
                inflate(&packed).expect("inflates"),
                data,
                "len {}",
                data.len()
            );
        }
    }

    #[test]
    fn deflate_actually_compresses_patterned_data() {
        let data = patterned(32 * 1024);
        let packed = deflate(&data);
        assert!(
            packed.len() * 4 < data.len(),
            "expected >=4x on run-heavy data, got {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn inflate_handles_stored_blocks() {
        // Hand-assembled stored block: BFINAL=1, BTYPE=00, then LEN/NLEN.
        let payload = b"stored bytes";
        let mut raw = vec![0x01u8];
        raw.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        raw.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        raw.extend_from_slice(payload);
        assert_eq!(inflate(&raw).expect("inflates"), payload);
    }

    #[test]
    fn inflate_handles_dynamic_huffman_blocks() {
        // Assemble a dynamic-Huffman block with the encoder's own bit
        // writer: literals 0..=255 at length 9, end-of-block at length 1,
        // one (unused) distance code.
        let mut lengths = vec![9u8; 257];
        lengths[256] = 1;
        let codes = canonical_codes(&lengths);
        let mut w = BitWriter::default();
        w.put(1, 1); // final
        w.put(2, 2); // dynamic
        w.put(0, 5); // HLIT = 257
        w.put(0, 5); // HDIST = 1
        w.put(15, 4); // HCLEN = 19
                      // Code-length code: length 9 -> 2 bits, 1 -> 2 bits, 16 -> 2 bits.
        let mut cl_lengths = [0u8; 19];
        cl_lengths[9] = 2;
        cl_lengths[1] = 2;
        cl_lengths[16] = 2;
        for &pos in CLCL_ORDER.iter() {
            w.put(u32::from(cl_lengths[pos]), 3);
        }
        let cl_codes = canonical_codes(&cl_lengths);
        // 256 nines: one literal 9, then repeat(16) in runs of 6.
        w.put_code(cl_codes[9], 2);
        let mut emitted = 1usize;
        while emitted < 256 {
            let run = (256 - emitted).clamp(3, 6);
            w.put_code(cl_codes[16], 2);
            w.put((run - 3) as u32, 2);
            emitted += run;
        }
        w.put_code(cl_codes[1], 2); // EOB length 1
        w.put_code(cl_codes[1], 2); // the single distance code, length 1
                                    // Body: the message as 9-bit literals, then EOB.
        let message = b"dynamic block";
        for &b in message {
            w.put_code(codes[usize::from(b)], 9);
        }
        w.put_code(codes[256], 1);
        assert_eq!(inflate(&w.finish()).expect("inflates"), message);
    }

    #[test]
    fn inflate_rejects_corruption() {
        let good = deflate(b"hello hello hello hello");
        let mut bad = good.clone();
        bad[0] ^= 0x02; // block type
        assert!(inflate(&bad).is_err() || inflate(&bad).expect("ok") != b"hello hello hello hello");
        assert!(inflate(&[]).is_err());
    }

    #[test]
    fn gzip_roundtrips_and_verifies() {
        let data = patterned(5000);
        let z = gzip_compress(&data);
        assert_eq!(&z[0..2], &[0x1F, 0x8B]);
        assert_eq!(gzip_decompress(&z).expect("decompresses"), data);
        let mut corrupt = z.clone();
        let n = corrupt.len();
        corrupt[n - 2] ^= 0xFF; // ISIZE
        assert!(gzip_decompress(&corrupt).is_err());
        let mut crc_bad = z;
        let n = crc_bad.len();
        crc_bad[n - 6] ^= 0xFF; // CRC32
        assert!(gzip_decompress(&crc_bad).is_err());
    }

    #[test]
    fn zlib_roundtrips_and_verifies() {
        let data = patterned(5000);
        let z = zlib_compress(&data);
        assert_eq!((u16::from(z[0]) * 256 + u16::from(z[1])) % 31, 0);
        assert_eq!(zlib_decompress(&z).expect("decompresses"), data);
        let mut corrupt = z;
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xFF; // Adler32
        assert!(zlib_decompress(&corrupt).is_err());
    }

    #[test]
    fn encoding_roundtrips_every_axis() {
        let data = patterned_f64(4096);
        for codec in [Codec::Gzip, Codec::Zlib, Codec::None] {
            for shuffle in [false, true] {
                for byte_order in [ByteOrder::Little, ByteOrder::Big] {
                    let enc = Encoding {
                        codec,
                        shuffle,
                        byte_order,
                        fill_value: None,
                    };
                    let packed = enc.encode(&data);
                    let back = enc.decode(&packed).expect("decodes");
                    assert_eq!(back, data, "{enc:?}");
                }
            }
        }
    }

    #[test]
    fn fill_values_mask_to_zero() {
        let enc = Encoding {
            fill_value: Some(-9999.0),
            ..Encoding::gzip_shuffled()
        };
        let data = vec![1.0, -9999.0, 2.5, -9999.0, -3.0];
        let back = enc.decode(&enc.encode(&data)).expect("decodes");
        assert_eq!(back, vec![1.0, 0.0, 2.5, 0.0, -3.0]);
        // NaN sentinels compare by bit pattern.
        let nan_enc = Encoding {
            fill_value: Some(f64::NAN),
            ..Encoding::raw()
        };
        let back = nan_enc
            .decode(&nan_enc.encode(&[1.0, f64::NAN, 2.0]))
            .expect("decodes");
        assert_eq!(back, vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn shuffled_gzip_beats_plain_gzip_on_patterned_f64() {
        let data = patterned_f64(4096);
        let plain = Encoding {
            shuffle: false,
            ..Encoding::gzip_shuffled()
        };
        let shuffled = Encoding::gzip_shuffled();
        let plain_len = plain.encode(&data).len();
        let shuffled_len = shuffled.encode(&data).len();
        assert!(
            shuffled_len < plain_len,
            "shuffle must improve the ratio: {shuffled_len} vs {plain_len}"
        );
        // And both genuinely compress the 32 KiB payload.
        assert!(shuffled_len * 3 < data.len() * 8);
    }

    #[test]
    fn fingerprints_split_on_every_field() {
        let base = Encoding::gzip_shuffled();
        let variants = [
            Encoding {
                codec: Codec::Zlib,
                ..base
            },
            Encoding {
                codec: Codec::None,
                ..base
            },
            Encoding {
                shuffle: false,
                ..base
            },
            Encoding {
                byte_order: ByteOrder::Big,
                ..base
            },
            Encoding {
                fill_value: Some(0.0),
                ..base
            },
            Encoding {
                fill_value: Some(-9999.0),
                ..base
            },
        ];
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.fingerprint());
        for v in variants {
            assert!(seen.insert(v.fingerprint()), "collision for {v:?}");
        }
        // Deterministic across calls.
        assert_eq!(base.fingerprint(), Encoding::gzip_shuffled().fingerprint());
    }

    #[test]
    fn encode_is_deterministic() {
        let data = patterned_f64(2048);
        let enc = Encoding::gzip_shuffled();
        assert_eq!(enc.encode(&data), enc.encode(&data));
    }
}
