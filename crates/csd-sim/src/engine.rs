//! Compute engines: the host CPU and the computational storage engine (CSE).
//!
//! Both engines are modelled as aggregate operation servers: `cores ×
//! per-core rate × parallel efficiency`, throttled by an
//! [`AvailabilityTrace`]. This captures the paper's two essential facts
//! (§II-B1): the CSE is *slower* than the host CPU, and its availability to
//! the ISP task can change at run time.

use crate::availability::AvailabilityTrace;
use crate::counters::PerfCounters;
use crate::units::{Duration, OpRate, Ops, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which compute engine a task (or a line of code) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The host computer's CPU.
    Host,
    /// The computational storage engine inside the CSD.
    Cse,
}

impl EngineKind {
    /// The opposite engine (migration target).
    #[must_use]
    pub fn other(self) -> EngineKind {
        match self {
            EngineKind::Host => EngineKind::Cse,
            EngineKind::Cse => EngineKind::Host,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Host => write!(f, "host"),
            EngineKind::Cse => write!(f, "cse"),
        }
    }
}

/// Static description of a compute engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSpec {
    /// Which engine this is.
    pub kind: EngineKind,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
    /// Sustained instructions (abstract ops) per cycle per core.
    pub ipc: f64,
    /// Number of cores.
    pub cores: u32,
    /// Fraction of ideal linear speedup the core count achieves on the
    /// data-parallel kernels the workloads use.
    pub parallel_efficiency: f64,
}

impl EngineSpec {
    /// Aggregate nominal throughput of the engine.
    ///
    /// # Panics
    ///
    /// Panics if the spec describes a non-positive rate.
    #[must_use]
    pub fn nominal_rate(&self) -> OpRate {
        OpRate::from_ops_per_sec(
            self.freq_hz * self.ipc * f64::from(self.cores) * self.parallel_efficiency,
        )
    }
}

/// A compute engine instance: spec + availability + counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeEngine {
    spec: EngineSpec,
    availability: AvailabilityTrace,
    fault: AvailabilityTrace,
    counters: PerfCounters,
}

impl ComputeEngine {
    /// Creates an engine with full availability.
    #[must_use]
    pub fn new(spec: EngineSpec) -> Self {
        ComputeEngine {
            spec,
            availability: AvailabilityTrace::full(),
            fault: AvailabilityTrace::full(),
            counters: PerfCounters::new(),
        }
    }

    /// The engine's static description.
    #[must_use]
    pub fn spec(&self) -> &EngineSpec {
        &self.spec
    }

    /// The engine's aggregate nominal throughput.
    #[must_use]
    pub fn nominal_rate(&self) -> OpRate {
        self.spec.nominal_rate()
    }

    /// The availability trace currently in force.
    #[must_use]
    pub fn availability(&self) -> &AvailabilityTrace {
        &self.availability
    }

    /// Replaces the availability trace (e.g. when a contention scenario
    /// triggers).
    pub fn set_availability(&mut self, trace: AvailabilityTrace) {
        self.availability = trace;
    }

    /// Degrades availability to `fraction` from time `at` onward.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn degrade_from(&mut self, at: SimTime, fraction: f64) {
        self.availability = self.availability.clone().with_change(at, fraction);
    }

    /// Installs an injected-fault availability trace (e.g. GC bursts from
    /// a fault plan). Kept separate from the contention trace because
    /// contention scenarios replace that trace wholesale mid-run; the two
    /// compose multiplicatively at query time.
    pub fn install_fault_trace(&mut self, trace: AvailabilityTrace) {
        self.fault = trace;
    }

    /// The injected-fault trace currently in force (full when no faults
    /// are installed).
    #[must_use]
    pub fn fault_trace(&self) -> &AvailabilityTrace {
        &self.fault
    }

    /// The fraction of the engine available to the ISP task at `t`:
    /// contention and injected-fault traces composed multiplicatively,
    /// exactly as [`ComputeEngine::time_to_execute`] charges them. This is
    /// what a reclaim decision probes when asking "has the device
    /// recovered?".
    #[must_use]
    pub fn effective_fraction_at(&self, t: SimTime) -> f64 {
        self.availability.fraction_at(t) * self.fault.fraction_at(t)
    }

    /// Wall-clock time to retire `ops` when starting at `start`, under the
    /// current availability trace. Does **not** record counters; use
    /// [`ComputeEngine::execute`] for that.
    #[must_use]
    pub fn time_to_execute(&self, start: SimTime, ops: Ops) -> Duration {
        let effective_secs = self.nominal_rate().execute_time(ops).as_secs();
        if self.fault.is_full() {
            self.availability.invert(start, effective_secs)
        } else {
            self.availability
                .product(&self.fault)
                .invert(start, effective_secs)
        }
    }

    /// Executes `ops` starting at `start`: returns the wall-clock duration
    /// and records it in the performance counters.
    pub fn execute(&mut self, start: SimTime, ops: Ops) -> Duration {
        let wall = self.time_to_execute(start, ops);
        self.counters.record(ops, wall);
        wall
    }

    /// The engine's performance counters.
    #[must_use]
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Resets the performance counters (a new program run).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }
}

/// How far an empirically measured parallel efficiency may sit from a
/// modelled [`EngineSpec::parallel_efficiency`] before the scaling sweep
/// flags the model as miscalibrated.
///
/// The band is deliberately wide: the modelled constants describe the
/// paper's testbed (8× A72 CSE cores, 8 desktop host cores), while the
/// repro's worker pool measures whatever machine the bench runs on — a
/// single-core CI box legitimately measures an efficiency of 1.0 at its
/// best thread count of 1, which must still sit within the band of the
/// CSE's modelled 0.85.
pub const PARALLEL_EFFICIENCY_TOLERANCE: f64 = 0.45;

/// Whether `empirical` parallel efficiency is consistent with a `modelled`
/// [`EngineSpec::parallel_efficiency`], within
/// [`PARALLEL_EFFICIENCY_TOLERANCE`].
#[must_use]
pub fn efficiency_within_band(modelled: f64, empirical: f64) -> bool {
    (modelled - empirical).abs() <= PARALLEL_EFFICIENCY_TOLERANCE
}

/// Default host CPU matching the paper's testbed: an octa-core AMD Ryzen 7
/// 3700X at 3.6 GHz (§IV-A). The parallel efficiency is deliberately low:
/// the Table-I workloads are streaming kernels, and eight desktop cores
/// contending for DRAM bandwidth fall well short of linear scaling.
#[must_use]
pub fn default_host_spec() -> EngineSpec {
    EngineSpec {
        kind: EngineKind::Host,
        freq_hz: 3.6e9,
        ipc: 2.0,
        cores: 8,
        parallel_efficiency: 0.5,
    }
}

/// Default CSE matching the paper's prototype: an SoC with 8 ARM Cortex-A72
/// cores (§IV-A). The aggregate rate makes the CSE just under 2× slower
/// than the host, consistent with the paper's observation that "the
/// computation on the CSE is slower than the host CPU" while the rich
/// internal fabric keeps its cores fed — the gain comes mainly from reduced
/// data volume, but modest offload profits exist across the workload suite
/// (Figure 4's 1.33× average).
#[must_use]
pub fn default_cse_spec() -> EngineSpec {
    EngineSpec {
        kind: EngineKind::Cse,
        freq_hz: 1.6e9,
        ipc: 1.5,
        cores: 8,
        parallel_efficiency: 0.85,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_rate_multiplies_out() {
        let spec = EngineSpec {
            kind: EngineKind::Host,
            freq_hz: 1e9,
            ipc: 2.0,
            cores: 4,
            parallel_efficiency: 0.5,
        };
        assert!((spec.nominal_rate().as_ops_per_sec() - 4e9).abs() < 1.0);
    }

    #[test]
    fn cse_is_slower_than_host() {
        let host = default_host_spec().nominal_rate().as_ops_per_sec();
        let cse = default_cse_spec().nominal_rate().as_ops_per_sec();
        assert!(cse < host, "cse {cse} must be slower than host {host}");
        let ratio = host / cse;
        assert!(
            ratio > 1.2 && ratio < 6.0,
            "slowdown ratio {ratio} out of plausible range"
        );
    }

    #[test]
    fn execute_records_counters() {
        let mut eng = ComputeEngine::new(default_host_spec());
        let wall = eng.execute(SimTime::ZERO, Ops::new(1_000_000_000));
        assert!(wall.as_secs() > 0.0);
        assert_eq!(eng.counters().retired(), Ops::new(1_000_000_000));
        assert!((eng.counters().busy().as_secs() - wall.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn degraded_engine_takes_proportionally_longer() {
        let mut eng = ComputeEngine::new(default_cse_spec());
        let base = eng.time_to_execute(SimTime::ZERO, Ops::new(1_000_000_000));
        eng.degrade_from(SimTime::ZERO, 0.1);
        let slow = eng.time_to_execute(SimTime::ZERO, Ops::new(1_000_000_000));
        assert!((slow.as_secs() / base.as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn degradation_mid_run_only_affects_tail() {
        let mut eng = ComputeEngine::new(default_cse_spec());
        let rate = eng.nominal_rate().as_ops_per_sec();
        // Work that would take exactly 2s at full rate.
        let ops = Ops::new((rate * 2.0) as u64);
        eng.degrade_from(SimTime::from_secs(1.0), 0.5);
        let wall = eng.time_to_execute(SimTime::ZERO, ops);
        // 1s at full + 1s of effective work at 50% = 1 + 2 = 3s.
        assert!(
            (wall.as_secs() - 3.0).abs() < 1e-6,
            "got {}",
            wall.as_secs()
        );
    }

    #[test]
    fn achieved_ipc_reflects_contention() {
        let mut eng = ComputeEngine::new(default_cse_spec());
        eng.degrade_from(SimTime::ZERO, 0.25);
        eng.execute(SimTime::ZERO, Ops::new(1_000_000_000));
        let nominal_ipc =
            eng.spec().ipc * f64::from(eng.spec().cores) * eng.spec().parallel_efficiency;
        let measured = eng.counters().ipc(eng.spec().freq_hz).expect("ipc");
        assert!((measured / nominal_ipc - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fault_trace_composes_with_contention() {
        let mut eng = ComputeEngine::new(default_cse_spec());
        let base = eng.time_to_execute(SimTime::ZERO, Ops::new(1_000_000_000));
        eng.degrade_from(SimTime::ZERO, 0.5);
        eng.install_fault_trace(AvailabilityTrace::constant(0.5));
        let slow = eng.time_to_execute(SimTime::ZERO, Ops::new(1_000_000_000));
        assert!((slow.as_secs() / base.as_secs() - 4.0).abs() < 1e-6);
        // Removing the fault trace restores pure contention timing.
        eng.install_fault_trace(AvailabilityTrace::full());
        let contended = eng.time_to_execute(SimTime::ZERO, Ops::new(1_000_000_000));
        assert!((contended.as_secs() / base.as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn efficiency_band_accepts_plausible_measurements() {
        let modelled = default_cse_spec().parallel_efficiency;
        // An 8-core machine hitting ~70% of linear, and a single-core box
        // measuring a trivially perfect 1.0, both calibrate.
        assert!(efficiency_within_band(modelled, 0.70));
        assert!(efficiency_within_band(modelled, 1.0));
        // A pool losing most of its speedup to contention does not.
        assert!(!efficiency_within_band(modelled, 0.2));
    }

    #[test]
    fn engine_kind_other_flips() {
        assert_eq!(EngineKind::Host.other(), EngineKind::Cse);
        assert_eq!(EngineKind::Cse.other(), EngineKind::Host);
    }
}
