//! System configuration and builder.
//!
//! [`SystemConfig::paper_default`] reproduces the testbed of §IV-A: an
//! octa-core 3.6 GHz host, a CSD with 8 ARM Cortex-A72 cores and 2 TB of
//! flash, 9 GB/s internal NAND bandwidth, a 5 GB/s NVMe host link, and a
//! PCIe 3.0 hub giving storage traffic 4 GB/s. All parameters can be
//! overridden through the builder-style `with_*` methods.

use crate::dma::DmaEngine;
use crate::engine::{default_cse_spec, default_host_spec, ComputeEngine, EngineSpec};
use crate::flash::{FlashArray, GcSchedule};
use crate::link::{Link, Path};
use crate::memory::SharedAddressSpace;
use crate::nvme::{QueueLatencies, QueuePair};
use crate::system::System;
use crate::units::{Bandwidth, Bytes, Duration};
use serde::{Deserialize, Serialize};

/// Complete static description of the simulated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Host CPU description.
    pub host: EngineSpec,
    /// CSE description.
    pub cse: EngineSpec,
    /// Flash capacity.
    pub flash_capacity: Bytes,
    /// Internal NAND bandwidth seen by the CSE.
    pub flash_internal_bandwidth: Bandwidth,
    /// Optional background garbage collection.
    pub gc: Option<GcSchedule>,
    /// NVMe link bandwidth between CSD and host.
    pub nvme_bandwidth: Bandwidth,
    /// NVMe per-message latency.
    pub nvme_latency: Duration,
    /// PCIe hub bandwidth budget for storage traffic.
    pub pcie_bandwidth: Bandwidth,
    /// PCIe per-message latency.
    pub pcie_latency: Duration,
    /// Queue-pair latencies.
    pub queue_latencies: QueueLatencies,
    /// Queue-pair ring depth.
    pub queue_depth: usize,
    /// Host DRAM capacity.
    pub host_dram: Bytes,
    /// Device DRAM capacity.
    pub device_dram: Bytes,
    /// Per-descriptor DMA setup cost.
    pub dma_setup: Duration,
}

impl SystemConfig {
    /// The paper's experimental platform (§IV-A).
    #[must_use]
    pub fn paper_default() -> Self {
        SystemConfig {
            host: default_host_spec(),
            cse: default_cse_spec(),
            flash_capacity: Bytes::from_gib(2048),
            flash_internal_bandwidth: Bandwidth::from_gb_per_sec(9.0),
            gc: None,
            nvme_bandwidth: Bandwidth::from_gb_per_sec(5.0),
            nvme_latency: Duration::from_micros(5.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(4.0),
            pcie_latency: Duration::from_micros(1.0),
            queue_latencies: QueueLatencies::default(),
            queue_depth: 64,
            host_dram: Bytes::from_gib(64),
            device_dram: Bytes::from_gib(16),
            dma_setup: Duration::from_micros(1.0),
        }
    }

    /// An NVMe-over-Fabrics attachment (§III-C0a): the CSD sits across a
    /// 25 GbE RDMA fabric instead of a local PCIe slot, so the effective
    /// device-to-host budget drops to ≈3 GB/s and per-message latency
    /// rises an order of magnitude. The CSD maps its internal memory into
    /// the host's address space over the same RDMA infrastructure NVMe-oF
    /// already uses, so the programming model is unchanged — only the
    /// Eq. 1 trade-offs shift (and ActivePy's assignments shift with
    /// them).
    #[must_use]
    pub fn nvmeof_default() -> Self {
        SystemConfig {
            nvme_latency: Duration::from_micros(30.0),
            pcie_bandwidth: Bandwidth::from_gb_per_sec(3.0),
            pcie_latency: Duration::from_micros(15.0),
            ..SystemConfig::paper_default()
        }
    }

    /// Replaces the host spec.
    #[must_use]
    pub fn with_host(mut self, host: EngineSpec) -> Self {
        self.host = host;
        self
    }

    /// Replaces the CSE spec.
    #[must_use]
    pub fn with_cse(mut self, cse: EngineSpec) -> Self {
        self.cse = cse;
        self
    }

    /// Installs a garbage-collection schedule.
    #[must_use]
    pub fn with_gc(mut self, gc: GcSchedule) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Replaces the internal NAND bandwidth.
    #[must_use]
    pub fn with_flash_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.flash_internal_bandwidth = bw;
        self
    }

    /// Replaces the NVMe link bandwidth.
    #[must_use]
    pub fn with_nvme_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.nvme_bandwidth = bw;
        self
    }

    /// Replaces the PCIe budget.
    #[must_use]
    pub fn with_pcie_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.pcie_bandwidth = bw;
        self
    }

    /// Replaces the queue latencies.
    #[must_use]
    pub fn with_queue_latencies(mut self, latencies: QueueLatencies) -> Self {
        self.queue_latencies = latencies;
        self
    }

    /// The device-to-host path crossing NVMe then PCIe.
    #[must_use]
    pub fn d2h_path(&self) -> Path {
        Path::new(vec![
            Link::new("nvme", self.nvme_bandwidth, self.nvme_latency),
            Link::new("pcie", self.pcie_bandwidth, self.pcie_latency),
        ])
    }

    /// The effective device-to-host bandwidth (`BW_D2H` in Eq. 1): the
    /// bottleneck of the NVMe link and the PCIe budget.
    #[must_use]
    pub fn d2h_bandwidth(&self) -> Bandwidth {
        self.nvme_bandwidth.min(self.pcie_bandwidth)
    }

    /// Effective bandwidth at which the *host* streams raw data out of the
    /// CSD's storage: bottleneck of flash, NVMe, and PCIe.
    #[must_use]
    pub fn host_storage_bandwidth(&self) -> Bandwidth {
        self.flash_internal_bandwidth.min(self.d2h_bandwidth())
    }

    /// Builds a runnable [`System`].
    #[must_use]
    pub fn build(&self) -> System {
        let mut flash = FlashArray::new(self.flash_capacity, self.flash_internal_bandwidth);
        if let Some(gc) = self.gc {
            flash.set_gc(gc);
        }
        System::from_parts(
            self.clone(),
            ComputeEngine::new(self.host),
            ComputeEngine::new(self.cse),
            flash,
            self.d2h_path(),
            QueuePair::new(self.queue_depth, self.queue_latencies),
            DmaEngine::new(self.dma_setup),
            SharedAddressSpace::new(self.host_dram, self.device_dram),
        )
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv() {
        let c = SystemConfig::paper_default();
        assert!((c.flash_internal_bandwidth.as_bytes_per_sec() - 9e9).abs() < 1.0);
        assert!((c.nvme_bandwidth.as_bytes_per_sec() - 5e9).abs() < 1.0);
        assert_eq!(c.cse.cores, 8);
        assert_eq!(c.host.cores, 8);
        assert!((c.host.freq_hz - 3.6e9).abs() < 1.0);
    }

    #[test]
    fn d2h_bandwidth_is_bottleneck() {
        let c = SystemConfig::paper_default();
        assert!((c.d2h_bandwidth().as_bytes_per_sec() - 4e9).abs() < 1.0);
        // Internal bandwidth is richer than external: the ISP premise.
        assert!(
            c.flash_internal_bandwidth.as_bytes_per_sec() > c.d2h_bandwidth().as_bytes_per_sec()
        );
    }

    #[test]
    fn builder_overrides_apply() {
        let c = SystemConfig::paper_default()
            .with_nvme_bandwidth(Bandwidth::from_gb_per_sec(2.0))
            .with_pcie_bandwidth(Bandwidth::from_gb_per_sec(8.0));
        assert!((c.d2h_bandwidth().as_bytes_per_sec() - 2e9).abs() < 1.0);
    }

    #[test]
    fn nvmeof_narrows_the_external_path() {
        let local = SystemConfig::paper_default();
        let fabric = SystemConfig::nvmeof_default();
        assert!(
            fabric.d2h_bandwidth().as_bytes_per_sec() < local.d2h_bandwidth().as_bytes_per_sec()
        );
        assert!(fabric.nvme_latency > local.nvme_latency);
        // The internal side is untouched: the ISP premise strengthens.
        assert_eq!(
            fabric.flash_internal_bandwidth,
            local.flash_internal_bandwidth
        );
    }

    #[test]
    fn build_produces_consistent_system() {
        let sys = SystemConfig::paper_default().build();
        assert_eq!(sys.config().queue_depth, 64);
        assert!((sys.flash().internal_bandwidth().as_bytes_per_sec() - 9e9).abs() < 1.0);
    }
}
