//! Strongly-typed physical units used throughout the simulator.
//!
//! All simulated quantities are carried in newtypes so that seconds, bytes,
//! operation counts, and rates cannot be confused ([C-NEWTYPE]). Arithmetic
//! between compatible units is provided through `std::ops` impls; dimensioned
//! division (e.g. [`Bytes`] / [`Bandwidth`] = [`Duration`]) is provided where
//! it is physically meaningful.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point on the simulated timeline, in seconds since simulation
/// start.
///
/// ```
/// use csd_sim::units::{Duration, SimTime};
/// let t = SimTime::ZERO + Duration::from_secs(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point `secs` seconds after simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "sim time must be finite and non-negative"
        );
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two time points.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two time points.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        assert!(
            self.0 >= earlier.0,
            "duration_since: {earlier:?} is later than {self:?}"
        );
        Duration(self.0 - earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// A span of simulated time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        Duration(secs)
    }

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub fn from_micros(micros: f64) -> Self {
        Duration::from_secs(micros * 1e-6)
    }

    /// Creates a duration of `nanos` nanoseconds.
    #[must_use]
    pub fn from_nanos(nanos: f64) -> Self {
        Duration::from_secs(nanos * 1e-9)
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The longer of two spans.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Whether this span is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 / rhs)
    }
}

impl Div for Duration {
    /// Dimensionless ratio of two spans.
    type Output = f64;
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

/// A count of bytes (data volume).
///
/// The simulator distinguishes *virtual* bytes (paper-scale data volumes from
/// Table I) from the much smaller in-memory arrays the workloads actually
/// allocate; both are represented as `Bytes`, and the scaling is applied by
/// the profiling layer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// Creates a byte count from kibibytes.
    #[must_use]
    pub const fn from_kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a byte count from mebibytes.
    #[must_use]
    pub const fn from_mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Creates a byte count from gibibytes.
    #[must_use]
    pub const fn from_gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Creates a byte count from a fractional gigabyte figure as printed in
    /// the paper's Table I (e.g. `9.1` GB for blackscholes).
    #[must_use]
    pub fn from_gb_f64(gb: f64) -> Self {
        assert!(
            gb.is_finite() && gb >= 0.0,
            "byte count must be non-negative"
        );
        Bytes((gb * 1e9).round() as u64)
    }

    /// The raw count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The count as a float, for rate arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scales the count by a (non-negative) factor, rounding to the nearest
    /// byte.
    #[must_use]
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0 as f64;
        if n >= 1e9 {
            write!(f, "{:.2}GB", n / 1e9)
        } else if n >= 1e6 {
            write!(f, "{:.2}MB", n / 1e6)
        } else if n >= 1e3 {
            write!(f, "{:.2}KB", n / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = Duration;
    fn div(self, rhs: Bandwidth) -> Duration {
        rhs.transfer_time(self)
    }
}

/// A count of abstract compute operations (the simulator's stand-in for
/// retired instructions).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ops(u64);

impl Ops {
    /// Zero operations.
    pub const ZERO: Ops = Ops(0);

    /// Creates an operation count.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Ops(n)
    }

    /// The raw count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The count as a float, for rate arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Scales the count by a (non-negative) factor, rounding to the nearest
    /// operation.
    #[must_use]
    pub fn scale(self, factor: f64) -> Ops {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative"
        );
        Ops((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Ops) -> Ops {
        Ops(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Ops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ops", self.0)
    }
}

impl Add for Ops {
    type Output = Ops;
    fn add(self, rhs: Ops) -> Ops {
        Ops(self.0 + rhs.0)
    }
}

impl AddAssign for Ops {
    fn add_assign(&mut self, rhs: Ops) {
        self.0 += rhs.0;
    }
}

impl Sum for Ops {
    fn sum<I: Iterator<Item = Ops>>(iter: I) -> Ops {
        iter.fold(Ops::ZERO, Add::add)
    }
}

/// A data-transfer rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth of `bps` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not finite and strictly positive.
    #[must_use]
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "bandwidth must be positive, got {bps}"
        );
        Bandwidth(bps)
    }

    /// Creates a bandwidth of `gbps` gigabytes (1e9 bytes) per second, as the
    /// paper quotes link speeds.
    #[must_use]
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gbps * 1e9)
    }

    /// Bytes per second.
    #[must_use]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time needed to move `bytes` at this rate (excluding latency).
    #[must_use]
    pub fn transfer_time(self, bytes: Bytes) -> Duration {
        Duration::from_secs(bytes.as_f64() / self.0)
    }

    /// The smaller of two rates, e.g. for a path across two links.
    #[must_use]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Scales the rate by a positive factor (e.g. availability).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.0 * factor)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.0 / 1e9)
    }
}

/// A compute throughput in abstract operations per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OpRate(f64);

impl OpRate {
    /// Creates a rate of `ops_per_sec` operations per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and strictly positive.
    #[must_use]
    pub fn from_ops_per_sec(ops_per_sec: f64) -> Self {
        assert!(
            ops_per_sec.is_finite() && ops_per_sec > 0.0,
            "op rate must be positive, got {ops_per_sec}"
        );
        OpRate(ops_per_sec)
    }

    /// Rate implied by a clock frequency and an IPC figure.
    #[must_use]
    pub fn from_freq_ipc(freq_hz: f64, ipc: f64) -> Self {
        OpRate::from_ops_per_sec(freq_hz * ipc)
    }

    /// Operations per second.
    #[must_use]
    pub fn as_ops_per_sec(self) -> f64 {
        self.0
    }

    /// Time needed to retire `ops` at this rate.
    #[must_use]
    pub fn execute_time(self, ops: Ops) -> Duration {
        Duration::from_secs(ops.as_f64() / self.0)
    }

    /// Scales the rate by a positive factor (e.g. availability).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn scale(self, factor: f64) -> OpRate {
        OpRate::from_ops_per_sec(self.0 * factor)
    }

    /// Dimensionless ratio of two rates (`self / other`).
    #[must_use]
    pub fn ratio(self, other: OpRate) -> f64 {
        self.0 / other.0
    }
}

impl fmt::Display for OpRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gops/s", self.0 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_secs(2.0) + Duration::from_secs(0.5);
        assert!((t.as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.5);
        assert!((b.duration_since(a).as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "later")]
    fn duration_since_rejects_reversed_order() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        let _ = a.duration_since(b);
    }

    #[test]
    fn duration_subtraction_saturates_at_zero() {
        let d = Duration::from_secs(1.0) - Duration::from_secs(2.0);
        assert!(d.is_zero());
    }

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1024 * 1024 * 1024);
        assert_eq!(Bytes::from_gb_f64(9.1).as_u64(), 9_100_000_000);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gb_per_sec(5.0);
        let t = bw.transfer_time(Bytes::from_gb_f64(10.0));
        assert!((t.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_div_bandwidth_matches_transfer_time() {
        let bw = Bandwidth::from_gb_per_sec(4.0);
        let b = Bytes::from_gb_f64(8.0);
        assert_eq!(b / bw, bw.transfer_time(b));
    }

    #[test]
    fn oprate_execute_time() {
        let r = OpRate::from_freq_ipc(3.6e9, 2.0);
        let t = r.execute_time(Ops::new(7_200_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_bytes_rounds() {
        assert_eq!(Bytes::new(1000).scale(0.5).as_u64(), 500);
        assert_eq!(Bytes::new(3).scale(0.5).as_u64(), 2); // round-half-even not required; nearest
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", Duration::from_micros(3.0)).is_empty());
        assert!(!format!("{}", Bytes::from_mib(2)).is_empty());
        assert!(!format!("{}", Ops::new(5)).is_empty());
        assert!(!format!("{}", Bandwidth::from_gb_per_sec(9.0)).is_empty());
        assert!(!format!("{}", OpRate::from_ops_per_sec(1e9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }

    #[test]
    fn duration_sum_and_ratio() {
        let total: Duration = [1.0, 2.0, 3.0]
            .iter()
            .map(|s| Duration::from_secs(*s))
            .sum();
        assert!((total.as_secs() - 6.0).abs() < 1e-12);
        assert!((Duration::from_secs(3.0) / Duration::from_secs(1.5) - 2.0).abs() < 1e-12);
    }
}
