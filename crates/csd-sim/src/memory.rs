//! The shared memory address space.
//!
//! ActivePy "adopts a shared memory address space between the host program
//! and the CSD program" (§III-C0a): the CSD exposes device DRAM through PCIe
//! BARs (or RDMA for NVMe-oF attachments), the kernel maps those windows
//! into the program's virtual address space, and the allocation policy
//! "prefers to place data near their consumers".
//!
//! [`SharedAddressSpace`] is a real allocator over two regions (host DRAM
//! and device DRAM): allocations receive stable [`ObjectId`]s, record their
//! placement and size, and can be moved between regions (the mechanism task
//! migration uses to account for live state).

use crate::engine::EngineKind;
use crate::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Where an object physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Host main memory.
    HostDram,
    /// CSD device memory, BAR-mapped into the host address space.
    DeviceDram,
}

impl Region {
    /// The region local to a given compute engine.
    #[must_use]
    pub fn local_to(engine: EngineKind) -> Region {
        match engine {
            EngineKind::Host => Region::HostDram,
            EngineKind::Cse => Region::DeviceDram,
        }
    }

    /// Whether `engine` accesses this region without crossing the system
    /// interconnect.
    #[must_use]
    pub fn is_local_to(self, engine: EngineKind) -> bool {
        self == Region::local_to(engine)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::HostDram => write!(f, "host-dram"),
            Region::DeviceDram => write!(f, "device-dram"),
        }
    }
}

/// Stable handle to an allocated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(u64);

impl ObjectId {
    /// The raw identifier.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Metadata for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Where the object lives.
    pub region: Region,
    /// Object size.
    pub size: Bytes,
}

/// Errors from address-space operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The target region does not have `requested` bytes free.
    OutOfMemory {
        /// Region that was full.
        region: Region,
        /// Size of the failed request.
        requested: Bytes,
        /// Bytes still free in that region.
        free: Bytes,
    },
    /// The object id is not live.
    UnknownObject(ObjectId),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                region,
                requested,
                free,
            } => {
                write!(
                    f,
                    "{region} out of memory: requested {requested}, free {free}"
                )
            }
            MemoryError::UnknownObject(id) => write!(f, "unknown object {id}"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// The unified host + device address space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedAddressSpace {
    host_capacity: Bytes,
    device_capacity: Bytes,
    host_used: Bytes,
    device_used: Bytes,
    next_id: u64,
    objects: BTreeMap<ObjectId, Allocation>,
}

impl SharedAddressSpace {
    /// Creates an address space with the given region capacities.
    #[must_use]
    pub fn new(host_capacity: Bytes, device_capacity: Bytes) -> Self {
        SharedAddressSpace {
            host_capacity,
            device_capacity,
            host_used: Bytes::ZERO,
            device_used: Bytes::ZERO,
            next_id: 0,
            objects: BTreeMap::new(),
        }
    }

    /// Bytes free in `region`.
    #[must_use]
    pub fn free(&self, region: Region) -> Bytes {
        match region {
            Region::HostDram => self.host_capacity.saturating_sub(self.host_used),
            Region::DeviceDram => self.device_capacity.saturating_sub(self.device_used),
        }
    }

    /// Bytes in use in `region`.
    #[must_use]
    pub fn used(&self, region: Region) -> Bytes {
        match region {
            Region::HostDram => self.host_used,
            Region::DeviceDram => self.device_used,
        }
    }

    /// Allocates `size` bytes in `region`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfMemory`] when the region is full.
    pub fn alloc(&mut self, region: Region, size: Bytes) -> Result<ObjectId, MemoryError> {
        let free = self.free(region);
        if size > free {
            return Err(MemoryError::OutOfMemory {
                region,
                requested: size,
                free,
            });
        }
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.charge(region, size);
        self.objects.insert(id, Allocation { region, size });
        Ok(id)
    }

    /// Allocates `size` bytes near its consumer — ActivePy's placement
    /// policy: the object lands in the region local to the engine that will
    /// read it next.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfMemory`] when the preferred region is
    /// full (no silent fallback: the caller decides whether to spill).
    pub fn alloc_near(
        &mut self,
        consumer: EngineKind,
        size: Bytes,
    ) -> Result<ObjectId, MemoryError> {
        self.alloc(Region::local_to(consumer), size)
    }

    /// Looks up an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownObject`] when `id` is not live.
    pub fn get(&self, id: ObjectId) -> Result<Allocation, MemoryError> {
        self.objects
            .get(&id)
            .copied()
            .ok_or(MemoryError::UnknownObject(id))
    }

    /// Moves a live object to `target`, returning the number of bytes that
    /// must cross the interconnect (zero if it was already there). The
    /// caller charges that traffic to a link.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownObject`] for a dead id, or
    /// [`MemoryError::OutOfMemory`] if the target region cannot hold it.
    pub fn migrate(&mut self, id: ObjectId, target: Region) -> Result<Bytes, MemoryError> {
        let alloc = self.get(id)?;
        if alloc.region == target {
            return Ok(Bytes::ZERO);
        }
        let free = self.free(target);
        if alloc.size > free {
            return Err(MemoryError::OutOfMemory {
                region: target,
                requested: alloc.size,
                free,
            });
        }
        self.discharge(alloc.region, alloc.size);
        self.charge(target, alloc.size);
        self.objects.insert(
            id,
            Allocation {
                region: target,
                size: alloc.size,
            },
        );
        Ok(alloc.size)
    }

    /// Frees a live object.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownObject`] for a dead id.
    pub fn dealloc(&mut self, id: ObjectId) -> Result<(), MemoryError> {
        let alloc = self
            .objects
            .remove(&id)
            .ok_or(MemoryError::UnknownObject(id))?;
        self.discharge(alloc.region, alloc.size);
        Ok(())
    }

    /// Total bytes of live objects in `region` (equal to [`Self::used`]).
    #[must_use]
    pub fn live_bytes(&self, region: Region) -> Bytes {
        self.objects
            .values()
            .filter(|a| a.region == region)
            .map(|a| a.size)
            .sum()
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Iterates over live objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Allocation)> + '_ {
        self.objects.iter().map(|(id, a)| (*id, *a))
    }

    fn charge(&mut self, region: Region, size: Bytes) {
        match region {
            Region::HostDram => self.host_used += size,
            Region::DeviceDram => self.device_used += size,
        }
    }

    fn discharge(&mut self, region: Region, size: Bytes) {
        match region {
            Region::HostDram => {
                self.host_used = self.host_used.saturating_sub(size);
            }
            Region::DeviceDram => {
                self.device_used = self.device_used.saturating_sub(size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SharedAddressSpace {
        SharedAddressSpace::new(Bytes::from_gib(32), Bytes::from_gib(8))
    }

    #[test]
    fn alloc_and_lookup() {
        let mut m = space();
        let id = m
            .alloc(Region::HostDram, Bytes::from_mib(100))
            .expect("alloc");
        let a = m.get(id).expect("lookup");
        assert_eq!(a.region, Region::HostDram);
        assert_eq!(a.size, Bytes::from_mib(100));
        assert_eq!(m.used(Region::HostDram), Bytes::from_mib(100));
    }

    #[test]
    fn alloc_near_places_in_consumer_region() {
        let mut m = space();
        let h = m
            .alloc_near(EngineKind::Host, Bytes::from_mib(1))
            .expect("host alloc");
        let d = m
            .alloc_near(EngineKind::Cse, Bytes::from_mib(1))
            .expect("cse alloc");
        assert_eq!(m.get(h).expect("h").region, Region::HostDram);
        assert_eq!(m.get(d).expect("d").region, Region::DeviceDram);
    }

    #[test]
    fn out_of_memory_is_reported_with_free_bytes() {
        let mut m = SharedAddressSpace::new(Bytes::from_mib(1), Bytes::from_mib(1));
        let err = m.alloc(Region::HostDram, Bytes::from_mib(2)).unwrap_err();
        match err {
            MemoryError::OutOfMemory {
                region,
                requested,
                free,
            } => {
                assert_eq!(region, Region::HostDram);
                assert_eq!(requested, Bytes::from_mib(2));
                assert_eq!(free, Bytes::from_mib(1));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn migrate_moves_accounting_and_reports_traffic() {
        let mut m = space();
        let id = m
            .alloc(Region::DeviceDram, Bytes::from_mib(64))
            .expect("alloc");
        let moved = m.migrate(id, Region::HostDram).expect("migrate");
        assert_eq!(moved, Bytes::from_mib(64));
        assert_eq!(m.used(Region::DeviceDram), Bytes::ZERO);
        assert_eq!(m.used(Region::HostDram), Bytes::from_mib(64));
        // Second migration to the same place is free.
        assert_eq!(m.migrate(id, Region::HostDram).expect("noop"), Bytes::ZERO);
    }

    #[test]
    fn dealloc_releases_space() {
        let mut m = space();
        let id = m
            .alloc(Region::HostDram, Bytes::from_mib(10))
            .expect("alloc");
        m.dealloc(id).expect("dealloc");
        assert_eq!(m.used(Region::HostDram), Bytes::ZERO);
        assert!(matches!(m.get(id), Err(MemoryError::UnknownObject(_))));
        assert!(matches!(m.dealloc(id), Err(MemoryError::UnknownObject(_))));
    }

    #[test]
    fn live_bytes_matches_used() {
        let mut m = space();
        m.alloc(Region::HostDram, Bytes::from_mib(3)).expect("a");
        m.alloc(Region::HostDram, Bytes::from_mib(4)).expect("b");
        m.alloc(Region::DeviceDram, Bytes::from_mib(5)).expect("c");
        assert_eq!(m.live_bytes(Region::HostDram), m.used(Region::HostDram));
        assert_eq!(m.live_bytes(Region::DeviceDram), m.used(Region::DeviceDram));
        assert_eq!(m.live_objects(), 3);
    }

    #[test]
    fn region_locality() {
        assert!(Region::HostDram.is_local_to(EngineKind::Host));
        assert!(Region::DeviceDram.is_local_to(EngineKind::Cse));
        assert!(!Region::DeviceDram.is_local_to(EngineKind::Host));
    }
}
