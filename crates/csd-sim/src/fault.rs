//! Deterministic fault injection.
//!
//! The paper's runtime claim (§III-D) is a robustness claim: when the CSD
//! under-delivers, ActivePy migrates the remaining work to the host
//! instead of stalling. This module supplies the adversity. A
//! [`FaultPlan`] schedules three fault classes against simulated time:
//!
//! 1. **GC bursts** — availability collapses to a residual fraction for a
//!    bounded sim-time window ([`GcBurst`]), composed multiplicatively
//!    with whatever contention is already installed.
//! 2. **Transient errors** — flash reads, NVMe command submissions, and
//!    DMA transfers fail with a per-operation probability drawn from a
//!    fixed-seed PRNG (the vendored `rand` stand-in).
//! 3. **A hard CSE crash** — at a chosen sim time the engine complex goes
//!    away permanently; every subsequent CSE-side operation fails with
//!    [`DeviceFault::CseCrash`].
//!
//! Everything is deterministic: the same seed and the same plan produce
//! the same fault trace against the same operation sequence, which is
//! what the chaos differential tests rely on. The injector stores the
//! PRNG as its raw `u64` state so [`FaultInjector`] stays plain data
//! (`PartialEq`/`Serialize`-able, like the rest of the [`System`]).
//!
//! [`System`]: crate::system::System

use crate::availability::AvailabilityTrace;
use crate::units::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One garbage-collection burst: availability collapses to
/// [`GcBurst::residual_fraction`] for the window
/// `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcBurst {
    /// When the burst begins.
    pub start: SimTime,
    /// How long the burst lasts (a zero duration is a harmless no-op).
    pub duration: Duration,
    /// Fraction of nominal throughput, in `(0, 1]`, that survives the
    /// burst.
    pub residual_fraction: f64,
}

/// A seeded, sim-time-scheduled fault schedule.
///
/// Probabilities are capped at [`FaultPlan::MAX_ERROR_PROB`] so that
/// retry-until-success loops (used for must-complete transfers) are
/// guaranteed to terminate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-operation failure draws.
    pub seed: u64,
    /// Scheduled GC bursts (may overlap; overlaps compose
    /// multiplicatively).
    pub gc_bursts: Vec<GcBurst>,
    /// Per-operation probability that a CSE-side flash read fails.
    pub flash_read_error_prob: f64,
    /// Per-operation probability that an NVMe command submission fails.
    pub nvme_error_prob: f64,
    /// Per-operation probability that a DMA transfer fails.
    pub dma_error_prob: f64,
    /// Sim time of the hard CSE crash, if any. From this instant every
    /// CSE-side operation fails permanently.
    pub crash_at: Option<SimTime>,
    /// Sim time charged to detect and report each injected fault.
    pub detect_latency: Duration,
}

impl FaultPlan {
    /// Upper bound on every per-operation error probability. Strictly
    /// below 1 so that an operation retried forever eventually succeeds.
    pub const MAX_ERROR_PROB: f64 = 0.9;

    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            gc_bursts: Vec::new(),
            flash_read_error_prob: 0.0,
            nvme_error_prob: 0.0,
            dma_error_prob: 0.0,
            crash_at: None,
            detect_latency: Duration::from_secs(50e-6),
        }
    }

    /// Whether this plan injects nothing at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.gc_bursts.is_empty()
            && self.flash_read_error_prob == 0.0
            && self.nvme_error_prob == 0.0
            && self.dma_error_prob == 0.0
            && self.crash_at.is_none()
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a GC burst collapsing availability to `residual_fraction`
    /// over `[start, start + duration)`.
    #[must_use]
    pub fn with_gc_burst(
        mut self,
        start: SimTime,
        duration: Duration,
        residual_fraction: f64,
    ) -> Self {
        self.gc_bursts.push(GcBurst {
            start,
            duration,
            residual_fraction,
        });
        self
    }

    /// Sets the per-read flash error probability.
    #[must_use]
    pub fn with_flash_read_error_prob(mut self, p: f64) -> Self {
        self.flash_read_error_prob = p;
        self
    }

    /// Sets the per-command NVMe error probability.
    #[must_use]
    pub fn with_nvme_error_prob(mut self, p: f64) -> Self {
        self.nvme_error_prob = p;
        self
    }

    /// Sets the per-transfer DMA error probability.
    #[must_use]
    pub fn with_dma_error_prob(mut self, p: f64) -> Self {
        self.dma_error_prob = p;
        self
    }

    /// Schedules the hard CSE crash.
    #[must_use]
    pub fn with_crash_at(mut self, at: SimTime) -> Self {
        self.crash_at = Some(at);
        self
    }

    /// Sets the fault-detection latency charged per injected fault.
    #[must_use]
    pub fn with_detect_latency(mut self, d: Duration) -> Self {
        self.detect_latency = d;
        self
    }

    /// Checks the plan is well-formed; returns a human-readable reason
    /// when it is not.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: a probability
    /// outside `[0, MAX_ERROR_PROB]`, a malformed burst window, or a
    /// negative detection latency.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("flash_read_error_prob", self.flash_read_error_prob),
            ("nvme_error_prob", self.nvme_error_prob),
            ("dma_error_prob", self.dma_error_prob),
        ] {
            if !(p.is_finite() && (0.0..=Self::MAX_ERROR_PROB).contains(&p)) {
                return Err(format!(
                    "{name} must be in [0, {}], got {p}",
                    Self::MAX_ERROR_PROB
                ));
            }
        }
        for b in &self.gc_bursts {
            if !b.start.as_secs().is_finite() || b.start.as_secs() < 0.0 {
                return Err(format!(
                    "gc burst start must be non-negative, got {}",
                    b.start
                ));
            }
            if !b.duration.as_secs().is_finite() || b.duration.as_secs() < 0.0 {
                return Err(format!(
                    "gc burst duration must be non-negative, got {}",
                    b.duration
                ));
            }
            if !(b.residual_fraction.is_finite()
                && b.residual_fraction > 0.0
                && b.residual_fraction <= 1.0)
            {
                return Err(format!(
                    "gc burst residual fraction must be in (0, 1], got {}",
                    b.residual_fraction
                ));
            }
        }
        if !self.detect_latency.as_secs().is_finite() || self.detect_latency.as_secs() < 0.0 {
            return Err(format!(
                "detect latency must be non-negative, got {}",
                self.detect_latency
            ));
        }
        Ok(())
    }

    /// The availability trace carved out by the scheduled GC bursts
    /// (full everywhere else). Overlapping bursts compose
    /// multiplicatively; zero-length bursts contribute nothing.
    #[must_use]
    pub fn burst_trace(&self) -> AvailabilityTrace {
        let mut trace = AvailabilityTrace::full();
        for b in &self.gc_bursts {
            if b.duration.is_zero() {
                continue;
            }
            let single = AvailabilityTrace::full()
                .with_change(b.start, b.residual_fraction)
                .with_change(b.start + b.duration, 1.0);
            trace = trace.product(&single);
        }
        trace
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// One injected device fault, stamped with the sim time it fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceFault {
    /// A transient flash read error on the device-internal path.
    FlashRead {
        /// When the fault fired.
        at: SimTime,
    },
    /// A transient NVMe command error (submission aborted).
    NvmeCommand {
        /// When the fault fired.
        at: SimTime,
    },
    /// A transient DMA transfer error.
    DmaTransfer {
        /// When the fault fired.
        at: SimTime,
    },
    /// The hard CSE crash: the engine complex is gone for the rest of
    /// the run.
    CseCrash {
        /// When the crash was (first) observed.
        at: SimTime,
    },
}

impl DeviceFault {
    /// Whether a retry can possibly succeed. Only the crash is
    /// permanent.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(self, DeviceFault::CseCrash { .. })
    }

    /// The sim time at which the fault fired.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            DeviceFault::FlashRead { at }
            | DeviceFault::NvmeCommand { at }
            | DeviceFault::DmaTransfer { at }
            | DeviceFault::CseCrash { at } => *at,
        }
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::FlashRead { at } => write!(f, "transient flash read error at {at}"),
            DeviceFault::NvmeCommand { at } => write!(f, "transient NVMe command error at {at}"),
            DeviceFault::DmaTransfer { at } => write!(f, "transient DMA transfer error at {at}"),
            DeviceFault::CseCrash { at } => write!(f, "hard CSE crash at {at}"),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// Running totals of injected faults, by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient flash read errors injected.
    pub flash_read_errors: u64,
    /// Transient NVMe command errors injected.
    pub nvme_command_errors: u64,
    /// Transient DMA transfer errors injected.
    pub dma_transfer_errors: u64,
    /// Hard crashes observed (0 or 1: the transition is counted once).
    pub cse_crashes: u64,
}

impl FaultCounters {
    /// Total transient faults injected across all classes.
    #[must_use]
    pub fn transient_total(&self) -> u64 {
        self.flash_read_errors + self.nvme_command_errors + self.dma_transfer_errors
    }
}

/// Executes a [`FaultPlan`] against a stream of operations: each
/// `roll_*` call consults the plan (and one PRNG draw, when the class
/// has a non-zero probability) and reports whether the operation fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng_state: u64,
    counters: FaultCounters,
    crashed: bool,
}

impl FaultInjector {
    /// Builds an injector at the start of the plan's PRNG stream.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let rng_state = StdRng::seed_from_u64(plan.seed).state();
        FaultInjector {
            plan,
            rng_state,
            counters: FaultCounters::default(),
            crashed: false,
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection totals so far.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Whether the hard crash has been observed.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The raw PRNG state — the injector's position in its fault
    /// stream. Two injectors with equal plans and equal states produce
    /// identical future draws, which is what the execution WAL's replay
    /// verification checks at every journaled boundary.
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng_state
    }

    /// Rewinds to the start of the stream for a fresh, identical replay.
    pub fn reset(&mut self) {
        self.rng_state = StdRng::seed_from_u64(self.plan.seed).state();
        self.counters = FaultCounters::default();
        self.crashed = false;
    }

    /// One Bernoulli draw; skipped entirely (no PRNG state change) when
    /// `p == 0`, so enabling one fault class does not perturb another's
    /// stream alignment relative to a plan without it.
    fn draw(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut rng = StdRng::from_state(self.rng_state);
        let hit = rng.gen_bool(p);
        self.rng_state = rng.state();
        hit
    }

    /// Observes (and latches) the hard crash if `now` has reached it.
    fn check_crash(&mut self, now: SimTime) -> bool {
        if !self.crashed {
            if let Some(at) = self.plan.crash_at {
                if now >= at {
                    self.crashed = true;
                    self.counters.cse_crashes += 1;
                }
            }
        }
        self.crashed
    }

    /// Rolls a CSE-side flash read at sim time `now`.
    pub fn roll_flash_read(&mut self, now: SimTime) -> Option<DeviceFault> {
        if self.check_crash(now) {
            return Some(DeviceFault::CseCrash { at: now });
        }
        if self.draw(self.plan.flash_read_error_prob) {
            self.counters.flash_read_errors += 1;
            return Some(DeviceFault::FlashRead { at: now });
        }
        None
    }

    /// Rolls an NVMe command submission at sim time `now`.
    pub fn roll_nvme(&mut self, now: SimTime) -> Option<DeviceFault> {
        if self.check_crash(now) {
            return Some(DeviceFault::CseCrash { at: now });
        }
        if self.draw(self.plan.nvme_error_prob) {
            self.counters.nvme_command_errors += 1;
            return Some(DeviceFault::NvmeCommand { at: now });
        }
        None
    }

    /// Rolls a CSE compute slice at sim time `now`. Compute has no
    /// transient failure mode of its own; it only observes the crash.
    pub fn roll_compute(&mut self, now: SimTime) -> Option<DeviceFault> {
        if self.check_crash(now) {
            return Some(DeviceFault::CseCrash { at: now });
        }
        None
    }

    /// Rolls a DMA transfer at sim time `now`.
    ///
    /// DMA is controller-side and survives a CSE crash by design — the
    /// migration path must still be able to drain checkpoint state out
    /// of device DRAM after the engine complex dies — so this never
    /// returns [`DeviceFault::CseCrash`].
    pub fn roll_dma(&mut self, now: SimTime) -> Option<DeviceFault> {
        if self.draw(self.plan.dma_error_prob) {
            self.counters.dma_transfer_errors += 1;
            return Some(DeviceFault::DmaTransfer { at: now });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan() -> FaultPlan {
        FaultPlan::none()
            .with_seed(42)
            .with_flash_read_error_prob(0.3)
            .with_nvme_error_prob(0.2)
            .with_dma_error_prob(0.1)
    }

    #[test]
    fn none_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..100 {
            let t = SimTime::from_secs(f64::from(i));
            assert_eq!(inj.roll_flash_read(t), None);
            assert_eq!(inj.roll_nvme(t), None);
            assert_eq!(inj.roll_dma(t), None);
            assert_eq!(inj.roll_compute(t), None);
        }
        assert_eq!(inj.counters(), FaultCounters::default());
        assert!(FaultPlan::none().is_none());
        assert!(!lossy_plan().is_none());
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let mut a = FaultInjector::new(lossy_plan());
        let mut b = FaultInjector::new(lossy_plan());
        for i in 0..500 {
            let t = SimTime::from_secs(f64::from(i) * 1e-3);
            assert_eq!(a.roll_flash_read(t), b.roll_flash_read(t));
            assert_eq!(a.roll_nvme(t), b.roll_nvme(t));
            assert_eq!(a.roll_dma(t), b.roll_dma(t));
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().transient_total() > 0, "p=0.3 over 500 rolls");
    }

    #[test]
    fn reset_replays_identically() {
        let mut inj = FaultInjector::new(lossy_plan());
        let first: Vec<_> = (0..200)
            .map(|i| inj.roll_flash_read(SimTime::from_secs(f64::from(i))))
            .collect();
        let counters = inj.counters();
        inj.reset();
        let second: Vec<_> = (0..200)
            .map(|i| inj.roll_flash_read(SimTime::from_secs(f64::from(i))))
            .collect();
        assert_eq!(first, second);
        assert_eq!(inj.counters(), counters);
    }

    #[test]
    fn crash_is_permanent_and_counted_once() {
        let plan = FaultPlan::none().with_crash_at(SimTime::from_secs(1.0));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.roll_compute(SimTime::from_secs(0.5)), None);
        assert!(!inj.crashed());
        let f = inj.roll_flash_read(SimTime::from_secs(1.0));
        assert_eq!(
            f,
            Some(DeviceFault::CseCrash {
                at: SimTime::from_secs(1.0)
            })
        );
        assert!(!f.unwrap().is_transient());
        // Every later CSE-side roll keeps failing; the counter stays at 1.
        for i in 0..10 {
            let t = SimTime::from_secs(2.0 + f64::from(i));
            assert!(matches!(
                inj.roll_nvme(t),
                Some(DeviceFault::CseCrash { .. })
            ));
        }
        assert_eq!(inj.counters().cse_crashes, 1);
        // DMA survives the crash (controller-side).
        assert_eq!(inj.roll_dma(SimTime::from_secs(5.0)), None);
    }

    #[test]
    fn zero_probability_classes_do_not_consume_draws() {
        // Flash-only plan and flash+nvme plan must agree on the flash
        // stream: nvme rolls with p=0 take no draw.
        let flash_only = FaultPlan::none()
            .with_seed(7)
            .with_flash_read_error_prob(0.4);
        let both = flash_only.clone().with_nvme_error_prob(0.0);
        let mut a = FaultInjector::new(flash_only);
        let mut b = FaultInjector::new(both);
        for i in 0..300 {
            let t = SimTime::from_secs(f64::from(i));
            assert_eq!(a.roll_flash_read(t), b.roll_flash_read(t));
            assert_eq!(b.roll_nvme(t), None);
        }
    }

    #[test]
    fn burst_trace_carves_windows() {
        let plan = FaultPlan::none()
            .with_gc_burst(SimTime::from_secs(1.0), Duration::from_secs(2.0), 0.1)
            .with_gc_burst(SimTime::from_secs(2.0), Duration::from_secs(2.0), 0.5);
        let tr = plan.burst_trace();
        assert!((tr.fraction_at(SimTime::from_secs(0.5)) - 1.0).abs() < 1e-12);
        assert!((tr.fraction_at(SimTime::from_secs(1.5)) - 0.1).abs() < 1e-12);
        // Overlap composes multiplicatively.
        assert!((tr.fraction_at(SimTime::from_secs(2.5)) - 0.05).abs() < 1e-12);
        assert!((tr.fraction_at(SimTime::from_secs(3.5)) - 0.5).abs() < 1e-12);
        assert!((tr.fraction_at(SimTime::from_secs(4.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_burst_is_a_no_op() {
        let plan = FaultPlan::none().with_gc_burst(SimTime::from_secs(1.0), Duration::ZERO, 0.2);
        assert_eq!(plan.burst_trace(), AvailabilityTrace::full());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(lossy_plan().validate().is_ok());
        let too_high = FaultPlan::none().with_flash_read_error_prob(0.95);
        assert!(too_high.validate().is_err());
        let negative = FaultPlan::none().with_dma_error_prob(-0.1);
        assert!(negative.validate().is_err());
        let bad_burst =
            FaultPlan::none().with_gc_burst(SimTime::ZERO, Duration::from_secs(1.0), 0.0);
        assert!(bad_burst.validate().is_err());
    }

    #[test]
    fn display_names_the_fault_class() {
        let t = SimTime::from_secs(1.0);
        assert!(format!("{}", DeviceFault::FlashRead { at: t }).contains("flash read"));
        assert!(format!("{}", DeviceFault::CseCrash { at: t }).contains("crash"));
    }
}
