//! Piecewise-constant availability traces.
//!
//! The paper's key system dynamic (§II-B3, Figures 2 and 5) is that the
//! computational storage engine (CSE) is not always fully available to the
//! in-storage-processing (ISP) task: other applications, or the device's own
//! storage-management workloads (garbage collection), steal cycles. An
//! [`AvailabilityTrace`] describes the fraction of a resource's nominal
//! throughput that the ISP task receives as a piecewise-constant function of
//! simulated time.
//!
//! The trace supports exact closed-form integration, so the engine model can
//! answer "starting at time `t`, when have `n` operations retired?" without
//! time-stepping.

use crate::units::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of fraction values clamped up to
/// [`AvailabilityTrace::MIN_FRACTION`]. Clamping keeps the simulation
/// live but silently rewrites the requested fraction, so it is counted
/// (and, in debug builds, reported once) instead of passing unnoticed.
static CLAMP_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Records one clamp event; emits a single debug-build diagnostic the
/// first time it ever fires so test logs surface the rewrite without
/// being spammed by property tests.
fn record_clamp(requested: f64) {
    let prev = CLAMP_EVENTS.fetch_add(1, Ordering::Relaxed);
    #[cfg(debug_assertions)]
    if prev == 0 {
        eprintln!(
            "csd-sim: availability fraction {requested} clamped to minimum {} \
             (further clamp events are counted silently; see \
             AvailabilityTrace::clamp_events)",
            AvailabilityTrace::MIN_FRACTION
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = (prev, requested);
}

/// One constant-availability segment, from [`Segment::start`] until the next
/// segment's start (the last segment extends to infinity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Time at which this availability level begins.
    pub start: SimTime,
    /// Fraction of nominal throughput in `(0, 1]` delivered from `start`.
    pub fraction: f64,
}

/// A piecewise-constant availability function of time.
///
/// ```
/// use csd_sim::availability::AvailabilityTrace;
/// use csd_sim::units::SimTime;
///
/// let tr = AvailabilityTrace::full()
///     .with_change(SimTime::from_secs(10.0), 0.5);
/// assert_eq!(tr.fraction_at(SimTime::from_secs(5.0)), 1.0);
/// assert_eq!(tr.fraction_at(SimTime::from_secs(12.0)), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityTrace {
    segments: Vec<Segment>,
}

impl AvailabilityTrace {
    /// Minimum representable availability. Requests for lower fractions are
    /// clamped so that work always eventually completes (a fully-starved
    /// resource would deadlock the simulation).
    pub const MIN_FRACTION: f64 = 1e-6;

    /// A trace that delivers full throughput forever.
    #[must_use]
    pub fn full() -> Self {
        AvailabilityTrace {
            segments: vec![Segment {
                start: SimTime::ZERO,
                fraction: 1.0,
            }],
        }
    }

    /// Whether this is the trivial full-throughput trace (one segment at
    /// fraction 1.0) — lets hot paths skip composing it in.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.segments.len() == 1 && self.segments[0].fraction == 1.0
    }

    /// How many times, process-wide, a requested fraction has been
    /// clamped up to [`AvailabilityTrace::MIN_FRACTION`]. Monotonic;
    /// useful for asserting that a scenario did (or did not) hit the
    /// floor.
    #[must_use]
    pub fn clamp_events() -> u64 {
        CLAMP_EVENTS.load(Ordering::Relaxed)
    }

    /// A trace with a single constant fraction forever.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not finite or not positive.
    #[must_use]
    pub fn constant(fraction: f64) -> Self {
        AvailabilityTrace {
            segments: vec![Segment {
                start: SimTime::ZERO,
                fraction: clamp_fraction(fraction),
            }],
        }
    }

    /// Returns a copy of this trace with the availability changed to
    /// `fraction` from time `at` onward (later changes already present after
    /// `at` are removed).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not finite or not positive.
    #[must_use]
    pub fn with_change(mut self, at: SimTime, fraction: f64) -> Self {
        let fraction = clamp_fraction(fraction);
        self.segments.retain(|s| s.start < at);
        self.segments.push(Segment {
            start: at,
            fraction,
        });
        self
    }

    /// The availability fraction in effect at time `t`.
    #[must_use]
    pub fn fraction_at(&self, t: SimTime) -> f64 {
        let mut current = self.segments[0].fraction;
        for seg in &self.segments {
            if seg.start <= t {
                current = seg.fraction;
            } else {
                break;
            }
        }
        current
    }

    /// The underlying segments, in increasing order of start time.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Integrates availability over `[start, start + duration]`, returning
    /// "effective seconds" of full-rate service received.
    #[must_use]
    pub fn integrate(&self, start: SimTime, duration: Duration) -> f64 {
        if duration.is_zero() {
            return 0.0;
        }
        let end = start + duration;
        let mut acc = 0.0;
        let mut t = start;
        while t < end {
            let frac = self.fraction_at(t);
            let seg_end = self.next_change_after(t).map_or(end, |c| c.min(end));
            acc += frac * seg_end.duration_since(t).as_secs();
            t = seg_end;
        }
        acc
    }

    /// Computes the wall-clock duration needed, starting at `start`, to
    /// accumulate `effective_secs` of full-rate service.
    ///
    /// This is the inverse of [`AvailabilityTrace::integrate`] and is exact
    /// for piecewise-constant traces.
    ///
    /// # Panics
    ///
    /// Panics if `effective_secs` is negative or not finite.
    #[must_use]
    pub fn invert(&self, start: SimTime, effective_secs: f64) -> Duration {
        assert!(
            effective_secs.is_finite() && effective_secs >= 0.0,
            "effective seconds must be non-negative"
        );
        if effective_secs == 0.0 {
            return Duration::ZERO;
        }
        let mut remaining = effective_secs;
        let mut t = start;
        loop {
            let frac = self.fraction_at(t);
            match self.next_change_after(t) {
                Some(change) => {
                    let span = change.duration_since(t).as_secs();
                    let capacity = frac * span;
                    if capacity >= remaining {
                        return (t + Duration::from_secs(remaining / frac)).duration_since(start);
                    }
                    remaining -= capacity;
                    t = change;
                }
                None => {
                    return (t + Duration::from_secs(remaining / frac)).duration_since(start);
                }
            }
        }
    }

    /// The first availability change strictly after time `t`, if any.
    #[must_use]
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.segments.iter().map(|s| s.start).find(|&s| s > t)
    }

    /// The time-weighted mean availability over `[start, start + duration]`.
    #[must_use]
    pub fn mean_over(&self, start: SimTime, duration: Duration) -> f64 {
        if duration.is_zero() {
            return self.fraction_at(start);
        }
        self.integrate(start, duration) / duration.as_secs()
    }

    /// The pointwise product of two traces — two independent throughput
    /// thieves (e.g. garbage collection and a competing tenant) compose
    /// multiplicatively.
    #[must_use]
    pub fn product(&self, other: &AvailabilityTrace) -> AvailabilityTrace {
        let mut boundaries: Vec<SimTime> = self
            .segments
            .iter()
            .chain(other.segments.iter())
            .map(|s| s.start)
            .collect();
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        boundaries.dedup();
        let segments = boundaries
            .into_iter()
            .map(|start| {
                let raw = self.fraction_at(start) * other.fraction_at(start);
                if raw < Self::MIN_FRACTION {
                    record_clamp(raw);
                }
                Segment {
                    start,
                    fraction: raw.max(Self::MIN_FRACTION),
                }
            })
            .collect();
        AvailabilityTrace { segments }
    }
}

impl Default for AvailabilityTrace {
    fn default() -> Self {
        AvailabilityTrace::full()
    }
}

fn clamp_fraction(fraction: f64) -> f64 {
    assert!(
        fraction.is_finite() && fraction > 0.0 && fraction <= 1.0,
        "availability fraction must be in (0, 1], got {fraction}"
    );
    if fraction < AvailabilityTrace::MIN_FRACTION {
        record_clamp(fraction);
    }
    fraction.max(AvailabilityTrace::MIN_FRACTION)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_trace_is_identity() {
        let tr = AvailabilityTrace::full();
        assert_eq!(tr.fraction_at(SimTime::from_secs(1e6)), 1.0);
        let d = Duration::from_secs(7.0);
        assert!((tr.integrate(SimTime::ZERO, d) - 7.0).abs() < 1e-12);
        assert!((tr.invert(SimTime::ZERO, 7.0).as_secs() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn constant_half_doubles_time() {
        let tr = AvailabilityTrace::constant(0.5);
        let need = 3.0;
        let wall = tr.invert(SimTime::ZERO, need);
        assert!((wall.as_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn change_mid_run_splits_correctly() {
        // Full speed for 2s, then 10% afterward.
        let tr = AvailabilityTrace::full().with_change(SimTime::from_secs(2.0), 0.1);
        // 5 effective seconds: 2 at full rate + 3 more at 0.1 => 2 + 30 = 32 wall.
        let wall = tr.invert(SimTime::ZERO, 5.0);
        assert!(
            (wall.as_secs() - 32.0).abs() < 1e-9,
            "got {}",
            wall.as_secs()
        );
        // And integration round-trips.
        let eff = tr.integrate(SimTime::ZERO, wall);
        assert!((eff - 5.0).abs() < 1e-9);
    }

    #[test]
    fn invert_starting_inside_degraded_segment() {
        let tr = AvailabilityTrace::full().with_change(SimTime::from_secs(1.0), 0.25);
        let wall = tr.invert(SimTime::from_secs(2.0), 1.0);
        assert!((wall.as_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn with_change_overrides_later_segments() {
        let tr = AvailabilityTrace::full()
            .with_change(SimTime::from_secs(5.0), 0.5)
            .with_change(SimTime::from_secs(3.0), 0.2);
        assert_eq!(tr.fraction_at(SimTime::from_secs(4.0)), 0.2);
        // The 5.0s change was dropped because 3.0 < 5.0 rewrites the tail.
        assert_eq!(tr.fraction_at(SimTime::from_secs(10.0)), 0.2);
    }

    #[test]
    fn mean_over_weights_by_time() {
        let tr = AvailabilityTrace::full().with_change(SimTime::from_secs(1.0), 0.5);
        let mean = tr.mean_over(SimTime::ZERO, Duration::from_secs(2.0));
        assert!((mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn next_change_after_finds_boundaries() {
        let tr = AvailabilityTrace::full().with_change(SimTime::from_secs(4.0), 0.5);
        assert_eq!(
            tr.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(4.0))
        );
        assert_eq!(tr.next_change_after(SimTime::from_secs(4.0)), None);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        let _ = AvailabilityTrace::constant(0.0);
    }

    #[test]
    fn product_composes_multiplicatively() {
        let a = AvailabilityTrace::full().with_change(SimTime::from_secs(2.0), 0.5);
        let b = AvailabilityTrace::constant(0.8).with_change(SimTime::from_secs(3.0), 0.25);
        let p = a.product(&b);
        assert!((p.fraction_at(SimTime::from_secs(1.0)) - 0.8).abs() < 1e-12);
        assert!((p.fraction_at(SimTime::from_secs(2.5)) - 0.4).abs() < 1e-12);
        assert!((p.fraction_at(SimTime::from_secs(5.0)) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn is_full_only_for_the_trivial_trace() {
        assert!(AvailabilityTrace::full().is_full());
        assert!(!AvailabilityTrace::constant(0.5).is_full());
        assert!(!AvailabilityTrace::full()
            .with_change(SimTime::from_secs(1.0), 0.5)
            .is_full());
        assert!(AvailabilityTrace::full()
            .product(&AvailabilityTrace::full())
            .is_full());
    }

    #[test]
    fn overlapping_with_change_at_identical_times_last_wins() {
        // Two changes at exactly the same instant: the retain(start < at)
        // in with_change drops the earlier one, so the last call wins and
        // no duplicate segment survives.
        let tr = AvailabilityTrace::full()
            .with_change(SimTime::from_secs(2.0), 0.5)
            .with_change(SimTime::from_secs(2.0), 0.25);
        assert_eq!(tr.segments().len(), 2);
        assert_eq!(tr.fraction_at(SimTime::from_secs(2.0)), 0.25);
        assert_eq!(tr.fraction_at(SimTime::from_secs(3.0)), 0.25);
    }

    #[test]
    fn queries_landing_exactly_on_a_boundary() {
        let tr = AvailabilityTrace::full().with_change(SimTime::from_secs(2.0), 0.5);
        // The boundary instant belongs to the new segment.
        assert_eq!(tr.fraction_at(SimTime::from_secs(2.0)), 0.5);
        // Integration starting exactly at the boundary sees only the new
        // fraction...
        let eff = tr.integrate(SimTime::from_secs(2.0), Duration::from_secs(4.0));
        assert!((eff - 2.0).abs() < 1e-12);
        // ...and inversion from the boundary is its exact inverse.
        let wall = tr.invert(SimTime::from_secs(2.0), 2.0);
        assert!((wall.as_secs() - 4.0).abs() < 1e-12);
        // Integration *ending* exactly on the boundary never touches the
        // degraded segment.
        let eff = tr.integrate(SimTime::ZERO, Duration::from_secs(2.0));
        assert!((eff - 2.0).abs() < 1e-12);
    }

    #[test]
    fn product_across_the_min_fraction_floor_clamps_and_counts() {
        let before = AvailabilityTrace::clamp_events();
        let tiny = AvailabilityTrace::constant(1e-4);
        let p = tiny.product(&tiny); // raw 1e-8 < MIN_FRACTION
        assert_eq!(
            p.fraction_at(SimTime::ZERO),
            AvailabilityTrace::MIN_FRACTION
        );
        assert!(
            AvailabilityTrace::clamp_events() > before,
            "clamping must be counted, not silent"
        );
        // The floor keeps the trace invertible: work still completes.
        let wall = p.invert(SimTime::ZERO, 1e-6);
        assert!(wall.as_secs().is_finite());
        assert!((wall.as_secs() - 1.0).abs() < 1e-9, "1e-6 eff / 1e-6 frac");
    }

    #[test]
    fn constant_below_the_floor_clamps_and_counts() {
        let before = AvailabilityTrace::clamp_events();
        let tr = AvailabilityTrace::constant(1e-9);
        assert_eq!(
            tr.fraction_at(SimTime::ZERO),
            AvailabilityTrace::MIN_FRACTION
        );
        assert!(AvailabilityTrace::clamp_events() > before);
    }

    #[test]
    fn integrate_invert_round_trip_multi_segment() {
        let tr = AvailabilityTrace::full()
            .with_change(SimTime::from_secs(1.0), 0.3)
            .with_change(SimTime::from_secs(2.5), 0.9)
            .with_change(SimTime::from_secs(7.0), 0.05);
        for eff in [0.1, 0.9, 1.4, 3.0, 10.0] {
            let wall = tr.invert(SimTime::from_secs(0.5), eff);
            let back = tr.integrate(SimTime::from_secs(0.5), wall);
            assert!((back - eff).abs() < 1e-9, "eff={eff} back={back}");
        }
    }
}
