//! NVMe-style queue pairs.
//!
//! ActivePy invokes CSD functions the way NVMe talks to devices (§III-C0b):
//! the host posts a request to a *submission queue* mapped into device
//! memory, the CSE polls and fetches requests whenever it is free, and
//! status/completion records flow back through a *completion queue*. Status
//! updates are patched in at the end of every line of CSD code and double as
//! the channel through which the host can signal high-priority work
//! (triggering migration).
//!
//! The ring structures here are real data structures — commands are queued,
//! fetched, and completed in FIFO order with bounded depth — and each hop
//! carries a configurable latency that the execution engine charges to the
//! simulated clock.

use crate::units::{Bytes, Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifies a submitted command within its queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CommandId(u64);

impl CommandId {
    /// The raw identifier.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CommandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmd#{}", self.0)
    }
}

/// The kind of request travelling through the call queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Invoke a CSD function (a contiguous run of offloaded lines) starting
    /// at `entry_line`.
    InvokeFunction {
        /// First program line of the offloaded region.
        entry_line: usize,
    },
    /// Ask the CSD to break at the end of the current line and hand state
    /// back (migration, or a high-priority preemption).
    Break,
    /// Distribute a freshly generated device binary of `size` bytes.
    LoadBinary {
        /// Size of the machine-code image.
        size: Bytes,
    },
}

/// A command in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Identifier assigned at submission.
    pub id: CommandId,
    /// What the device should do.
    pub kind: CommandKind,
    /// When the host posted it.
    pub submitted_at: SimTime,
}

/// A completion record posted by the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Which command completed.
    pub id: CommandId,
    /// When the device posted the completion.
    pub completed_at: SimTime,
    /// Progress report: fraction of the offloaded region finished (the
    /// "execution rate" of §III-C0b).
    pub progress: f64,
}

/// Latency parameters for the queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueLatencies {
    /// Host-side submission (build entry + doorbell write over PCIe).
    pub submit: Duration,
    /// Device-side fetch of a submission entry.
    pub fetch: Duration,
    /// Device-side posting of a completion + host observing it by polling.
    pub complete: Duration,
    /// Cost of one in-band status update appended at the end of a line of
    /// CSD code ("takes very little overhead", §III-C0b).
    pub status_update: Duration,
}

impl Default for QueueLatencies {
    fn default() -> Self {
        QueueLatencies {
            submit: Duration::from_micros(2.0),
            fetch: Duration::from_micros(1.0),
            complete: Duration::from_micros(2.0),
            status_update: Duration::from_nanos(200.0),
        }
    }
}

/// Errors from queue-pair operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The submission queue is full.
    SubmissionFull,
    /// No command is waiting to be fetched.
    Empty,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::SubmissionFull => write!(f, "submission queue is full"),
            QueueError::Empty => write!(f, "no command pending"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A submission/completion queue pair mapped into device memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuePair {
    depth: usize,
    latencies: QueueLatencies,
    submission: VecDeque<Command>,
    completion: VecDeque<Completion>,
    next_id: u64,
    submitted_total: u64,
    completed_total: u64,
    status_updates: u64,
    aborted_total: u64,
}

impl QueuePair {
    /// Creates a queue pair with the given ring `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize, latencies: QueueLatencies) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        QueuePair {
            depth,
            latencies,
            submission: VecDeque::new(),
            completion: VecDeque::new(),
            next_id: 0,
            submitted_total: 0,
            completed_total: 0,
            status_updates: 0,
            aborted_total: 0,
        }
    }

    /// The configured latencies.
    #[must_use]
    pub fn latencies(&self) -> &QueueLatencies {
        &self.latencies
    }

    /// Host posts `kind` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionFull`] when the ring has no free slot.
    pub fn submit(&mut self, now: SimTime, kind: CommandKind) -> Result<CommandId, QueueError> {
        if self.submission.len() >= self.depth {
            return Err(QueueError::SubmissionFull);
        }
        let id = CommandId(self.next_id);
        self.next_id += 1;
        self.submitted_total += 1;
        self.submission.push_back(Command {
            id,
            kind,
            submitted_at: now,
        });
        Ok(id)
    }

    /// Device fetches the oldest pending command ("the CSE fetches a request
    /// from the call queue whenever the CSE is free").
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Empty`] when nothing is pending.
    pub fn fetch(&mut self) -> Result<Command, QueueError> {
        self.submission.pop_front().ok_or(QueueError::Empty)
    }

    /// Whether a command is waiting — the check the status-update code
    /// performs at every line boundary ("checks if the host computer has any
    /// request that CSD needs to handle with high priority").
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.submission.is_empty()
    }

    /// Whether a [`CommandKind::Break`] specifically is waiting.
    #[must_use]
    pub fn has_pending_break(&self) -> bool {
        self.submission
            .iter()
            .any(|c| matches!(c.kind, CommandKind::Break))
    }

    /// Device posts a completion/status record.
    pub fn post_completion(&mut self, c: Completion) {
        self.completed_total += 1;
        self.completion.push_back(c);
    }

    /// Device emits an in-band status update (progress only, no ring slot).
    /// Returns its cost; the caller charges it to the clock.
    pub fn status_update(&mut self) -> Duration {
        self.status_updates += 1;
        self.latencies.status_update
    }

    /// Host polls the completion queue.
    #[must_use]
    pub fn poll_completion(&mut self) -> Option<Completion> {
        self.completion.pop_front()
    }

    /// Commands submitted over the queue's lifetime.
    #[must_use]
    pub fn submitted_total(&self) -> u64 {
        self.submitted_total
    }

    /// Completions posted over the queue's lifetime.
    #[must_use]
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Status updates emitted over the queue's lifetime.
    #[must_use]
    pub fn status_updates(&self) -> u64 {
        self.status_updates
    }

    /// Records one aborted command attempt (an injected NVMe error hit
    /// before the command reached the ring).
    pub fn record_aborted(&mut self) {
        self.aborted_total += 1;
    }

    /// Command attempts aborted by injected errors over the queue's
    /// lifetime.
    #[must_use]
    pub fn aborted_total(&self) -> u64 {
        self.aborted_total
    }

    /// Round-trip overhead of one function invocation, excluding the work
    /// itself: submit + fetch + complete.
    #[must_use]
    pub fn invocation_overhead(&self) -> Duration {
        self.latencies.submit + self.latencies.fetch + self.latencies.complete
    }

    /// Clears both rings and lifetime counters (new program run).
    pub fn reset(&mut self) {
        self.submission.clear();
        self.completion.clear();
        self.submitted_total = 0;
        self.completed_total = 0;
        self.status_updates = 0;
        self.aborted_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePair {
        QueuePair::new(4, QueueLatencies::default())
    }

    #[test]
    fn submit_fetch_complete_round_trip() {
        let mut q = qp();
        let id = q
            .submit(SimTime::ZERO, CommandKind::InvokeFunction { entry_line: 3 })
            .expect("submit");
        assert!(q.has_pending());
        let cmd = q.fetch().expect("fetch");
        assert_eq!(cmd.id, id);
        assert!(matches!(
            cmd.kind,
            CommandKind::InvokeFunction { entry_line: 3 }
        ));
        q.post_completion(Completion {
            id,
            completed_at: SimTime::from_secs(1.0),
            progress: 1.0,
        });
        let c = q.poll_completion().expect("completion");
        assert_eq!(c.id, id);
        assert_eq!(q.submitted_total(), 1);
        assert_eq!(q.completed_total(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = qp();
        let a = q.submit(SimTime::ZERO, CommandKind::Break).expect("a");
        let b = q
            .submit(
                SimTime::ZERO,
                CommandKind::LoadBinary {
                    size: Bytes::from_kib(64),
                },
            )
            .expect("b");
        assert!(a < b);
        assert_eq!(q.fetch().expect("first").id, a);
        assert_eq!(q.fetch().expect("second").id, b);
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = QueuePair::new(1, QueueLatencies::default());
        q.submit(SimTime::ZERO, CommandKind::Break)
            .expect("first fits");
        assert_eq!(
            q.submit(SimTime::ZERO, CommandKind::Break),
            Err(QueueError::SubmissionFull)
        );
    }

    #[test]
    fn empty_fetch_errors() {
        let mut q = qp();
        assert_eq!(q.fetch().unwrap_err(), QueueError::Empty);
    }

    #[test]
    fn break_detection() {
        let mut q = qp();
        q.submit(SimTime::ZERO, CommandKind::InvokeFunction { entry_line: 0 })
            .expect("submit");
        assert!(!q.has_pending_break());
        q.submit(SimTime::ZERO, CommandKind::Break)
            .expect("submit break");
        assert!(q.has_pending_break());
    }

    #[test]
    fn status_updates_are_cheap_and_counted() {
        let mut q = qp();
        let mut total = Duration::ZERO;
        for _ in 0..1000 {
            total += q.status_update();
        }
        assert_eq!(q.status_updates(), 1000);
        // 1000 updates at 200ns each = 0.2ms: "very little overhead".
        assert!(total.as_secs() < 1e-3);
    }

    #[test]
    fn invocation_overhead_is_microseconds() {
        let q = qp();
        let ov = q.invocation_overhead();
        assert!(ov.as_secs() > 0.0 && ov.as_secs() < 1e-4);
    }

    #[test]
    fn reset_clears_state() {
        let mut q = qp();
        q.submit(SimTime::ZERO, CommandKind::Break).expect("submit");
        q.reset();
        assert!(!q.has_pending());
        assert_eq!(q.submitted_total(), 0);
    }
}
