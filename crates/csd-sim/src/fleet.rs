//! A fleet of computational storage devices behind one host.
//!
//! The paper's prototype is a single CSD; "A Moveable Beast" and the
//! computational-storage surveys argue the interesting planning problem
//! appears when data spans *N* devices. [`Fleet`] models that minimal
//! scale-out platform: N independent [`System`]s — each with its own
//! flash, DMA engine, NVMe queue pair, contention traces, and
//! [`crate::fault::FaultInjector`] — attached to one host whose PCIe root
//! complex has a finite aggregate budget. Per-device surfaces are fully
//! isolated (a GC burst or crash on shard 3 is invisible to shard 5); the
//! only shared resource is the host-side link budget, which caps how fast
//! the gather phase can pull shard results in concurrently.
//!
//! The timing rule for a concurrent gather of `b_s` bytes from each
//! shard is the classic max of per-link and aggregate bottlenecks:
//!
//! ```text
//! gather_secs = max( max_s b_s / BW_link , Σ_s b_s / BW_budget )
//! ```
//!
//! and the effective per-shard bandwidth seen by a planner that assumes
//! all N shards stream at once is `min(BW_link, BW_budget / N)` — the
//! shared-link term of the shard-aware Eq. 1.

use crate::config::SystemConfig;
use crate::fault::{FaultCounters, FaultPlan};
use crate::system::System;
use crate::units::Bandwidth;

/// How many per-device links the host root complex can sustain at full
/// rate concurrently (a PCIe x16 root port over x4 device links).
pub const DEFAULT_BUDGET_LINKS: f64 = 4.0;

/// N independent CSDs sharing one host PCIe budget.
#[derive(Debug)]
pub struct Fleet {
    devices: Vec<System>,
    link: Bandwidth,
    budget: Bandwidth,
}

impl Fleet {
    /// Builds a fleet of `n` identical devices from `config`, with the
    /// default host budget of [`DEFAULT_BUDGET_LINKS`] device links.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(config: &SystemConfig, n: usize) -> Self {
        let link = config.d2h_bandwidth();
        Fleet::with_budget(config, n, link.scale(DEFAULT_BUDGET_LINKS))
    }

    /// Builds a fleet with an explicit host-side aggregate link budget.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_budget(config: &SystemConfig, n: usize, budget: Bandwidth) -> Self {
        assert!(n > 0, "a fleet needs at least one device");
        Fleet {
            devices: (0..n).map(|_| config.build()).collect(),
            link: config.d2h_bandwidth(),
            budget,
        }
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The per-device D2H link bandwidth.
    #[must_use]
    pub fn link_bandwidth(&self) -> Bandwidth {
        self.link
    }

    /// The host root-complex aggregate budget.
    #[must_use]
    pub fn shared_budget(&self) -> Bandwidth {
        self.budget
    }

    /// The bandwidth one shard effectively sees when all N stream at
    /// once: `min(link, budget / N)` — the shared-link term of Eq. 1.
    #[must_use]
    pub fn effective_shard_bandwidth(&self) -> Bandwidth {
        self.link
            .min(self.budget.scale(1.0 / self.devices.len() as f64))
    }

    /// Immutable access to device `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn device(&self, s: usize) -> &System {
        &self.devices[s]
    }

    /// Mutable access to device `s` (how the executor runs one shard).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn device_mut(&mut self, s: usize) -> &mut System {
        &mut self.devices[s]
    }

    /// Installs a fault plan on device `s` only; other shards keep their
    /// current injectors.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the plan fails validation.
    pub fn install_faults(&mut self, s: usize, plan: FaultPlan) {
        self.devices[s].install_faults(plan);
    }

    /// Seconds a concurrent gather of `per_shard_bytes[s]` from every
    /// shard takes: per-device links run in parallel, capped by the
    /// shared budget.
    #[must_use]
    pub fn gather_secs(&self, per_shard_bytes: &[u64]) -> f64 {
        let link = self.link.as_bytes_per_sec();
        let budget = self.budget.as_bytes_per_sec();
        let slowest = per_shard_bytes
            .iter()
            .map(|b| *b as f64 / link)
            .fold(0.0f64, f64::max);
        let aggregate = per_shard_bytes.iter().map(|b| *b as f64).sum::<f64>() / budget;
        slowest.max(aggregate)
    }

    /// Sum of every device's injected-fault counters.
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for d in &self.devices {
            let c = d.fault_counters();
            total.flash_read_errors += c.flash_read_errors;
            total.nvme_command_errors += c.nvme_command_errors;
            total.dma_transfer_errors += c.dma_transfer_errors;
            total.cse_crashes += c.cse_crashes;
        }
        total
    }

    /// Resets every device to time zero (re-arming each injector).
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SimTime;

    #[test]
    fn default_budget_is_four_links() {
        let cfg = SystemConfig::paper_default();
        let fleet = Fleet::new(&cfg, 4);
        let link = cfg.d2h_bandwidth().as_bytes_per_sec();
        assert_eq!(fleet.len(), 4);
        assert!((fleet.shared_budget().as_bytes_per_sec() - 4.0 * link).abs() < 1e-6);
    }

    #[test]
    fn effective_bandwidth_is_link_until_budget_saturates() {
        let cfg = SystemConfig::paper_default();
        let link = cfg.d2h_bandwidth().as_bytes_per_sec();
        for n in [1usize, 2, 4] {
            let f = Fleet::new(&cfg, n);
            assert!(
                (f.effective_shard_bandwidth().as_bytes_per_sec() - link).abs() < 1e-6,
                "n={n} should still run at full link rate"
            );
        }
        let f8 = Fleet::new(&cfg, 8);
        assert!(
            (f8.effective_shard_bandwidth().as_bytes_per_sec() - 4.0 * link / 8.0).abs() < 1e-6,
            "8 shards over a 4-link budget halve the per-shard rate"
        );
    }

    #[test]
    fn gather_is_max_of_link_and_budget_bottlenecks() {
        let cfg = SystemConfig::paper_default();
        let fleet = Fleet::new(&cfg, 8);
        let link = fleet.link_bandwidth().as_bytes_per_sec();
        let budget = fleet.shared_budget().as_bytes_per_sec();
        // One busy shard: link-bound.
        let one = vec![1_000_000_000u64, 0, 0, 0, 0, 0, 0, 0];
        assert!((fleet.gather_secs(&one) - 1e9 / link).abs() < 1e-9);
        // All shards equally busy: aggregate-bound (8 links vs 4-link budget).
        let all = vec![1_000_000_000u64; 8];
        assert!((fleet.gather_secs(&all) - 8e9 / budget).abs() < 1e-9);
        // Empty gather is free.
        assert_eq!(fleet.gather_secs(&[0; 8]), 0.0);
    }

    #[test]
    fn devices_are_independent_surfaces() {
        let cfg = SystemConfig::paper_default();
        let mut fleet = Fleet::new(&cfg, 2);
        fleet.install_faults(0, FaultPlan::none().with_crash_at(SimTime::from_secs(0.0)));
        // Crash device 0 by computing past the crash point.
        let _ = fleet
            .device_mut(0)
            .try_compute(crate::EngineKind::Cse, crate::units::Ops::new(1_000));
        assert!(fleet.device(0).cse_crashed());
        assert!(!fleet.device(1).cse_crashed(), "shard 1 must be unaffected");
        assert_eq!(fleet.fault_counters().cse_crashes, 1);
        fleet.reset();
        assert!(!fleet.device(0).cse_crashed());
        assert_eq!(fleet.device(0).now(), SimTime::ZERO);
    }
}
