//! Contention scenarios used by the paper's experiments.
//!
//! Figure 2 sweeps a *constant* CSE availability from 100 % down to 10 %
//! ("we change the available CSE time"), so only the compute engine is
//! throttled. Figure 5 stresses the CSD "by executing similar workloads
//! right after each application's ISP tasks make 50 % of their progress" —
//! competing ISP tenants contend for *both* the CSE and the internal flash
//! data path, beginning mid-run. A [`ContentionScenario`] describes either
//! shape; the execution engine installs it on the affected resources.

use crate::units::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// When the contention kicks in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Contention is present from the very start of the run.
    AtStart,
    /// Contention begins once the offloaded task reaches this fraction of
    /// its progress (line-count based; coarse).
    AtProgress(f64),
    /// Contention begins at an absolute simulated time — the precise way to
    /// express "after 50 % of the ISP work", computed from an uncontended
    /// reference run. Installed into the availability traces up front, it
    /// takes effect even mid-line.
    AtTime(SimTime),
}

/// A CSD-contention scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionScenario {
    trigger: Trigger,
    fraction: f64,
    affects_storage: bool,
    /// Absolute simulated time at which the competing tenants *leave* and
    /// availability returns to 1.0. `None` (every legacy constructor) means
    /// the contention persists to the end of the run, which is what the
    /// paper's Figures 2 and 5 model.
    recover_at: Option<SimTime>,
}

impl ContentionScenario {
    /// No contention: the CSD is fully dedicated to the ISP task (the
    /// Figure 4 condition).
    #[must_use]
    pub fn none() -> Self {
        ContentionScenario {
            trigger: Trigger::AtStart,
            fraction: 1.0,
            affects_storage: false,
            recover_at: None,
        }
    }

    /// Constant CSE availability `fraction` for the whole run (Figure 2:
    /// compute time only, the data path is untouched).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn constant(fraction: f64) -> Self {
        check_fraction(fraction);
        ContentionScenario {
            trigger: Trigger::AtStart,
            fraction,
            affects_storage: false,
            recover_at: None,
        }
    }

    /// Availability drops to `fraction` once the ISP task reaches
    /// `progress` of its offloaded lines. Competing tenants are full ISP
    /// workloads, so the flash data path degrades too (Figure 5).
    ///
    /// # Panics
    ///
    /// Panics if `progress` is outside `[0, 1]` or `fraction` outside
    /// `(0, 1]`.
    #[must_use]
    pub fn after_progress(progress: f64, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&progress),
            "progress must be in [0, 1]"
        );
        check_fraction(fraction);
        ContentionScenario {
            trigger: Trigger::AtProgress(progress),
            fraction,
            affects_storage: true,
            recover_at: None,
        }
    }

    /// Availability drops to `fraction` at the absolute simulated time
    /// `at`. Like [`ContentionScenario::after_progress`], the stress is a
    /// competing ISP tenant, so storage bandwidth degrades too.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn at_time(at: SimTime, fraction: f64) -> Self {
        check_fraction(fraction);
        ContentionScenario {
            trigger: Trigger::AtTime(at),
            fraction,
            affects_storage: true,
            recover_at: None,
        }
    }

    /// Overrides whether the scenario degrades the internal flash data
    /// path in addition to the CSE.
    #[must_use]
    pub fn with_storage_contention(mut self, affects_storage: bool) -> Self {
        self.affects_storage = affects_storage;
        self
    }

    /// Schedules the competing tenants to leave at the absolute simulated
    /// time `at`: every throttled resource returns to full availability
    /// from then on. Phase-shifting traces (drop, then recover) are how the
    /// adaptation experiment exercises bidirectional migration.
    #[must_use]
    pub fn with_recovery_at(mut self, at: SimTime) -> Self {
        self.recover_at = Some(at);
        self
    }

    /// The absolute simulated time at which availability recovers to 1.0,
    /// if the scenario recovers at all.
    #[must_use]
    pub fn recover_at(&self) -> Option<SimTime> {
        self.recover_at
    }

    /// The availability fraction once triggered.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The trigger condition.
    #[must_use]
    pub fn trigger(&self) -> Trigger {
        self.trigger
    }

    /// Whether the competing tenants also steal internal flash bandwidth.
    #[must_use]
    pub fn affects_storage(&self) -> bool {
        self.affects_storage
    }

    /// Whether this scenario changes anything at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        (self.fraction - 1.0).abs() < f64::EPSILON
    }

    /// Whether the scenario is active at the given task progress
    /// (`0.0..=1.0`). Time-triggered scenarios are installed up front and
    /// never activate through the progress path.
    #[must_use]
    pub fn active_at_progress(&self, progress: f64) -> bool {
        if self.is_none() {
            return false;
        }
        match self.trigger {
            Trigger::AtStart => true,
            Trigger::AtProgress(p) => progress >= p,
            Trigger::AtTime(_) => false,
        }
    }

    /// The availability the ISP task receives at the given progress.
    #[must_use]
    pub fn availability_at_progress(&self, progress: f64) -> f64 {
        if self.active_at_progress(progress) {
            self.fraction
        } else {
            1.0
        }
    }
}

fn check_fraction(fraction: f64) {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "availability fraction must be in (0, 1], got {fraction}"
    );
}

impl Default for ContentionScenario {
    fn default() -> Self {
        ContentionScenario::none()
    }
}

impl fmt::Display for ContentionScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "no contention");
        }
        let scope = if self.affects_storage {
            "CSE+flash"
        } else {
            "CSE"
        };
        match self.trigger {
            Trigger::AtStart => write!(f, "{}% {scope} from start", self.fraction * 100.0),
            Trigger::AtProgress(p) => {
                write!(
                    f,
                    "{}% {scope} after {}% progress",
                    self.fraction * 100.0,
                    p * 100.0
                )
            }
            Trigger::AtTime(t) => {
                write!(f, "{}% {scope} from t={t}", self.fraction * 100.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_activates() {
        let s = ContentionScenario::none();
        assert!(s.is_none());
        assert!(!s.active_at_progress(0.0));
        assert!(!s.active_at_progress(1.0));
        assert_eq!(s.availability_at_progress(0.7), 1.0);
        assert!(!s.affects_storage());
    }

    #[test]
    fn constant_is_active_immediately_and_compute_only() {
        let s = ContentionScenario::constant(0.4);
        assert!(s.active_at_progress(0.0));
        assert_eq!(s.availability_at_progress(0.0), 0.4);
        assert!(!s.affects_storage(), "Figure 2 throttles CSE time only");
    }

    #[test]
    fn progress_trigger_fires_at_threshold_and_hits_storage() {
        let s = ContentionScenario::after_progress(0.5, 0.1);
        assert!(!s.active_at_progress(0.49));
        assert!(s.active_at_progress(0.5));
        assert_eq!(s.availability_at_progress(0.25), 1.0);
        assert_eq!(s.availability_at_progress(0.75), 0.1);
        assert!(
            s.affects_storage(),
            "Figure 5 tenants are full ISP workloads"
        );
    }

    #[test]
    fn time_trigger_never_activates_via_progress() {
        let s = ContentionScenario::at_time(SimTime::from_secs(2.0), 0.5);
        assert!(!s.active_at_progress(1.0));
        assert!(matches!(s.trigger(), Trigger::AtTime(_)));
        assert!(s.affects_storage());
    }

    #[test]
    fn recovery_time_is_carried_and_defaults_to_none() {
        assert_eq!(ContentionScenario::none().recover_at(), None);
        assert_eq!(
            ContentionScenario::at_time(SimTime::from_secs(1.0), 0.5).recover_at(),
            None
        );
        let s = ContentionScenario::at_time(SimTime::from_secs(1.0), 0.5)
            .with_recovery_at(SimTime::from_secs(3.0));
        assert_eq!(s.recover_at(), Some(SimTime::from_secs(3.0)));
    }

    #[test]
    fn storage_override() {
        let s = ContentionScenario::constant(0.5).with_storage_contention(true);
        assert!(s.affects_storage());
        let s = ContentionScenario::after_progress(0.5, 0.5).with_storage_contention(false);
        assert!(!s.affects_storage());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let _ = ContentionScenario::constant(0.0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", ContentionScenario::none()), "no contention");
        assert!(format!("{}", ContentionScenario::constant(0.5)).contains("50"));
        assert!(format!("{}", ContentionScenario::after_progress(0.5, 0.1)).contains("flash"));
        assert!(format!(
            "{}",
            ContentionScenario::at_time(SimTime::from_secs(1.0), 0.5)
        )
        .contains("t="));
    }
}
