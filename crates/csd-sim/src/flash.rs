//! The NAND flash array and its background garbage collection.
//!
//! The paper's prototype CSD reaches an effective 9 GB/s when the SoC reads
//! the internal NAND array — richer than the 5 GB/s external NVMe link
//! (§IV-A). This asymmetry is the whole point of in-storage processing:
//! tasks running next to the flash receive data faster than the host can.
//!
//! Garbage collection (§II-B3, "resource contention coming from the storage
//! management workloads") is modelled as periodic windows during which a
//! fraction of the internal bandwidth is consumed by the flash translation
//! layer.

use crate::availability::AvailabilityTrace;
use crate::units::{Bandwidth, Bytes, Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Periodic garbage-collection schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcSchedule {
    /// Interval between GC window starts.
    pub period: Duration,
    /// Length of each GC window.
    pub window: Duration,
    /// Fraction of internal bandwidth *left to the ISP task* during a GC
    /// window, in `(0, 1]`.
    pub residual_fraction: f64,
}

impl GcSchedule {
    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the window is longer than the period, or the residual
    /// fraction is outside `(0, 1]`.
    #[must_use]
    pub fn new(period: Duration, window: Duration, residual_fraction: f64) -> Self {
        assert!(
            window.as_secs() <= period.as_secs(),
            "GC window must fit within its period"
        );
        assert!(
            residual_fraction > 0.0 && residual_fraction <= 1.0,
            "residual fraction must be in (0, 1]"
        );
        GcSchedule {
            period,
            window,
            residual_fraction,
        }
    }

    /// Long-run average fraction of bandwidth available to the ISP task.
    #[must_use]
    pub fn mean_availability(&self) -> f64 {
        let duty = self.window.as_secs() / self.period.as_secs();
        (1.0 - duty) + duty * self.residual_fraction
    }
}

/// Number of whole GC periods the trace materializes ahead of a request;
/// beyond the horizon the mean availability is used.
const GC_HORIZON_PERIODS: u32 = 64;

/// The CSD's internal NAND flash array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashArray {
    capacity: Bytes,
    internal_bandwidth: Bandwidth,
    gc: Option<GcSchedule>,
    contention: AvailabilityTrace,
    fault: AvailabilityTrace,
    bytes_read: Bytes,
    bytes_written: Bytes,
}

impl FlashArray {
    /// Creates a flash array of `capacity` with the given internal read
    /// bandwidth and no garbage collection.
    #[must_use]
    pub fn new(capacity: Bytes, internal_bandwidth: Bandwidth) -> Self {
        FlashArray {
            capacity,
            internal_bandwidth,
            gc: None,
            contention: AvailabilityTrace::full(),
            fault: AvailabilityTrace::full(),
            bytes_read: Bytes::ZERO,
            bytes_written: Bytes::ZERO,
        }
    }

    /// The array's capacity.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Peak internal bandwidth (no GC).
    #[must_use]
    pub fn internal_bandwidth(&self) -> Bandwidth {
        self.internal_bandwidth
    }

    /// Installs a garbage-collection schedule.
    pub fn set_gc(&mut self, gc: GcSchedule) {
        self.gc = Some(gc);
    }

    /// Removes any garbage-collection schedule.
    pub fn clear_gc(&mut self) {
        self.gc = None;
    }

    /// Installs a tenant-contention trace: competing ISP workloads sharing
    /// the internal data path steal this fraction of bandwidth (composes
    /// multiplicatively with garbage collection).
    pub fn set_contention(&mut self, trace: AvailabilityTrace) {
        self.contention = trace;
    }

    /// The active contention trace.
    #[must_use]
    pub fn contention(&self) -> &AvailabilityTrace {
        &self.contention
    }

    /// Installs an injected-fault availability trace (GC bursts from a
    /// fault plan). Unlike tenant contention, injected GC bursts are
    /// device-internal — the flash itself stalls — so they throttle the
    /// external controller port too.
    pub fn install_fault_trace(&mut self, trace: AvailabilityTrace) {
        self.fault = trace;
    }

    /// The injected-fault trace currently in force (full when no faults
    /// are installed).
    #[must_use]
    pub fn fault_trace(&self) -> &AvailabilityTrace {
        &self.fault
    }

    /// The active GC schedule, if any.
    #[must_use]
    pub fn gc(&self) -> Option<&GcSchedule> {
        self.gc.as_ref()
    }

    /// Total bytes read so far.
    #[must_use]
    pub fn bytes_read(&self) -> Bytes {
        self.bytes_read
    }

    /// Total bytes written so far.
    #[must_use]
    pub fn bytes_written(&self) -> Bytes {
        self.bytes_written
    }

    /// Builds the combined availability trace: garbage collection (if
    /// scheduled) multiplied by tenant contention and any injected
    /// fault bursts.
    fn effective_trace(&self, around: SimTime, span_hint: Duration) -> AvailabilityTrace {
        let tr = self.gc_trace(around, span_hint).product(&self.contention);
        if self.fault.is_full() {
            tr
        } else {
            tr.product(&self.fault)
        }
    }

    /// The availability trace the external controller port sees: garbage
    /// collection plus injected fault bursts (tenant contention stays on
    /// the CSE-side fabric).
    fn external_trace(&self, around: SimTime, span_hint: Duration) -> AvailabilityTrace {
        let tr = self.gc_trace(around, span_hint);
        if self.fault.is_full() {
            tr
        } else {
            tr.product(&self.fault)
        }
    }

    /// Builds the availability trace the GC schedule implies, anchored so
    /// that a window opens at every period boundary starting from t = 0.
    fn gc_trace(&self, around: SimTime, span_hint: Duration) -> AvailabilityTrace {
        match &self.gc {
            None => AvailabilityTrace::full(),
            Some(gc) => {
                let mut tr = AvailabilityTrace::full();
                let first_period = (around.as_secs() / gc.period.as_secs()).floor() as u32;
                let horizon = GC_HORIZON_PERIODS
                    .max((span_hint.as_secs() / gc.period.as_secs()).ceil() as u32 + 2);
                for k in first_period..first_period + horizon {
                    let start = SimTime::from_secs(f64::from(k) * gc.period.as_secs());
                    tr = tr
                        .with_change(start, gc.residual_fraction)
                        .with_change(start + gc.window, 1.0);
                }
                // Beyond the horizon, fall back to the long-run mean.
                let tail =
                    SimTime::from_secs(f64::from(first_period + horizon) * gc.period.as_secs());
                tr.with_change(tail, gc.mean_availability())
            }
        }
    }

    /// Time for an engine co-located with the flash (the CSE) to read
    /// `bytes` starting at `start`, without recording traffic. Subject to
    /// both garbage collection and tenant contention (competing ISP tasks
    /// share the CSE-side fabric port).
    #[must_use]
    pub fn time_to_read(&self, start: SimTime, bytes: Bytes) -> Duration {
        let effective_secs = self.internal_bandwidth.transfer_time(bytes).as_secs();
        let hint = Duration::from_secs(effective_secs * 4.0 + 1.0);
        self.effective_trace(start, hint)
            .invert(start, effective_secs)
    }

    /// Time for the *host-facing controller port* to stream `bytes`
    /// starting at `start`. Garbage collection applies (the flash itself is
    /// busy) but tenant contention does not: competing ISP tasks contend on
    /// the CSE-side fabric, while external NVMe I/O keeps its own
    /// controller share.
    #[must_use]
    pub fn time_to_read_external(&self, start: SimTime, bytes: Bytes) -> Duration {
        let effective_secs = self.internal_bandwidth.transfer_time(bytes).as_secs();
        let hint = Duration::from_secs(effective_secs * 4.0 + 1.0);
        self.external_trace(start, hint)
            .invert(start, effective_secs)
    }

    /// Reads `bytes` over the CSE-side path starting at `start`: returns
    /// the wall-clock duration and records the traffic.
    pub fn read(&mut self, start: SimTime, bytes: Bytes) -> Duration {
        let d = self.time_to_read(start, bytes);
        self.bytes_read += bytes;
        d
    }

    /// Reads `bytes` over the host-facing controller port starting at
    /// `start`: returns the wall-clock duration and records the traffic.
    pub fn read_external(&mut self, start: SimTime, bytes: Bytes) -> Duration {
        let d = self.time_to_read_external(start, bytes);
        self.bytes_read += bytes;
        d
    }

    /// Writes `bytes` starting at `start` (same bandwidth model as reads).
    pub fn write(&mut self, start: SimTime, bytes: Bytes) -> Duration {
        let d = self.time_to_read(start, bytes);
        self.bytes_written += bytes;
        d
    }

    /// Resets traffic counters.
    pub fn reset_counters(&mut self) {
        self.bytes_read = Bytes::ZERO;
        self.bytes_written = Bytes::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        FlashArray::new(Bytes::from_gib(2048), Bandwidth::from_gb_per_sec(9.0))
    }

    #[test]
    fn read_time_without_gc_is_bytes_over_bw() {
        let fl = array();
        let t = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gc_mean_availability() {
        let gc = GcSchedule::new(Duration::from_secs(1.0), Duration::from_secs(0.25), 0.2);
        // 75% of the time full, 25% at 0.2 => 0.75 + 0.05 = 0.8.
        assert!((gc.mean_availability() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn gc_slows_reads() {
        let mut fl = array();
        let base = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(18.0));
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(1.0),
            Duration::from_secs(0.5),
            0.5,
        ));
        let slowed = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(18.0));
        assert!(slowed > base, "GC must slow reads: {slowed} vs {base}");
        // Long-run mean availability is 0.75, so expect ~base/0.75.
        let ratio = slowed.as_secs() / base.as_secs();
        assert!((ratio - 1.0 / 0.75).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn read_records_traffic() {
        let mut fl = array();
        fl.read(SimTime::ZERO, Bytes::from_mib(4));
        fl.write(SimTime::ZERO, Bytes::from_mib(2));
        assert_eq!(fl.bytes_read(), Bytes::from_mib(4));
        assert_eq!(fl.bytes_written(), Bytes::from_mib(2));
        fl.reset_counters();
        assert_eq!(fl.bytes_read(), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn gc_window_longer_than_period_rejected() {
        let _ = GcSchedule::new(Duration::from_secs(1.0), Duration::from_secs(2.0), 0.5);
    }

    #[test]
    fn clear_gc_restores_peak() {
        let mut fl = array();
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(1.0),
            Duration::from_secs(0.9),
            0.1,
        ));
        fl.clear_gc();
        let t = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tenant_contention_slows_reads_and_composes_with_gc() {
        let mut fl = array();
        fl.set_contention(AvailabilityTrace::constant(0.5));
        let t = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!(
            (t.as_secs() - 2.0).abs() < 1e-9,
            "50% contention doubles: {t}"
        );
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(1.0),
            Duration::from_secs(1.0),
            0.5,
        ));
        // GC residual 0.5 everywhere x contention 0.5 = 0.25 effective.
        let t = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((t.as_secs() - 4.0).abs() < 0.1, "composed: {t}");
    }

    #[test]
    fn external_port_sees_gc_but_not_tenant_contention() {
        let mut fl = array();
        fl.set_contention(AvailabilityTrace::constant(0.1));
        let internal = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        let external = fl.time_to_read_external(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!(
            (internal.as_secs() - 10.0).abs() < 1e-6,
            "internal contended: {internal}"
        );
        assert!(
            (external.as_secs() - 1.0).abs() < 1e-6,
            "external clean: {external}"
        );
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(1.0),
            Duration::from_secs(1.0),
            0.5,
        ));
        let external = fl.time_to_read_external(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!(
            (external.as_secs() - 2.0).abs() < 0.1,
            "GC applies externally: {external}"
        );
    }

    #[test]
    fn fault_burst_throttles_both_ports() {
        let mut fl = array();
        fl.set_contention(AvailabilityTrace::constant(0.5));
        fl.install_fault_trace(
            AvailabilityTrace::full()
                .with_change(SimTime::ZERO, 0.5)
                .with_change(SimTime::from_secs(1e9), 1.0),
        );
        // Internal: contention 0.5 x burst 0.5 = 0.25 effective.
        let internal = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((internal.as_secs() - 4.0).abs() < 1e-6, "got {internal}");
        // External: burst applies (device-internal GC), contention does not.
        let external = fl.time_to_read_external(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((external.as_secs() - 2.0).abs() < 1e-6, "got {external}");
    }

    #[test]
    fn zero_length_gc_window_is_a_no_op() {
        let mut fl = array();
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(1.0),
            Duration::ZERO,
            0.5,
        ));
        // window == 0: every with_change(start, residual) is immediately
        // overridden by with_change(start + 0, 1.0), so reads run at full
        // bandwidth.
        let t = fl.time_to_read(SimTime::ZERO, Bytes::from_gb_f64(9.0));
        assert!((t.as_secs() - 1.0).abs() < 1e-9, "got {t}");
        assert!((fl.gc().unwrap().mean_availability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn read_starting_exactly_on_a_gc_boundary() {
        let mut fl = array();
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(10.0),
            Duration::from_secs(5.0),
            0.1,
        ));
        // Start exactly when a window opens: the whole read is degraded.
        let t = fl.time_to_read(SimTime::from_secs(10.0), Bytes::from_gb_f64(0.9));
        assert!((t.as_secs() - 1.0).abs() < 1e-9, "got {t}");
        // Start exactly when the window closes: the read is clean.
        let t = fl.time_to_read(SimTime::from_secs(15.0), Bytes::from_gb_f64(0.9));
        assert!((t.as_secs() - 0.1).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn read_starting_inside_gc_window_is_slower() {
        let mut fl = array();
        fl.set_gc(GcSchedule::new(
            Duration::from_secs(10.0),
            Duration::from_secs(5.0),
            0.1,
        ));
        // Small read fully inside the first GC window.
        let t = fl.time_to_read(SimTime::from_secs(1.0), Bytes::from_gb_f64(0.9));
        assert!(
            (t.as_secs() - 1.0).abs() < 1e-9,
            "0.1s of work at 10% = 1s, got {t}"
        );
    }
}
