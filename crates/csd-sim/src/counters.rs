//! Performance counters.
//!
//! ActivePy consults device performance counters twice: once during
//! calibration ("querying the CSD's performance counters, e.g. retired
//! instructions per cycle", §III-A) and continuously during runtime
//! monitoring ("ActivePy detects the second case by checking the throughput
//! of the CSD code", §III-D). [`PerfCounters`] accumulates retired
//! operations and wall-clock busy time so both uses can compute an
//! instructions-per-cycle (IPC) figure.

use crate::units::{Duration, Ops};
use serde::{Deserialize, Serialize};

/// Accumulated performance counters for one compute engine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    retired: Ops,
    busy: Duration,
}

impl PerfCounters {
    /// Fresh counters with nothing retired.
    #[must_use]
    pub fn new() -> Self {
        PerfCounters::default()
    }

    /// Records `ops` retired over `wall` of wall-clock time.
    pub fn record(&mut self, ops: Ops, wall: Duration) {
        self.retired += ops;
        self.busy += wall;
    }

    /// Total retired operations.
    #[must_use]
    pub fn retired(&self) -> Ops {
        self.retired
    }

    /// Total wall-clock time spent executing.
    #[must_use]
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// Achieved throughput in operations per second of wall-clock time, or
    /// `None` if nothing has executed yet.
    ///
    /// On a contended engine this falls below the nominal rate in proportion
    /// to the availability the task actually received — exactly the signal
    /// the paper's monitor keys on.
    #[must_use]
    pub fn achieved_rate(&self) -> Option<f64> {
        if self.busy.is_zero() {
            None
        } else {
            Some(self.retired.as_f64() / self.busy.as_secs())
        }
    }

    /// Instructions per cycle given the engine's clock `freq_hz`.
    #[must_use]
    pub fn ipc(&self, freq_hz: f64) -> Option<f64> {
        self.achieved_rate().map(|r| r / freq_hz)
    }

    /// Counters observed since `snapshot` was taken (a windowed delta, as
    /// the runtime monitor samples).
    #[must_use]
    pub fn delta_since(&self, snapshot: &PerfCounters) -> PerfCounters {
        PerfCounters {
            retired: self.retired.saturating_sub(snapshot.retired),
            busy: self.busy - snapshot.busy,
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = PerfCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counters_have_no_rate() {
        assert_eq!(PerfCounters::new().achieved_rate(), None);
    }

    #[test]
    fn achieved_rate_is_ops_over_wall() {
        let mut c = PerfCounters::new();
        c.record(Ops::new(1_000_000), Duration::from_secs(0.5));
        assert!((c.achieved_rate().expect("rate") - 2e6).abs() < 1e-6);
    }

    #[test]
    fn ipc_divides_by_frequency() {
        let mut c = PerfCounters::new();
        c.record(Ops::new(3_600_000_000), Duration::from_secs(1.0));
        let ipc = c.ipc(3.6e9).expect("ipc");
        assert!((ipc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delta_since_windows_the_counters() {
        let mut c = PerfCounters::new();
        c.record(Ops::new(100), Duration::from_secs(1.0));
        let snap = c;
        c.record(Ops::new(50), Duration::from_secs(2.0));
        let d = c.delta_since(&snap);
        assert_eq!(d.retired(), Ops::new(50));
        assert!((d.busy().as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = PerfCounters::new();
        c.record(Ops::new(5), Duration::from_secs(1.0));
        c.reset();
        assert_eq!(c.retired(), Ops::ZERO);
        assert!(c.busy().is_zero());
    }
}
