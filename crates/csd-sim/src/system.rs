//! The assembled system: one clock, two engines, flash, links, queues,
//! DMA, and the shared address space.
//!
//! [`System`] is the facade the execution layers drive. Every operation
//! advances the simulated clock and records traffic/counters, so a run's
//! end-to-end latency is simply `sys.now()` when it finishes.

use crate::config::SystemConfig;
use crate::dma::{Direction, DmaEngine};
use crate::engine::{ComputeEngine, EngineKind};
use crate::flash::FlashArray;
use crate::link::Path;
use crate::memory::SharedAddressSpace;
use crate::nvme::QueuePair;
use crate::units::{Bandwidth, Bytes, Duration, Ops, SimTime};
use serde::{Deserialize, Serialize};

/// A complete simulated platform instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    config: SystemConfig,
    clock: SimTime,
    host: ComputeEngine,
    cse: ComputeEngine,
    flash: FlashArray,
    d2h_path: Path,
    queue: QueuePair,
    dma: DmaEngine,
    memory: SharedAddressSpace,
}

impl System {
    /// Assembles a system from its parts; use [`SystemConfig::build`]
    /// instead of calling this directly.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub(crate) fn from_parts(
        config: SystemConfig,
        host: ComputeEngine,
        cse: ComputeEngine,
        flash: FlashArray,
        d2h_path: Path,
        queue: QueuePair,
        dma: DmaEngine,
        memory: SharedAddressSpace,
    ) -> Self {
        System {
            config,
            clock: SimTime::ZERO,
            host,
            cse,
            flash,
            d2h_path,
            queue,
            dma,
            memory,
        }
    }

    /// Convenience constructor for the paper's platform.
    #[must_use]
    pub fn paper_default() -> Self {
        SystemConfig::paper_default().build()
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the clock by `d` without attributing work to any resource
    /// (e.g. fixed software overheads such as compilation).
    pub fn advance(&mut self, d: Duration) {
        self.clock += d;
    }

    /// The compute engine of the given kind.
    #[must_use]
    pub fn engine(&self, kind: EngineKind) -> &ComputeEngine {
        match kind {
            EngineKind::Host => &self.host,
            EngineKind::Cse => &self.cse,
        }
    }

    /// Mutable access to a compute engine (e.g. to install contention).
    #[must_use]
    pub fn engine_mut(&mut self, kind: EngineKind) -> &mut ComputeEngine {
        match kind {
            EngineKind::Host => &mut self.host,
            EngineKind::Cse => &mut self.cse,
        }
    }

    /// The flash array.
    #[must_use]
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Mutable access to the flash array.
    #[must_use]
    pub fn flash_mut(&mut self) -> &mut FlashArray {
        &mut self.flash
    }

    /// The NVMe queue pair.
    #[must_use]
    pub fn queue(&self) -> &QueuePair {
        &self.queue
    }

    /// Mutable access to the queue pair.
    #[must_use]
    pub fn queue_mut(&mut self) -> &mut QueuePair {
        &mut self.queue
    }

    /// The shared address space.
    #[must_use]
    pub fn memory(&self) -> &SharedAddressSpace {
        &self.memory
    }

    /// Mutable access to the shared address space.
    #[must_use]
    pub fn memory_mut(&mut self) -> &mut SharedAddressSpace {
        &mut self.memory
    }

    /// The DMA engine.
    #[must_use]
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// The device-to-host path (for inspection).
    #[must_use]
    pub fn d2h_path(&self) -> &Path {
        &self.d2h_path
    }

    /// Effective `BW_D2H` for Eq. 1 estimates.
    #[must_use]
    pub fn d2h_bandwidth(&self) -> Bandwidth {
        self.config.d2h_bandwidth()
    }

    /// Executes `ops` on `engine`, advancing the clock; returns the
    /// wall-clock duration.
    pub fn compute(&mut self, engine: EngineKind, ops: Ops) -> Duration {
        let start = self.clock;
        let wall = self.engine_mut(engine).execute(start, ops);
        self.clock += wall;
        wall
    }

    /// Streams `bytes` of stored data to `engine`, advancing the clock.
    ///
    /// The CSE reads over the rich internal interconnect; the host streams
    /// through flash → NVMe → PCIe, pipelined, so the slowest stage
    /// dominates.
    pub fn storage_read(&mut self, engine: EngineKind, bytes: Bytes) -> Duration {
        let start = self.clock;
        let wall = match engine {
            EngineKind::Cse => self.flash.read(start, bytes),
            EngineKind::Host => {
                let flash_time = self.flash.read_external(start, bytes);
                let link_time = self.d2h_path.transfer(start, bytes);
                flash_time.max(link_time)
            }
        };
        self.clock += wall;
        wall
    }

    /// Moves `bytes` between host DRAM and device DRAM over the
    /// interconnect via DMA, advancing the clock.
    pub fn transfer(&mut self, dir: Direction, bytes: Bytes) -> Duration {
        let start = self.clock;
        let wall = self.dma.transfer(&mut self.d2h_path, start, dir, bytes);
        self.clock += wall;
        wall
    }

    /// Charges one CSD function-invocation overhead (submit + fetch +
    /// complete) to the clock.
    pub fn charge_invocation(&mut self) -> Duration {
        let d = self.queue.invocation_overhead();
        self.clock += d;
        d
    }

    /// Charges one end-of-line status update to the clock.
    pub fn charge_status_update(&mut self) -> Duration {
        let d = self.queue.status_update();
        self.clock += d;
        d
    }

    /// Resets the clock and all counters for a fresh run on the same
    /// platform (memory allocations are also dropped).
    pub fn reset(&mut self) {
        self.clock = SimTime::ZERO;
        self.host.reset_counters();
        self.cse.reset_counters();
        self.flash.reset_counters();
        self.d2h_path.reset_counters();
        self.queue.reset();
        self.dma.reset_counters();
        self.memory = SharedAddressSpace::new(self.config.host_dram, self.config.device_dram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_advances_clock() {
        let mut sys = System::paper_default();
        let rate = sys.engine(EngineKind::Host).nominal_rate().as_ops_per_sec();
        let wall = sys.compute(EngineKind::Host, Ops::new(rate as u64));
        assert!((wall.as_secs() - 1.0).abs() < 1e-6);
        assert!((sys.now().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cse_storage_read_uses_internal_bandwidth() {
        let mut sys = System::paper_default();
        let wall = sys.storage_read(EngineKind::Cse, Bytes::from_gb_f64(9.0));
        assert!(
            (wall.as_secs() - 1.0).abs() < 1e-6,
            "internal 9 GB/s, got {wall}"
        );
    }

    #[test]
    fn host_storage_read_is_link_bound() {
        let mut sys = System::paper_default();
        let wall = sys.storage_read(EngineKind::Host, Bytes::from_gb_f64(4.0));
        // PCIe budget 4 GB/s is the bottleneck => ~1s.
        assert!((wall.as_secs() - 1.0).abs() < 1e-3, "got {wall}");
    }

    #[test]
    fn internal_read_beats_external_read() {
        let mut a = System::paper_default();
        let mut b = System::paper_default();
        let cse = a.storage_read(EngineKind::Cse, Bytes::from_gb_f64(8.0));
        let host = b.storage_read(EngineKind::Host, Bytes::from_gb_f64(8.0));
        assert!(cse < host, "ISP premise: {cse} must beat {host}");
    }

    #[test]
    fn transfer_charges_dma_and_clock() {
        let mut sys = System::paper_default();
        let wall = sys.transfer(Direction::DeviceToHost, Bytes::from_gb_f64(4.0));
        assert!(wall.as_secs() > 0.99 && wall.as_secs() < 1.01, "got {wall}");
        assert_eq!(sys.dma().d2h_bytes(), Bytes::from_gb_f64(4.0));
    }

    #[test]
    fn invocation_and_status_overheads_are_small() {
        let mut sys = System::paper_default();
        let inv = sys.charge_invocation();
        let st = sys.charge_status_update();
        assert!(inv.as_secs() < 1e-4);
        assert!(st.as_secs() < 1e-6);
        assert!((sys.now().as_secs() - (inv.as_secs() + st.as_secs())).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut sys = System::paper_default();
        sys.compute(EngineKind::Cse, Ops::new(1_000_000));
        sys.transfer(Direction::HostToDevice, Bytes::from_mib(1));
        sys.reset();
        assert_eq!(sys.now(), SimTime::ZERO);
        assert_eq!(sys.engine(EngineKind::Cse).counters().retired(), Ops::ZERO);
        assert_eq!(sys.dma().transfers(), 0);
    }

    #[test]
    fn contention_on_cse_slows_compute() {
        let mut sys = System::paper_default();
        let ops = Ops::new(sys.engine(EngineKind::Cse).nominal_rate().as_ops_per_sec() as u64);
        let mut degraded = sys.clone();
        degraded
            .engine_mut(EngineKind::Cse)
            .degrade_from(SimTime::ZERO, 0.1);
        let base = sys.compute(EngineKind::Cse, ops);
        let slow = degraded.compute(EngineKind::Cse, ops);
        assert!((slow.as_secs() / base.as_secs() - 10.0).abs() < 1e-3);
    }
}
