//! The assembled system: one clock, two engines, flash, links, queues,
//! DMA, and the shared address space.
//!
//! [`System`] is the facade the execution layers drive. Every operation
//! advances the simulated clock and records traffic/counters, so a run's
//! end-to-end latency is simply `sys.now()` when it finishes.

use crate::config::SystemConfig;
use crate::dma::{Direction, DmaEngine};
use crate::engine::{ComputeEngine, EngineKind};
use crate::fault::{DeviceFault, FaultCounters, FaultInjector, FaultPlan};
use crate::flash::FlashArray;
use crate::link::Path;
use crate::memory::SharedAddressSpace;
use crate::nvme::QueuePair;
use crate::units::{Bandwidth, Bytes, Duration, Ops, SimTime};
use serde::{Deserialize, Serialize};

/// A complete simulated platform instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    config: SystemConfig,
    clock: SimTime,
    host: ComputeEngine,
    cse: ComputeEngine,
    flash: FlashArray,
    d2h_path: Path,
    queue: QueuePair,
    dma: DmaEngine,
    memory: SharedAddressSpace,
    faults: Option<FaultInjector>,
}

impl System {
    /// Assembles a system from its parts; use [`SystemConfig::build`]
    /// instead of calling this directly.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub(crate) fn from_parts(
        config: SystemConfig,
        host: ComputeEngine,
        cse: ComputeEngine,
        flash: FlashArray,
        d2h_path: Path,
        queue: QueuePair,
        dma: DmaEngine,
        memory: SharedAddressSpace,
    ) -> Self {
        System {
            config,
            clock: SimTime::ZERO,
            host,
            cse,
            flash,
            d2h_path,
            queue,
            dma,
            memory,
            faults: None,
        }
    }

    /// Convenience constructor for the paper's platform.
    #[must_use]
    pub fn paper_default() -> Self {
        SystemConfig::paper_default().build()
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the clock by `d` without attributing work to any resource
    /// (e.g. fixed software overheads such as compilation).
    pub fn advance(&mut self, d: Duration) {
        self.clock += d;
    }

    /// The compute engine of the given kind.
    #[must_use]
    pub fn engine(&self, kind: EngineKind) -> &ComputeEngine {
        match kind {
            EngineKind::Host => &self.host,
            EngineKind::Cse => &self.cse,
        }
    }

    /// Mutable access to a compute engine (e.g. to install contention).
    #[must_use]
    pub fn engine_mut(&mut self, kind: EngineKind) -> &mut ComputeEngine {
        match kind {
            EngineKind::Host => &mut self.host,
            EngineKind::Cse => &mut self.cse,
        }
    }

    /// The flash array.
    #[must_use]
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Mutable access to the flash array.
    #[must_use]
    pub fn flash_mut(&mut self) -> &mut FlashArray {
        &mut self.flash
    }

    /// The NVMe queue pair.
    #[must_use]
    pub fn queue(&self) -> &QueuePair {
        &self.queue
    }

    /// Mutable access to the queue pair.
    #[must_use]
    pub fn queue_mut(&mut self) -> &mut QueuePair {
        &mut self.queue
    }

    /// The shared address space.
    #[must_use]
    pub fn memory(&self) -> &SharedAddressSpace {
        &self.memory
    }

    /// Mutable access to the shared address space.
    #[must_use]
    pub fn memory_mut(&mut self) -> &mut SharedAddressSpace {
        &mut self.memory
    }

    /// The DMA engine.
    #[must_use]
    pub fn dma(&self) -> &DmaEngine {
        &self.dma
    }

    /// The device-to-host path (for inspection).
    #[must_use]
    pub fn d2h_path(&self) -> &Path {
        &self.d2h_path
    }

    /// Effective `BW_D2H` for Eq. 1 estimates.
    #[must_use]
    pub fn d2h_bandwidth(&self) -> Bandwidth {
        self.config.d2h_bandwidth()
    }

    /// Executes `ops` on `engine`, advancing the clock; returns the
    /// wall-clock duration.
    pub fn compute(&mut self, engine: EngineKind, ops: Ops) -> Duration {
        let start = self.clock;
        let wall = self.engine_mut(engine).execute(start, ops);
        self.clock += wall;
        wall
    }

    /// Streams `bytes` of stored data to `engine`, advancing the clock.
    ///
    /// The CSE reads over the rich internal interconnect; the host streams
    /// through flash → NVMe → PCIe, pipelined, so the slowest stage
    /// dominates.
    pub fn storage_read(&mut self, engine: EngineKind, bytes: Bytes) -> Duration {
        let start = self.clock;
        let wall = match engine {
            EngineKind::Cse => self.flash.read(start, bytes),
            EngineKind::Host => {
                let flash_time = self.flash.read_external(start, bytes);
                let link_time = self.d2h_path.transfer(start, bytes);
                flash_time.max(link_time)
            }
        };
        self.clock += wall;
        wall
    }

    /// Moves `bytes` between host DRAM and device DRAM over the
    /// interconnect via DMA, advancing the clock.
    pub fn transfer(&mut self, dir: Direction, bytes: Bytes) -> Duration {
        let start = self.clock;
        let wall = self.dma.transfer(&mut self.d2h_path, start, dir, bytes);
        self.clock += wall;
        wall
    }

    /// Installs a fault plan: builds the injector and hangs the plan's GC
    /// burst trace on both the CSE and the flash array.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if let Err(msg) = plan.validate() {
            panic!("invalid fault plan: {msg}");
        }
        let bursts = plan.burst_trace();
        self.cse.install_fault_trace(bursts.clone());
        self.flash.install_fault_trace(bursts);
        self.faults = Some(FaultInjector::new(plan));
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Injection totals (all zero when no plan is installed).
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map_or_else(FaultCounters::default, FaultInjector::counters)
    }

    /// Whether the hard CSE crash has been observed.
    #[must_use]
    pub fn cse_crashed(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultInjector::crashed)
    }

    /// Charges the fault-detection latency for `fault` to the clock and
    /// returns it, so callers can propagate the error.
    fn charge_fault(&mut self, fault: DeviceFault) -> DeviceFault {
        if let Some(inj) = &self.faults {
            self.clock += inj.plan().detect_latency;
        }
        fault
    }

    /// Fallible [`System::storage_read`]: CSE-side reads roll the
    /// injected flash error probability (and observe the hard crash)
    /// before any data moves. Host-side reads use the external
    /// controller port, which has no injected failure mode — GC bursts
    /// slow it, but it does not error.
    ///
    /// # Errors
    ///
    /// Returns the injected [`DeviceFault`] with the detection latency
    /// already charged to the clock; no bytes are read.
    pub fn try_storage_read(
        &mut self,
        engine: EngineKind,
        bytes: Bytes,
    ) -> Result<Duration, DeviceFault> {
        if engine == EngineKind::Cse {
            if let Some(inj) = &mut self.faults {
                if let Some(fault) = inj.roll_flash_read(self.clock) {
                    return Err(self.charge_fault(fault));
                }
            }
        }
        Ok(self.storage_read(engine, bytes))
    }

    /// Fallible [`System::compute`]: CSE-side compute observes the hard
    /// crash (it has no transient failure mode of its own).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceFault::CseCrash`] with the detection latency
    /// charged; no operations retire.
    pub fn try_compute(&mut self, engine: EngineKind, ops: Ops) -> Result<Duration, DeviceFault> {
        if engine == EngineKind::Cse {
            if let Some(inj) = &mut self.faults {
                if let Some(fault) = inj.roll_compute(self.clock) {
                    return Err(self.charge_fault(fault));
                }
            }
        }
        Ok(self.compute(engine, ops))
    }

    /// Fallible [`System::transfer`]: rolls the injected DMA error
    /// probability. DMA is controller-side and survives a CSE crash, so
    /// the only possible fault here is the transient
    /// [`DeviceFault::DmaTransfer`].
    ///
    /// # Errors
    ///
    /// Returns the injected fault with the detection latency charged;
    /// no payload moves (the aborted attempt is counted on the DMA
    /// engine).
    pub fn try_transfer(&mut self, dir: Direction, bytes: Bytes) -> Result<Duration, DeviceFault> {
        if let Some(inj) = &mut self.faults {
            if let Some(fault) = inj.roll_dma(self.clock) {
                self.dma.record_fault();
                return Err(self.charge_fault(fault));
            }
        }
        Ok(self.transfer(dir, bytes))
    }

    /// Rolls the injected NVMe command error (and the hard crash) for
    /// one command attempt, without touching the ring. Callers perform
    /// the actual submit/fetch on success, so the fault-free path is
    /// byte-identical to the infallible one.
    ///
    /// # Errors
    ///
    /// Returns the injected fault with the detection latency charged;
    /// the aborted attempt is counted on the queue pair.
    pub fn try_nvme_command(&mut self) -> Result<(), DeviceFault> {
        if let Some(inj) = &mut self.faults {
            if let Some(fault) = inj.roll_nvme(self.clock) {
                self.queue.record_aborted();
                return Err(self.charge_fault(fault));
            }
        }
        Ok(())
    }

    /// Charges one CSD function-invocation overhead (submit + fetch +
    /// complete) to the clock.
    pub fn charge_invocation(&mut self) -> Duration {
        let d = self.queue.invocation_overhead();
        self.clock += d;
        d
    }

    /// Charges one end-of-line status update to the clock.
    pub fn charge_status_update(&mut self) -> Duration {
        let d = self.queue.status_update();
        self.clock += d;
        d
    }

    /// Resets the clock and all counters for a fresh run on the same
    /// platform (memory allocations are also dropped).
    pub fn reset(&mut self) {
        self.clock = SimTime::ZERO;
        self.host.reset_counters();
        self.cse.reset_counters();
        self.flash.reset_counters();
        self.d2h_path.reset_counters();
        self.queue.reset();
        self.dma.reset_counters();
        self.memory = SharedAddressSpace::new(self.config.host_dram, self.config.device_dram);
        // The injector rewinds to the start of its PRNG stream so a
        // fresh run replays the identical fault trace (burst traces on
        // the engines are static and stay installed).
        if let Some(inj) = &mut self.faults {
            inj.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_advances_clock() {
        let mut sys = System::paper_default();
        let rate = sys.engine(EngineKind::Host).nominal_rate().as_ops_per_sec();
        let wall = sys.compute(EngineKind::Host, Ops::new(rate as u64));
        assert!((wall.as_secs() - 1.0).abs() < 1e-6);
        assert!((sys.now().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cse_storage_read_uses_internal_bandwidth() {
        let mut sys = System::paper_default();
        let wall = sys.storage_read(EngineKind::Cse, Bytes::from_gb_f64(9.0));
        assert!(
            (wall.as_secs() - 1.0).abs() < 1e-6,
            "internal 9 GB/s, got {wall}"
        );
    }

    #[test]
    fn host_storage_read_is_link_bound() {
        let mut sys = System::paper_default();
        let wall = sys.storage_read(EngineKind::Host, Bytes::from_gb_f64(4.0));
        // PCIe budget 4 GB/s is the bottleneck => ~1s.
        assert!((wall.as_secs() - 1.0).abs() < 1e-3, "got {wall}");
    }

    #[test]
    fn internal_read_beats_external_read() {
        let mut a = System::paper_default();
        let mut b = System::paper_default();
        let cse = a.storage_read(EngineKind::Cse, Bytes::from_gb_f64(8.0));
        let host = b.storage_read(EngineKind::Host, Bytes::from_gb_f64(8.0));
        assert!(cse < host, "ISP premise: {cse} must beat {host}");
    }

    #[test]
    fn transfer_charges_dma_and_clock() {
        let mut sys = System::paper_default();
        let wall = sys.transfer(Direction::DeviceToHost, Bytes::from_gb_f64(4.0));
        assert!(wall.as_secs() > 0.99 && wall.as_secs() < 1.01, "got {wall}");
        assert_eq!(sys.dma().d2h_bytes(), Bytes::from_gb_f64(4.0));
    }

    #[test]
    fn invocation_and_status_overheads_are_small() {
        let mut sys = System::paper_default();
        let inv = sys.charge_invocation();
        let st = sys.charge_status_update();
        assert!(inv.as_secs() < 1e-4);
        assert!(st.as_secs() < 1e-6);
        assert!((sys.now().as_secs() - (inv.as_secs() + st.as_secs())).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut sys = System::paper_default();
        sys.compute(EngineKind::Cse, Ops::new(1_000_000));
        sys.transfer(Direction::HostToDevice, Bytes::from_mib(1));
        sys.reset();
        assert_eq!(sys.now(), SimTime::ZERO);
        assert_eq!(sys.engine(EngineKind::Cse).counters().retired(), Ops::ZERO);
        assert_eq!(sys.dma().transfers(), 0);
    }

    #[test]
    fn try_ops_without_faults_match_infallible_ops() {
        let mut a = System::paper_default();
        let mut b = System::paper_default();
        let d1 = a.storage_read(EngineKind::Cse, Bytes::from_mib(64));
        let d2 = a.compute(EngineKind::Cse, Ops::new(1_000_000));
        let d3 = a.transfer(Direction::DeviceToHost, Bytes::from_mib(8));
        assert_eq!(
            b.try_storage_read(EngineKind::Cse, Bytes::from_mib(64)),
            Ok(d1)
        );
        assert_eq!(b.try_compute(EngineKind::Cse, Ops::new(1_000_000)), Ok(d2));
        assert_eq!(
            b.try_transfer(Direction::DeviceToHost, Bytes::from_mib(8)),
            Ok(d3)
        );
        assert_eq!(b.try_nvme_command(), Ok(()));
        assert_eq!(a.now(), b.now());
        assert_eq!(b.fault_counters(), crate::fault::FaultCounters::default());
    }

    #[test]
    fn injected_faults_charge_detection_latency_and_count() {
        let mut sys = System::paper_default();
        sys.install_faults(
            crate::fault::FaultPlan::none()
                .with_seed(3)
                .with_dma_error_prob(0.5),
        );
        let mut faults = 0;
        let mut t_before;
        for _ in 0..50 {
            t_before = sys.now();
            if sys
                .try_transfer(Direction::DeviceToHost, Bytes::from_mib(1))
                .is_err()
            {
                faults += 1;
                let charged = sys.now().duration_since(t_before);
                assert!((charged.as_secs() - 50e-6).abs() < 1e-12);
            }
        }
        assert!(faults > 0, "p=0.5 over 50 transfers");
        assert_eq!(sys.fault_counters().dma_transfer_errors, faults);
        assert_eq!(sys.dma().faulted_transfers(), faults);
    }

    #[test]
    fn crash_fails_cse_side_but_not_dma() {
        let mut sys = System::paper_default();
        sys.install_faults(
            crate::fault::FaultPlan::none().with_crash_at(crate::units::SimTime::ZERO),
        );
        assert!(sys
            .try_storage_read(EngineKind::Cse, Bytes::from_mib(1))
            .is_err());
        assert!(sys.cse_crashed());
        assert!(sys.try_compute(EngineKind::Cse, Ops::new(100)).is_err());
        assert!(sys.try_nvme_command().is_err());
        // Host-side and DMA paths keep working so migration can drain.
        assert!(sys
            .try_storage_read(EngineKind::Host, Bytes::from_mib(1))
            .is_ok());
        assert!(sys.try_compute(EngineKind::Host, Ops::new(100)).is_ok());
        assert!(sys
            .try_transfer(Direction::DeviceToHost, Bytes::from_mib(1))
            .is_ok());
        assert_eq!(sys.fault_counters().cse_crashes, 1);
    }

    #[test]
    fn reset_rearms_the_injector_for_identical_replay() {
        let mut sys = System::paper_default();
        sys.install_faults(
            crate::fault::FaultPlan::none()
                .with_seed(9)
                .with_flash_read_error_prob(0.4),
        );
        let run = |sys: &mut System| -> Vec<bool> {
            (0..100)
                .map(|_| {
                    sys.try_storage_read(EngineKind::Cse, Bytes::from_mib(1))
                        .is_err()
                })
                .collect()
        };
        let first = run(&mut sys);
        sys.reset();
        let second = run(&mut sys);
        assert_eq!(first, second);
        assert!(first.iter().any(|&f| f), "p=0.4 over 100 reads");
    }

    #[test]
    fn installed_burst_trace_slows_cse_and_flash() {
        let mut sys = System::paper_default();
        let base_read = sys
            .clone()
            .storage_read(EngineKind::Cse, Bytes::from_gb_f64(1.0));
        sys.install_faults(crate::fault::FaultPlan::none().with_gc_burst(
            SimTime::ZERO,
            Duration::from_secs(1e6),
            0.5,
        ));
        let slowed = sys.storage_read(EngineKind::Cse, Bytes::from_gb_f64(1.0));
        assert!(
            (slowed.as_secs() / base_read.as_secs() - 2.0).abs() < 1e-6,
            "burst halves flash bandwidth: {slowed} vs {base_read}"
        );
    }

    #[test]
    fn contention_on_cse_slows_compute() {
        let mut sys = System::paper_default();
        let ops = Ops::new(sys.engine(EngineKind::Cse).nominal_rate().as_ops_per_sec() as u64);
        let mut degraded = sys.clone();
        degraded
            .engine_mut(EngineKind::Cse)
            .degrade_from(SimTime::ZERO, 0.1);
        let base = sys.compute(EngineKind::Cse, ops);
        let slow = degraded.compute(EngineKind::Cse, ops);
        assert!((slow.as_secs() / base.as_secs() - 10.0).abs() < 1e-3);
    }
}
