//! Offload plans and the keyed plan cache.
//!
//! Planning — sampling at the paper's down-scales, curve fitting,
//! calibration, Eq.1 estimation, and Algorithm 1 — depends only on the
//! program, the workload's input generator, the platform
//! [`SystemConfig`], and the planning-relevant runtime options (sampling
//! scales and cost-model constants). It does *not* depend on the
//! contention scenario, the monitoring policy, or preemption timing:
//! those only shape execution. [`OffloadPlan`] captures the full planning
//! product once, so every execution variant of the same (workload,
//! platform) pair — contended, uncontended, with or without migration —
//! replays it instead of re-sampling.
//!
//! [`PlanCache`] keys plans by workload name plus a fingerprint of the
//! platform config and planning options, computes misses under the cache
//! lock so each key is planned exactly once even under concurrent sweeps,
//! and counts hits, misses, and host wall-clock spent planning.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::assign::Assignment;
use crate::error::Result;
use crate::estimate::{Calibration, LineEstimate};
use crate::fit::LinePrediction;
use crate::persist::WarmSeed;
use crate::profile::{ProfileKey, ProfileRecorder, ProfileStore};
use crate::runtime::ActivePy;
use crate::sampling::{InputSource, SamplingReport};
use crate::shard::{derive_sharded_plan, ShardedPlan};
use alang::builtins::Storage;
use alang::shard::ShardMap;
use alang::{LoweredProgram, Program};
use csd_sim::fleet::DEFAULT_BUDGET_LINKS;
use csd_sim::SystemConfig;

/// Host wall-clock spent in each planning phase, in nanoseconds.
///
/// These are *real* (measurement-host) times for the cache's bookkeeping,
/// distinct from the simulated seconds charged to the virtual clock
/// (`sampling_secs` / `compile_secs` on [`OffloadPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanTimings {
    /// Sampling runs over the down-scaled inputs.
    pub sampling_nanos: u64,
    /// Complexity fitting and full-scale extrapolation.
    pub fit_nanos: u64,
    /// Calibration, copy-elimination analysis, Eq.1 estimation, and
    /// Algorithm 1 assignment.
    pub assign_nanos: u64,
    /// Materializing the full-scale input.
    pub materialize_nanos: u64,
}

impl PlanTimings {
    /// Total planning wall-clock in nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.sampling_nanos + self.fit_nanos + self.assign_nanos + self.materialize_nanos
    }
}

/// The complete product of the planning half of the pipeline.
///
/// Everything needed to execute under any contention scenario: the
/// program, the fitted predictions and estimates, the Algorithm-1
/// assignment, the simulated pipeline overheads, and the materialized
/// full-scale input.
#[derive(Debug, Clone)]
pub struct OffloadPlan {
    /// The planned program.
    pub program: Program,
    /// The program lowered to register bytecode with this plan's
    /// copy-elimination flags baked in — generated once while planning,
    /// reused by every execution of the plan.
    pub lowered: LoweredProgram,
    /// Raw sampling measurements at the down-scales.
    pub sampling: SamplingReport,
    /// Full-scale predictions with their fitted curves.
    pub predictions: Vec<LinePrediction>,
    /// The calibrated CSE-slowdown constant.
    pub calibration: Calibration,
    /// Per-line copy-elimination decisions for the generated code.
    pub copy_elim: Vec<bool>,
    /// Per-line estimates fed to Algorithm 1 and the monitor.
    pub estimates: Vec<LineEstimate>,
    /// The Algorithm-1 assignment.
    pub assignment: Assignment,
    /// Simulated seconds spent in the sampling phase.
    pub sampling_secs: f64,
    /// Simulated seconds spent generating code.
    pub compile_secs: f64,
    /// The materialized full-scale input.
    pub full_storage: Storage,
    /// Host wall-clock spent building this plan.
    pub timings: PlanTimings,
    /// Per-line Eq. 1 terms exactly as Algorithm 1 consumed them — the
    /// audit layer's capture ([`crate::audit::capture_terms`]). Appended
    /// last so the field prefix existing constructors name is unchanged.
    pub eq1: Vec<crate::audit::Eq1Term>,
}

/// Snapshot of a [`PlanCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Cached plans refitted from a newer measured profile.
    pub refits: u64,
    /// Host wall-clock nanoseconds spent building plans.
    pub planning_nanos: u64,
}

impl PlanCacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type PlanKey = ProfileKey;

/// A cached plan plus the profile version it was (re)fitted at.
///
/// `generation` 0 is the cold, sampling-only plan; every refit from a
/// newer [`crate::profile::WorkloadProfile`] evicts the entry and stamps
/// it with the profile version it blended in, so a plan is refitted at
/// most once per recorded run no matter how many lookups race.
#[derive(Debug, Clone)]
struct CachedPlan {
    plan: Arc<OffloadPlan>,
    generation: u64,
}

/// A sharded-plan key extends the base key with the [`ShardMap`]
/// fingerprint, which covers shard count, bounds, strategy, and the set
/// of sharded sources — so an N=1 and an N=4 plan (or two different hash
/// seeds over the same rows) can never collide.
type ShardedPlanKey = (String, u64, u64);

/// A thread-safe cache of [`OffloadPlan`]s keyed by workload name and a
/// fingerprint of the platform config plus planning options.
///
/// Misses are computed while holding the cache lock, so concurrent
/// lookups of the same key plan exactly once; the loser of the race
/// observes a hit. Execution-only options (monitoring, preemption,
/// overhead charging, fault/recovery plans, the data-parallel kernel
/// policy) are deliberately outside the key: runs that differ only in
/// those share one plan.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, CachedPlan>>,
    sharded: Mutex<HashMap<ShardedPlanKey, Arc<ShardedPlan>>>,
    /// Warm-start seeds loaded from a persisted cache: per-key sampling
    /// reports and materialized inputs that let a miss plan through
    /// [`ActivePy::plan_from_sampling`] with zero datagen calls.
    warm: Mutex<HashMap<PlanKey, WarmSeed>>,
    profiles: Arc<ProfileStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    refits: AtomicU64,
    warm_starts: AtomicU64,
    planning_nanos: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Returns the cached plan for (`name`, `runtime`'s planning options,
    /// `config`), building it via [`ActivePy::plan`] on first use.
    ///
    /// When the cache's [`ProfileStore`] holds measured observations
    /// newer than the cached plan's generation — i.e. a run recorded
    /// through [`PlanCache::recorder_for`] since the plan was built — the
    /// stale plan is evicted and refitted via [`ActivePy::replan`]: the
    /// profile's per-line means are blended into the predictions and
    /// Algorithm 1 re-runs under the blended model. Refits count in
    /// [`PlanCacheStats::refits`] (the lookup itself still counts as a
    /// hit: sampling never re-runs). With no profile recorded the path is
    /// inert and behaves exactly like a plain cache.
    ///
    /// # Errors
    ///
    /// Propagates planning failures; failed plans are not cached.
    pub fn plan_for(
        &self,
        runtime: &ActivePy,
        name: &str,
        program: &Program,
        input: &dyn InputSource,
        config: &SystemConfig,
    ) -> Result<Arc<OffloadPlan>> {
        let key = (
            name.to_string(),
            Self::fingerprint(runtime, config, input.wire_fingerprint()),
        );
        let tracer = &runtime.options().tracer;
        let version = self.profiles.version(&key);
        let mut plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cached) = plans.get_mut(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            tracer.counter_add("plan_cache.hits", 1);
            if cached.generation < version {
                let profile = self.profiles.profile(&key);
                let refit = Arc::new(runtime.replan(&cached.plan, config, &profile)?);
                *cached = CachedPlan {
                    plan: Arc::clone(&refit),
                    generation: version,
                };
                self.refits.fetch_add(1, Ordering::Relaxed);
                tracer.counter_add("plan_cache.refits", 1);
                return Ok(refit);
            }
            return Ok(Arc::clone(&cached.plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        tracer.counter_add("plan_cache.misses", 1);
        let started = Instant::now();
        // Warm start: a persisted sampling report plus materialized input
        // for this exact key re-plans through phases 2–5 only — zero
        // sampling runs, zero `storage_at` calls against `input`.
        let seed = self
            .warm
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        let mut plan = Arc::new(match seed {
            Some(seed) => {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
                tracer.counter_add("plan_cache.warm_starts", 1);
                runtime.plan_from_sampling(program, seed.sampling, seed.storage, config)?
            }
            None => runtime.plan(program, input, config)?,
        });
        if version > 0 {
            // A profile can predate the first plan (recorded by a caller
            // that executed an uncached plan): blend it in immediately.
            let profile = self.profiles.profile(&key);
            plan = Arc::new(runtime.replan(&plan, config, &profile)?);
            self.refits.fetch_add(1, Ordering::Relaxed);
            tracer.counter_add("plan_cache.refits", 1);
        }
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.planning_nanos.fetch_add(nanos, Ordering::Relaxed);
        plans.insert(
            key,
            CachedPlan {
                plan: Arc::clone(&plan),
                generation: version,
            },
        );
        Ok(plan)
    }

    /// The cache's profile store: measured per-line costs keyed exactly
    /// like the plans they refit.
    #[must_use]
    pub fn profiles(&self) -> &Arc<ProfileStore> {
        &self.profiles
    }

    /// A recorder that feeds this cache's profile store under the same
    /// key [`PlanCache::plan_for`] would use for (`name`, `runtime`,
    /// `config`) — attach it via
    /// [`crate::runtime::ActivePyOptions::with_profile`] and every plan
    /// execution's measured line costs become refit observations.
    #[must_use]
    pub fn recorder_for(
        &self,
        runtime: &ActivePy,
        name: &str,
        input: &dyn InputSource,
        config: &SystemConfig,
    ) -> ProfileRecorder {
        ProfileRecorder::to_store(
            Arc::clone(&self.profiles),
            (
                name.to_string(),
                Self::fingerprint(runtime, config, input.wire_fingerprint()),
            ),
        )
    }

    /// Returns the cached fleet plan for (`name`, planning options,
    /// `config`, `map`), deriving it from the base [`OffloadPlan`] —
    /// which is itself looked up (or built) under the *unchanged* base
    /// key, so single-device sampling is reused across every shard
    /// count. The sharded key appends [`ShardMap::fingerprint`], which
    /// covers shard count, bounds, strategy, and sharded sources: plans
    /// for different fleet shapes can never collide.
    ///
    /// # Errors
    ///
    /// Propagates base-planning failures; failed plans are not cached.
    pub fn sharded_plan_for(
        &self,
        runtime: &ActivePy,
        name: &str,
        program: &Program,
        input: &dyn InputSource,
        config: &SystemConfig,
        map: &ShardMap,
    ) -> Result<Arc<ShardedPlan>> {
        let key = (
            name.to_string(),
            Self::fingerprint(runtime, config, input.wire_fingerprint()),
            map.fingerprint(),
        );
        {
            let sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(plan) = sharded.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                runtime.options().tracer.counter_add("plan_cache.hits", 1);
                return Ok(Arc::clone(plan));
            }
        }
        // The base lookup below does its own hit/miss accounting; the
        // sharded derivation is cheap (no sampling), so only base-plan
        // construction contributes to planning_nanos.
        let base = self.plan_for(runtime, name, program, input, config)?;
        let budget = config.d2h_bandwidth().scale(DEFAULT_BUDGET_LINKS);
        let mut sharded = self.sharded.lock().unwrap_or_else(PoisonError::into_inner);
        let plan = sharded
            .entry(key)
            .or_insert_with(|| Arc::new(derive_sharded_plan(&base, map.clone(), config, budget)));
        Ok(Arc::clone(plan))
    }

    /// Current counter values.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            refits: self.refits.load(Ordering::Relaxed),
            planning_nanos: self.planning_nanos.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct plans held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plans warm-started from persisted seeds (a subset of `misses`).
    #[must_use]
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// The cache key [`PlanCache::plan_for`] derives for (`name`,
    /// `runtime`'s planning options, `config`) — also the
    /// [`ProfileStore`] key, and the identity persisted warm-start seeds
    /// are matched against.
    #[must_use]
    pub fn key_for(
        runtime: &ActivePy,
        name: &str,
        input: &dyn InputSource,
        config: &SystemConfig,
    ) -> ProfileKey {
        (
            name.to_string(),
            Self::fingerprint(runtime, config, input.wire_fingerprint()),
        )
    }

    /// Persists this cache's warm-start state to `path`: for every cached
    /// plan, its sampling report and materialized full-scale input (keyed
    /// by the plan's cache key), plus the profile store's accumulated
    /// observations — everything a restarted process needs to re-plan
    /// identical plans without a single datagen call. The format is the
    /// checksummed binary codec of [`crate::persist`].
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save_warm(&self, path: &Path) -> std::io::Result<()> {
        let seeds: Vec<(ProfileKey, WarmSeed)> = {
            let plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
            let mut v: Vec<_> = plans
                .iter()
                .map(|(k, c)| {
                    (
                        k.clone(),
                        WarmSeed {
                            sampling: c.plan.sampling.clone(),
                            storage: c.plan.full_storage.clone(),
                        },
                    )
                })
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        crate::persist::save_warm_file(path, &seeds, &self.profiles.entries())
    }

    /// Loads warm-start state saved by [`PlanCache::save_warm`]: seeds
    /// install into this cache's warm map (consulted on plan misses) and
    /// persisted profiles restore into the profile store. Returns the
    /// number of seeds loaded.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; a corrupt or truncated file surfaces
    /// as [`std::io::ErrorKind::InvalidData`] (warm start is strictly
    /// optional, so callers typically fall back to cold planning).
    pub fn load_warm(&self, path: &Path) -> std::io::Result<usize> {
        let (seeds, profiles) = crate::persist::load_warm_file(path)?;
        let n = seeds.len();
        {
            let mut warm = self.warm.lock().unwrap_or_else(PoisonError::into_inner);
            for (k, seed) in seeds {
                warm.insert(k, seed);
            }
        }
        for (k, p) in profiles {
            self.profiles.restore(k, p);
        }
        Ok(n)
    }

    /// FNV-1a over the `Debug` forms of the platform config and the
    /// planning-relevant options, plus the input's declared wire-format
    /// fingerprint ([`InputSource::wire_fingerprint`]) — re-encoding a
    /// dataset (codec, shuffle, byte order, fill sentinel) changes
    /// decode costs and therefore invalidates cached plans, without the
    /// key ever needing to materialize storage (warm starts stay
    /// zero-datagen). `Debug` output of the plain-data config structs is
    /// deterministic, which is all a cache key needs.
    fn fingerprint(runtime: &ActivePy, config: &SystemConfig, wire: u64) -> u64 {
        let opts = runtime.options();
        let text = format!(
            "{config:?}|{:?}|{:?}|{:?}|wire:{wire:#x}",
            opts.scales, opts.params, opts.backend
        );
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in text.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::parser::parse;
    use alang::value::ArrayVal;
    use alang::Value;
    use csd_sim::ContentionScenario;

    fn input() -> impl InputSource {
        |scale: f64| {
            let logical = (scale * 1e9).round().max(100.0) as u64;
            let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
            let data: Vec<f64> = (0..actual).map(|i| (i % 100) as f64).collect();
            let mut st = Storage::new();
            st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
            st
        }
    }

    const SRC: &str = "a = scan('v')\ns = sum(a)\n";

    #[test]
    fn same_key_hits_and_plans_once() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let first = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        let second = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must reuse the plan"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(stats.planning_nanos > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_config_misses() {
        let program = parse(SRC).expect("parse");
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let base = SystemConfig::paper_default();
        let degraded = SystemConfig::nvmeof_default();
        cache
            .plan_for(&rt, "w", &program, &input(), &base)
            .expect("plan");
        cache
            .plan_for(&rt, "w", &program, &input(), &degraded)
            .expect("plan");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 2),
            "same workload under a different SystemConfig must be a distinct plan"
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn different_workload_name_misses() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        cache
            .plan_for(&rt, "w1", &program, &input(), &config)
            .expect("plan");
        cache
            .plan_for(&rt, "w2", &program, &input(), &config)
            .expect("plan");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn execution_only_options_share_a_plan_key() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let cache = PlanCache::new();
        let with_migration = ActivePy::new();
        let without_migration =
            ActivePy::with_options(crate::runtime::ActivePyOptions::default().without_migration());
        cache
            .plan_for(&with_migration, "w", &program, &input(), &config)
            .expect("plan");
        cache
            .plan_for(&without_migration, "w", &program, &input(), &config)
            .expect("plan");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "monitor policy must not split the plan key"
        );
        // Faults and recovery are execution-only too: a runtime that will
        // inject faults still reuses the fault-free plan.
        let faulted = ActivePy::with_options(
            crate::runtime::ActivePyOptions::default()
                .with_recovery(crate::recovery::RecoveryPolicy::default().without_fallback())
                .with_faults(
                    csd_sim::fault::FaultPlan::none()
                        .with_seed(9)
                        .with_flash_read_error_prob(0.2),
                ),
        );
        cache
            .plan_for(&faulted, "w", &program, &input(), &config)
            .expect("plan");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (2, 1),
            "fault plan and recovery policy must not split the plan key"
        );
        // The data-parallel kernel policy only changes how the repro host
        // executes kernels, never what they compute: same plan.
        let parallel = ActivePy::with_options(
            crate::runtime::ActivePyOptions::default()
                .with_parallelism(alang::ParallelPolicy::new(8, 1024).expect("policy")),
        );
        cache
            .plan_for(&parallel, "w", &program, &input(), &config)
            .expect("plan");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (3, 1),
            "parallel policy must not split the plan key"
        );
    }

    #[test]
    fn shard_count_splits_the_sharded_key_but_not_the_base_plan() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let storage = input().storage_at(1.0);
        let map1 = alang::shard::ShardMap::auto(&storage, 1, alang::shard::ShardStrategy::Range);
        let map4 = alang::shard::ShardMap::auto(&storage, 4, alang::shard::ShardStrategy::Range);
        let p1 = cache
            .sharded_plan_for(&rt, "w", &program, &input(), &config, &map1)
            .expect("N=1 plan");
        let p4 = cache
            .sharded_plan_for(&rt, "w", &program, &input(), &config, &map4)
            .expect("N=4 plan");
        assert!(
            !Arc::ptr_eq(&p1, &p4),
            "N=1 and N=4 fleet plans must never share a cache slot"
        );
        assert_eq!(p1.count(), 1);
        assert_eq!(p4.count(), 4);
        // The expensive half is shared: both fleet shapes derive from ONE
        // base plan (sampling ran exactly once).
        assert!(
            Arc::ptr_eq(&p1.base, &p4.base),
            "both fleet shapes must reuse the single base plan"
        );
        assert_eq!(
            cache.stats().misses,
            1,
            "only the base plan is ever built from scratch"
        );
        // Same map → hit on the sharded key.
        let p4_again = cache
            .sharded_plan_for(&rt, "w", &program, &input(), &config, &map4)
            .expect("N=4 again");
        assert!(Arc::ptr_eq(&p4, &p4_again));
        // A different hash seed over the same rows is a different
        // placement: distinct slot even at the same shard count.
        let hashed =
            alang::shard::ShardMap::auto(&storage, 4, alang::shard::ShardStrategy::Hash(7));
        let ph = cache
            .sharded_plan_for(&rt, "w", &program, &input(), &config, &hashed)
            .expect("hashed plan");
        assert!(!Arc::ptr_eq(&p4, &ph), "strategy must split the key");
    }

    #[test]
    fn cached_plan_executes_identically_to_direct_run() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let direct = rt
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("direct run");
        let cache = PlanCache::new();
        let plan = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        let via_plan = rt
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("execute plan");
        assert_eq!(direct, via_plan);
    }

    #[test]
    fn warm_profile_triggers_exactly_one_refit() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let cold = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("cold plan");
        // No observations yet: a repeat lookup is a plain hit, no refit.
        let still_cold = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("still cold");
        assert!(Arc::ptr_eq(&cold, &still_cold));
        assert_eq!(cache.stats().refits, 0, "empty profiles must be inert");
        // Record one measured run through the cache's own recorder; the
        // next lookup must refit exactly once.
        let recorder = cache.recorder_for(&rt, "w", &input(), &config);
        let measured: Vec<alang::LineCost> = cold
            .program
            .lines()
            .iter()
            .map(|_| alang::LineCost {
                compute_ops: 2_000_000_000,
                storage_bytes: 4_000_000_000,
                bytes_in: 4_000_000_000,
                bytes_out: 8,
                copy_bytes: 0,
                eliminable_copy_bytes: 0,
                calls: 1,
            })
            .collect();
        recorder.record(&measured);
        let warm = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("warm plan");
        assert!(
            !Arc::ptr_eq(&cold, &warm),
            "a newer profile version must evict the stale plan"
        );
        let stats = cache.stats();
        assert_eq!(stats.refits, 1);
        assert_eq!(stats.misses, 1, "refits are not misses");
        assert_eq!(stats.hits, 2, "refit lookups still count as hits");
        // Without a new recording the refitted plan is stable.
        let warm_again = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("warm again");
        assert!(Arc::ptr_eq(&warm, &warm_again));
        assert_eq!(
            cache.stats().refits,
            1,
            "at most one refit per recorded run"
        );
        // The profile feeds only its own key: a different workload name
        // under the same config stays cold.
        cache
            .plan_for(&rt, "w2", &program, &input(), &config)
            .expect("other workload");
        assert_eq!(cache.stats().refits, 1);
    }

    #[test]
    fn refitted_plan_computes_identical_values() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let cold = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("cold plan");
        let cold_run = rt
            .execute_plan(&cold, &config, ContentionScenario::none())
            .expect("cold run");
        // Feed the *actual* measured costs back, as execute() would with a
        // live recorder, then refit.
        let recorder = cache.recorder_for(&rt, "w", &input(), &config);
        let mut measured = vec![alang::LineCost::zero(); cold.program.len()];
        for l in &cold_run.report.lines {
            measured[l.line] = l.cost;
        }
        recorder.record(&measured);
        let warm = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("warm plan");
        assert_eq!(cache.stats().refits, 1);
        let warm_run = rt
            .execute_plan(&warm, &config, ContentionScenario::none())
            .expect("warm run");
        // Re-planning moves costs, never answers.
        assert_eq!(
            cold_run.report.values_fingerprint,
            warm_run.report.values_fingerprint
        );
        // The refit keeps the modelled projection at least as good as the
        // prior assignment's projection under the same blended model.
        assert!(warm.assignment.t_csd <= warm.assignment.t_host + 1e-12);
    }
}
