//! Algorithm 1: CSD code assignment (§III-B).
//!
//! The greedy pass walks the program line by line, projecting the total
//! execution time if the line joined the CSD partition. The transfer-cost
//! sign depends on adjacency: when the *previous* line already runs on the
//! CSD, pulling this line over *removes* a device-to-host crossing for its
//! input (`− D_in/BW`), whereas an isolated line *adds* one (`+ D_in/BW`);
//! the output crossing (`+ D_out/BW`) is always charged. A line is adopted
//! only when the projected time strictly improves.

use crate::estimate::LineEstimate;
use alang::Program;
use csd_sim::engine::EngineKind;
use isp_obs::{SpanKind, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The outcome of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Indices of lines assigned to the CSD (`P_csd`).
    pub csd_lines: BTreeSet<usize>,
    /// Projected all-host execution time (`T_host`), seconds.
    pub t_host: f64,
    /// Projected execution time of the chosen split (`T_csd`), seconds.
    pub t_csd: f64,
}

impl Assignment {
    /// An all-host assignment for `estimates`.
    #[must_use]
    pub fn all_host(estimates: &[LineEstimate]) -> Self {
        let t_host = estimates.iter().map(|e| e.ct_host).sum();
        Assignment {
            csd_lines: BTreeSet::new(),
            t_host,
            t_csd: t_host,
        }
    }

    /// Per-line engine placement implied by this assignment.
    #[must_use]
    pub fn placements(&self, line_count: usize) -> Vec<EngineKind> {
        (0..line_count)
            .map(|i| {
                if self.csd_lines.contains(&i) {
                    EngineKind::Cse
                } else {
                    EngineKind::Host
                }
            })
            .collect()
    }

    /// Projected speedup over the all-host plan.
    #[must_use]
    pub fn projected_speedup(&self) -> f64 {
        if self.t_csd <= 0.0 {
            1.0
        } else {
            self.t_host / self.t_csd
        }
    }

    /// The contiguous CSD regions `[start, end]` (inclusive) in line order
    /// — each becomes one generated CSD function.
    #[must_use]
    pub fn csd_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut iter = self.csd_lines.iter().copied();
        let Some(mut start) = iter.next() else {
            return regions;
        };
        let mut prev = start;
        for i in iter {
            if i == prev + 1 {
                prev = i;
            } else {
                regions.push((start, prev));
                start = i;
                prev = i;
            }
        }
        regions.push((start, prev));
        regions
    }
}

/// How far ahead [`assign`] tentatively extends a candidate CSD region
/// while the projected time is still above the incumbent.
const LOOKAHEAD_LINES: usize = 8;

/// Algorithm 1's per-line time delta of adding line `est` to `P_csd`.
fn delta(est: &LineEstimate, prev_on_csd: bool, bw_d2h: f64) -> f64 {
    let d_in = est.d_in as f64 / bw_d2h;
    let d_out = est.d_out as f64 / bw_d2h;
    if prev_on_csd {
        -est.ct_host + est.ct_device - d_in + d_out
    } else {
        -est.ct_host + est.ct_device + d_in + d_out
    }
}

/// Runs Algorithm 1's greedy loop exactly as printed in the paper: a line
/// joins `P_csd` only when the projected time strictly improves.
///
/// Because a storage-scan line's full output is charged as crossing the
/// interconnect until its consumer also joins, the verbatim greedy cannot
/// cross the scan→filter "hump"; prefer [`assign`], which implements the
/// prose of §III-B ("records the assignment that yields the shortest
/// execution time") with bounded lookahead. The verbatim variant is kept
/// for the design-ablation experiments.
///
/// # Panics
///
/// Panics if `bw_d2h` is not strictly positive.
#[must_use]
pub fn assign_greedy(estimates: &[LineEstimate], bw_d2h: f64) -> Assignment {
    assert!(bw_d2h > 0.0, "BW_D2H must be positive");
    let t_host: f64 = estimates.iter().map(|e| e.ct_host).sum();
    let mut t_csd = t_host;
    let mut csd_lines = BTreeSet::new();
    for (i, est) in estimates.iter().enumerate() {
        let prev_on_csd = i == 0 || csd_lines.contains(&(i - 1));
        let projected = t_csd + delta(est, prev_on_csd, bw_d2h);
        if projected < t_csd && t_csd <= t_host {
            csd_lines.insert(i);
            t_csd = projected;
        }
    }
    Assignment {
        csd_lines,
        t_host,
        t_csd,
    }
}

/// Runs Algorithm 1 over per-line estimates.
///
/// `bw_d2h` is the effective device-to-host bandwidth in bytes per second
/// (`BW_D2H` in Eq. 1). In addition to the printed greedy step, the pass
/// implements the paper's prose — ActivePy "records the assignment that
/// yields the shortest execution time" — by tentatively extending a
/// candidate region a bounded number of lines when a line is not
/// profitable alone, and adopting the prefix that minimizes the projected
/// time. This is what lets a storage scan (whose bulky output would
/// otherwise be charged as crossing the interconnect) be adopted together
/// with the filter that consumes it.
///
/// # Panics
///
/// Panics if `bw_d2h` is not strictly positive.
#[must_use]
pub fn assign(estimates: &[LineEstimate], bw_d2h: f64) -> Assignment {
    assert!(bw_d2h > 0.0, "BW_D2H must be positive");
    let t_host: f64 = estimates.iter().map(|e| e.ct_host).sum();
    let mut t_csd = t_host;
    let mut csd_lines: BTreeSet<usize> = BTreeSet::new();
    let mut i = 0;
    while i < estimates.len() {
        let prev_on_csd = i == 0 || csd_lines.contains(&(i - 1));
        let projected = t_csd + delta(&estimates[i], prev_on_csd, bw_d2h);
        if projected < t_csd {
            csd_lines.insert(i);
            t_csd = projected;
            i += 1;
            continue;
        }
        // Not profitable alone: tentatively grow a region starting here and
        // keep the best prefix, if any prefix beats the incumbent.
        let mut tentative = projected;
        let mut best_t = t_csd;
        let mut best_len = 0usize;
        if tentative < best_t {
            best_t = tentative;
            best_len = 1;
        }
        let mut j = i + 1;
        while j < estimates.len() && j - i < LOOKAHEAD_LINES {
            tentative += delta(&estimates[j], true, bw_d2h);
            if tentative < best_t {
                best_t = tentative;
                best_len = j - i + 1;
            }
            j += 1;
        }
        if best_len > 0 {
            for k in i..i + best_len {
                csd_lines.insert(k);
            }
            t_csd = best_t;
            i += best_len;
        } else {
            i += 1;
        }
    }
    Assignment {
        csd_lines,
        t_host,
        t_csd,
    }
}

/// Projects the end-to-end cost of `placements` under the execution
/// engine's actual staging rules: variables live where they were last
/// used, each cross-engine read ships the producing line's output volume
/// once, and a device-resident final result returns to the host.
///
/// This is the executor-faithful cost model the refinement pass of
/// [`assign_refined`] minimizes (cheaper than a full simulation, exact up
/// to contention and queue microseconds).
///
/// # Panics
///
/// Panics if lengths disagree or `bw_d2h` is not positive.
#[must_use]
pub fn projected_cost(
    program: &Program,
    estimates: &[LineEstimate],
    placements: &[EngineKind],
    bw_d2h: f64,
) -> f64 {
    assert!(bw_d2h > 0.0, "BW_D2H must be positive");
    assert_eq!(
        program.len(),
        estimates.len(),
        "estimates must cover the program"
    );
    assert_eq!(
        program.len(),
        placements.len(),
        "placements must cover the program"
    );
    let mut var_loc: BTreeMap<&str, EngineKind> = BTreeMap::new();
    let mut var_bytes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut total = 0.0;
    for (line, (est, place)) in program.lines().iter().zip(estimates.iter().zip(placements)) {
        for input in line.inputs() {
            // `inputs()` returns owned names; resolve against the maps.
            if let (Some(loc), Some(bytes)) = (
                var_loc.get(input.as_str()).copied(),
                var_bytes.get(input.as_str()).copied(),
            ) {
                if loc != *place {
                    total += bytes as f64 / bw_d2h;
                    if let Some(slot) = var_loc.get_mut(input.as_str()) {
                        *slot = *place;
                    }
                }
            }
        }
        total += match place {
            EngineKind::Host => est.ct_host,
            EngineKind::Cse => est.ct_device,
        };
        var_loc.insert(&line.target, *place);
        var_bytes.insert(&line.target, est.d_out);
    }
    if let Some(last) = program.lines().last() {
        if var_loc.get(last.target.as_str()) == Some(&EngineKind::Cse) {
            total += estimates[last.index].d_out as f64 / bw_d2h;
        }
    }
    total
}

/// Maximum refinement sweeps before giving up on convergence.
const REFINE_SWEEPS: usize = 12;

/// ActivePy's full assignment pass: Algorithm 1 with lookahead
/// ([`assign`]) to seed the partition, followed by single-line flip
/// refinement under the executor-faithful [`projected_cost`] model until a
/// fixpoint.
///
/// The refinement embodies the paper's stated behaviour — ActivePy
/// "records the assignment that yields the shortest execution time" and in
/// §V "successfully identified *exactly* the same set of code regions … as
/// the optimal programmer-directed configuration". The greedy formula's
/// previous-line adjacency approximation can strand single lines on the
/// wrong side of the interconnect in programs whose data flow skips lines;
/// flip refinement repairs exactly those cases.
///
/// # Panics
///
/// Panics if lengths disagree or `bw_d2h` is not positive.
#[must_use]
pub fn assign_refined(program: &Program, estimates: &[LineEstimate], bw_d2h: f64) -> Assignment {
    assign_refined_traced(program, estimates, bw_d2h, &Tracer::disabled())
}

/// As [`assign_refined`], recording one `assign.candidate` instant per
/// refinement round (seed, all-host) into `tracer` with the round's sweep
/// and flip counts. The tracer is observation-only: the returned
/// assignment is identical with it enabled, disabled, or absent.
///
/// # Panics
///
/// As [`assign_refined`].
#[must_use]
pub fn assign_refined_traced(
    program: &Program,
    estimates: &[LineEstimate],
    bw_d2h: f64,
    tracer: &Tracer,
) -> Assignment {
    let seed = assign(estimates, bw_d2h);
    let t_host = seed.t_host;
    // Refine from both the lookahead seed and the all-host plan: each can
    // be a local minimum under single-line flips (the lookahead can strand
    // a bulky producer on the wrong side; all-host cannot cross the
    // scan→filter hump one line at a time), so take the better fixpoint.
    let candidates = [
        ("seed", seed.placements(program.len())),
        ("all_host", vec![EngineKind::Host; program.len()]),
    ];
    let mut best_cost = f64::INFINITY;
    let mut best_placements = candidates[1].1.clone();
    for (label, start) in candidates {
        let refined = refine_flips(program, estimates, start, bw_d2h);
        tracer.instant(
            "assign.candidate",
            SpanKind::Phase,
            None,
            vec![
                ("candidate".into(), label.into()),
                ("sweeps".into(), refined.sweeps.into()),
                ("flips".into(), refined.flips.into()),
                ("cost_secs".into(), refined.cost.into()),
            ],
        );
        if refined.cost < best_cost {
            best_cost = refined.cost;
            best_placements = refined.placements;
        }
    }
    let csd_lines: BTreeSet<usize> = best_placements
        .iter()
        .enumerate()
        .filter(|(_, p)| **p == EngineKind::Cse)
        .map(|(i, _)| i)
        .collect();
    Assignment {
        csd_lines,
        t_host,
        t_csd: best_cost.min(t_host),
    }
}

/// The fixpoint [`refine_flips`] reached, with round statistics for the
/// `assign.candidate` trace instants.
struct RefineOutcome {
    placements: Vec<EngineKind>,
    cost: f64,
    /// Sweeps actually performed (including the final no-improvement one).
    sweeps: usize,
    /// Single-line flips adopted across all sweeps.
    flips: usize,
}

/// Single-line flip refinement to a fixpoint under [`projected_cost`].
fn refine_flips(
    program: &Program,
    estimates: &[LineEstimate],
    mut placements: Vec<EngineKind>,
    bw_d2h: f64,
) -> RefineOutcome {
    let mut best = projected_cost(program, estimates, &placements, bw_d2h);
    let mut sweeps = 0usize;
    let mut flips = 0usize;
    for _ in 0..REFINE_SWEEPS {
        sweeps += 1;
        let mut improved = false;
        for i in 0..placements.len() {
            let flipped = placements[i].other();
            let old = std::mem::replace(&mut placements[i], flipped);
            let cost = projected_cost(program, estimates, &placements, bw_d2h);
            if cost + 1e-12 < best {
                best = cost;
                improved = true;
                flips += 1;
            } else {
                placements[i] = old;
            }
        }
        if !improved {
            break;
        }
    }
    RefineOutcome {
        placements,
        cost: best,
        sweeps,
        flips,
    }
}

/// Computes the *optimal* assignment under the same adjacency-approximate
/// cost model by dynamic programming over (line, placement) states. Used
/// by the design-ablation experiments as the upper bound for Algorithm 1.
///
/// # Panics
///
/// Panics if `bw_d2h` is not strictly positive.
#[must_use]
pub fn assign_optimal(estimates: &[LineEstimate], bw_d2h: f64) -> Assignment {
    assert!(bw_d2h > 0.0, "BW_D2H must be positive");
    let t_host: f64 = estimates.iter().map(|e| e.ct_host).sum();
    let n = estimates.len();
    if n == 0 {
        return Assignment {
            csd_lines: BTreeSet::new(),
            t_host,
            t_csd: t_host,
        };
    }
    // dp[placement] = (cost, choices); placement of the previous line.
    // Crossing cost: a line whose input was produced on the other side
    // pays d_in/BW; a CSD line whose successor is on the host pays its
    // d_out through the successor's d_in, and the final line pays d_out
    // explicitly if it ends on the CSD.
    let cross = |bytes: u64| bytes as f64 / bw_d2h;
    let mut dp: Vec<(f64, Vec<bool>)> = vec![
        (estimates[0].ct_host, vec![false]),
        (
            estimates[0].ct_device + cross(estimates[0].d_in),
            vec![true],
        ),
    ];
    for est in &estimates[1..] {
        let mut next: Vec<(f64, Vec<bool>)> = Vec::with_capacity(2);
        for on_csd in [false, true] {
            let mut best: Option<(f64, Vec<bool>)> = None;
            for (prev_cost, prev_choice) in &dp {
                let prev_on_csd = *prev_choice.last().expect("non-empty");
                let exec = if on_csd { est.ct_device } else { est.ct_host };
                let boundary = if prev_on_csd != on_csd {
                    cross(est.d_in)
                } else {
                    0.0
                };
                let total = prev_cost + exec + boundary;
                if best.as_ref().is_none_or(|(b, _)| total < *b) {
                    let mut choice = prev_choice.clone();
                    choice.push(on_csd);
                    best = Some((total, choice));
                }
            }
            next.push(best.expect("dp is non-empty"));
        }
        dp = next;
    }
    // Terminal: a CSD-resident final value must return to the host.
    let last = estimates.last().expect("non-empty");
    dp[1].0 += cross(last.d_out);
    let (t_csd, choices) = dp
        .into_iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"))
        .expect("two states");
    let csd_lines: BTreeSet<usize> = choices
        .iter()
        .enumerate()
        .filter(|(_, on)| **on)
        .map(|(i, _)| i)
        .collect();
    Assignment {
        csd_lines,
        t_host,
        t_csd: t_csd.min(t_host),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(line: usize, ct_host: f64, ct_device: f64, d_in: u64, d_out: u64) -> LineEstimate {
        LineEstimate {
            line,
            ct_host,
            ct_device,
            d_in,
            d_out,
            ops: 0,
        }
    }

    const BW: f64 = 4e9;

    #[test]
    fn pure_reduction_pipeline_is_offloaded() {
        // scan (8 GB in storage, cheap on device), filter (big in, small
        // out), reduce (small). Classic ISP win.
        let estimates = vec![
            est(0, 2.0, 0.9, 0, 8_000_000_000),
            est(1, 0.2, 0.7, 8_000_000_000, 80_000_000),
            est(2, 0.05, 0.2, 80_000_000, 8),
        ];
        let a = assign(&estimates, BW);
        assert!(a.csd_lines.contains(&0), "scan should offload: {a:?}");
        assert!(a.csd_lines.contains(&1), "filter should offload: {a:?}");
        assert!(a.t_csd < a.t_host);
        assert!(a.projected_speedup() > 1.0);
    }

    #[test]
    fn compute_heavy_lines_stay_on_host() {
        let estimates = vec![
            est(0, 1.0, 5.0, 1_000_000, 1_000_000),
            est(1, 2.0, 10.0, 1_000_000, 1_000_000),
        ];
        let a = assign(&estimates, BW);
        assert!(a.csd_lines.is_empty(), "{a:?}");
        assert_eq!(a.t_csd, a.t_host);
        assert_eq!(a.projected_speedup(), 1.0);
    }

    #[test]
    fn adjacency_flips_the_d_in_sign() {
        // Line 0 offloads. Line 1 alone would not be worth it if its input
        // had to cross the link, but because line 0 is already on the CSD
        // the input crossing is *saved*.
        let estimates = vec![
            est(0, 2.0, 0.5, 0, 4_000_000_000), // saves 1.5s, emits 1s of transfer
            est(1, 0.1, 0.3, 4_000_000_000, 8), // device is 0.2s slower, but saves 1s input
        ];
        let a = assign(&estimates, BW);
        assert!(a.csd_lines.contains(&0));
        assert!(
            a.csd_lines.contains(&1),
            "adjacent line should ride along: {a:?}"
        );
        // Sanity: the same line *without* an offloaded predecessor stays.
        let alone = [est(1, 0.1, 0.3, 4_000_000_000, 8)];
        // (index 0 counts as "previous on csd" per the algorithm's `i == 0`
        // clause, so shift it to index 1 with a host line before it.)
        let shifted = vec![est(0, 1.0, 9.0, 0, 0), alone[0]];
        let a2 = assign(&shifted, BW);
        assert!(a2.csd_lines.is_empty(), "{a2:?}");
    }

    #[test]
    fn regions_group_contiguous_lines() {
        let estimates = vec![
            est(0, 2.0, 0.5, 0, 1_000),
            est(1, 2.0, 0.5, 1_000, 1_000),
            est(2, 1.0, 50.0, 1_000, 1_000), // stays on host
            est(3, 2.0, 0.5, 0, 1_000),
        ];
        let a = assign(&estimates, BW);
        assert_eq!(a.csd_regions(), vec![(0, 1), (3, 3)]);
        let placements = a.placements(4);
        assert_eq!(placements[2], EngineKind::Host);
        assert_eq!(placements[3], EngineKind::Cse);
    }

    #[test]
    fn empty_program_yields_empty_assignment() {
        let a = assign(&[], BW);
        assert!(a.csd_lines.is_empty());
        assert_eq!(a.t_host, 0.0);
        assert!(a.csd_regions().is_empty());
    }

    #[test]
    fn all_host_constructor() {
        let estimates = vec![est(0, 1.0, 2.0, 0, 0), est(1, 2.0, 3.0, 0, 0)];
        let a = Assignment::all_host(&estimates);
        assert!(a.csd_lines.is_empty());
        assert!((a.t_host - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "BW_D2H")]
    fn zero_bandwidth_panics() {
        let _ = assign(&[], 0.0);
    }

    #[test]
    fn verbatim_greedy_cannot_cross_the_scan_hump() {
        // The same pipeline the lookahead variant offloads: the strict
        // greedy rejects the scan (its bulky output is charged) and then
        // everything downstream.
        let estimates = vec![
            est(0, 2.0, 0.9, 0, 8_000_000_000),
            est(1, 0.2, 0.7, 8_000_000_000, 80_000_000),
            est(2, 0.05, 0.2, 80_000_000, 8),
        ];
        let greedy = assign_greedy(&estimates, BW);
        assert!(greedy.csd_lines.is_empty(), "{greedy:?}");
        let lookahead = assign(&estimates, BW);
        assert!(lookahead.t_csd < greedy.t_csd);
    }

    #[test]
    fn optimal_dp_matches_or_beats_lookahead() {
        let estimates = vec![
            est(0, 2.0, 0.9, 0, 8_000_000_000),
            est(1, 0.2, 0.7, 8_000_000_000, 80_000_000),
            est(2, 1.0, 5.0, 80_000_000, 80_000_000),
            est(3, 0.3, 0.4, 80_000_000, 1_000),
            est(4, 0.05, 0.2, 1_000, 8),
        ];
        let la = assign(&estimates, BW);
        let opt = assign_optimal(&estimates, BW);
        assert!(
            opt.t_csd <= la.t_csd + 1e-9,
            "DP {} must not lose to lookahead {}",
            opt.t_csd,
            la.t_csd
        );
        // On this instance the hump-crossing set {0, 1} is optimal.
        assert!(
            opt.csd_lines.contains(&0) && opt.csd_lines.contains(&1),
            "{opt:?}"
        );
        assert!(
            !opt.csd_lines.contains(&2),
            "compute-heavy line stays home: {opt:?}"
        );
    }

    #[test]
    fn optimal_dp_on_empty_and_all_host_cases() {
        let opt = assign_optimal(&[], BW);
        assert!(opt.csd_lines.is_empty());
        let estimates = vec![est(0, 1.0, 9.0, 0, 0), est(1, 1.0, 9.0, 0, 0)];
        let opt = assign_optimal(&estimates, BW);
        assert!(opt.csd_lines.is_empty());
        assert!((opt.t_csd - opt.t_host).abs() < 1e-12);
    }
}
