//! Online cost profiles for profile-guided re-planning.
//!
//! The sampling phase fits each line's complexity curves once, from four
//! down-scaled runs (§III-A). Every *full-scale* execution afterwards
//! measures the true per-line costs — the same numbers the tracer's
//! `exec.chunk_sim_ns` histograms aggregate — and then throws them away.
//! This module keeps them: a [`ProfileStore`] accumulates measured
//! [`LineCost`]s per (workload, platform-fingerprint) key — the same key
//! the [`crate::plan::PlanCache`] uses — so a warm cache can *refit* its
//! plan from observations instead of extrapolations.
//!
//! Determinism: observations are integer sums (`u128` accumulators over
//! the `u64` cost fields), means are integer divisions, and the blend in
//! [`crate::fit::blend_predictions`] is a pure function of (prediction,
//! mean, count). Recording order across threads cannot change any
//! refitted plan because addition commutes on the integer sums.
//!
//! The [`ProfileRecorder`] handle follows the tracer's identity-equality
//! pattern: disabled by default, zero-cost when disabled, and compared by
//! `Arc` identity so it can ride inside `PartialEq` options structs
//! without making two otherwise-equal runtimes unequal.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use alang::LineCost;

/// Aggregated full-scale observations of one line's cost.
///
/// Sums are `u128` so that even `u64::MAX`-sized byte counters cannot
/// overflow across billions of runs; the mean rounds toward zero
/// (integer division), which keeps it exact for the common case where
/// every observation of a deterministic pipeline is identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineObservation {
    /// Number of full-scale runs folded in.
    pub count: u64,
    sums: [u128; 6],
    calls: u32,
}

impl LineObservation {
    /// Folds one measured cost into the aggregate.
    pub fn record(&mut self, cost: &LineCost) {
        self.count += 1;
        self.sums[0] += u128::from(cost.compute_ops);
        self.sums[1] += u128::from(cost.storage_bytes);
        self.sums[2] += u128::from(cost.bytes_in);
        self.sums[3] += u128::from(cost.bytes_out);
        self.sums[4] += u128::from(cost.copy_bytes);
        self.sums[5] += u128::from(cost.eliminable_copy_bytes);
        self.calls = cost.calls;
    }

    /// Rebuilds an observation from serialized parts (the inverse of
    /// [`LineObservation::sums`] / [`LineObservation::calls`]).
    #[must_use]
    pub fn from_parts(count: u64, sums: [u128; 6], calls: u32) -> Self {
        LineObservation { count, sums, calls }
    }

    /// The raw integer accumulators, in [`LineCost`] field order
    /// (compute_ops, storage_bytes, bytes_in, bytes_out, copy_bytes,
    /// eliminable_copy_bytes). Exposed for serialization.
    #[must_use]
    pub fn sums(&self) -> [u128; 6] {
        self.sums
    }

    /// The last observed call count. Exposed for serialization.
    #[must_use]
    pub fn calls(&self) -> u32 {
        self.calls
    }

    /// The mean observed cost (zero when nothing was recorded).
    #[must_use]
    pub fn mean_cost(&self) -> LineCost {
        if self.count == 0 {
            return LineCost::zero();
        }
        let n = u128::from(self.count);
        let mean = |i: usize| -> u64 { u64::try_from(self.sums[i] / n).unwrap_or(u64::MAX) };
        LineCost {
            compute_ops: mean(0),
            storage_bytes: mean(1),
            bytes_in: mean(2),
            bytes_out: mean(3),
            copy_bytes: mean(4),
            eliminable_copy_bytes: mean(5),
            calls: self.calls,
        }
    }
}

/// Everything measured so far for one (workload, platform) key.
///
/// `version` bumps once per recorded run; the [`crate::plan::PlanCache`]
/// compares it against a cached plan's generation to decide when a refit
/// is due.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkloadProfile {
    /// Bumped once per recorded run.
    pub version: u64,
    lines: Vec<LineObservation>,
}

impl WorkloadProfile {
    /// Folds one full run's per-line measured costs into the profile.
    pub fn record_run(&mut self, costs: &[LineCost]) {
        if self.lines.len() < costs.len() {
            self.lines.resize(costs.len(), LineObservation::default());
        }
        for (obs, cost) in self.lines.iter_mut().zip(costs) {
            obs.record(cost);
        }
        self.version += 1;
    }

    /// The aggregate for `line`, if any run reached it.
    #[must_use]
    pub fn observation(&self, line: usize) -> Option<&LineObservation> {
        self.lines.get(line).filter(|o| o.count > 0)
    }

    /// Whether no run has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.version == 0
    }

    /// Rebuilds a profile from serialized parts.
    #[must_use]
    pub fn from_parts(version: u64, lines: Vec<LineObservation>) -> Self {
        WorkloadProfile { version, lines }
    }

    /// All per-line aggregates in line order. Exposed for serialization.
    #[must_use]
    pub fn observations(&self) -> &[LineObservation] {
        &self.lines
    }
}

/// The profile key: workload name plus the plan-cache fingerprint of the
/// platform config and planning options.
pub type ProfileKey = (String, u64);

/// A keyed, thread-safe store of measured per-line cost observations.
///
/// Keys are compatible with the [`crate::plan::PlanCache`] fingerprint,
/// so a profile recorded under one key refits exactly the plan cached
/// under the same key and no other.
#[derive(Debug, Default)]
pub struct ProfileStore {
    profiles: Mutex<HashMap<ProfileKey, WorkloadProfile>>,
    runs: AtomicU64,
}

impl ProfileStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Records one full run's per-line measured costs under `key`.
    pub fn record(&self, key: &ProfileKey, costs: &[LineCost]) {
        let mut profiles = self.profiles.lock().unwrap_or_else(PoisonError::into_inner);
        profiles.entry(key.clone()).or_default().record_run(costs);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the profile under `key` (empty default if absent).
    #[must_use]
    pub fn profile(&self, key: &ProfileKey) -> WorkloadProfile {
        self.profiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// The current version of the profile under `key` (0 if absent).
    #[must_use]
    pub fn version(&self, key: &ProfileKey) -> u64 {
        self.profiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .map_or(0, |p| p.version)
    }

    /// Total runs recorded across all keys.
    #[must_use]
    pub fn runs_recorded(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Snapshot of every (key, profile) pair, sorted by key for
    /// deterministic serialization order.
    #[must_use]
    pub fn entries(&self) -> Vec<(ProfileKey, WorkloadProfile)> {
        let profiles = self.profiles.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<_> = profiles
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Installs a deserialized profile under `key`, replacing whatever is
    /// there. The warm-start path uses this to hand a restarted process
    /// its accumulated observations; `runs_recorded` counts only runs
    /// recorded live, so it is intentionally left untouched.
    pub fn restore(&self, key: ProfileKey, profile: WorkloadProfile) {
        self.profiles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, profile);
    }
}

/// A cheap, cloneable handle that routes one execution's measured line
/// costs into a [`ProfileStore`] under a fixed key.
///
/// Disabled by default ([`ProfileRecorder::disabled`]) so profiling is
/// strictly opt-in: the fig5 golden runs, and every caller that never
/// asks for re-planning, pay nothing and observe nothing.
#[derive(Debug, Clone, Default)]
pub struct ProfileRecorder {
    inner: Option<Arc<RecorderInner>>,
}

#[derive(Debug)]
struct RecorderInner {
    store: Arc<ProfileStore>,
    key: ProfileKey,
}

impl ProfileRecorder {
    /// A recorder that drops everything (the default).
    #[must_use]
    pub fn disabled() -> Self {
        ProfileRecorder { inner: None }
    }

    /// A recorder feeding `store` under `key`.
    #[must_use]
    pub fn to_store(store: Arc<ProfileStore>, key: ProfileKey) -> Self {
        ProfileRecorder {
            inner: Some(Arc::new(RecorderInner { store, key })),
        }
    }

    /// Whether observations are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one full run's per-line measured costs (no-op when
    /// disabled).
    pub fn record(&self, costs: &[LineCost]) {
        if let Some(inner) = &self.inner {
            inner.store.record(&inner.key, costs);
        }
    }
}

/// Like [`isp_obs::Tracer`], equality is identity: two enabled recorders
/// are equal only when they share the same `Arc`, and disabled recorders
/// are all equal. Options structs deriving `PartialEq` stay comparable.
impl PartialEq for ProfileRecorder {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(scale: u64) -> LineCost {
        LineCost {
            compute_ops: 100 * scale,
            storage_bytes: 80 * scale,
            bytes_in: 40 * scale,
            bytes_out: 10 * scale,
            copy_bytes: 20 * scale,
            eliminable_copy_bytes: 20 * scale,
            calls: 2,
        }
    }

    #[test]
    fn observation_means_are_exact_integer_division() {
        let mut obs = LineObservation::default();
        obs.record(&cost(1));
        obs.record(&cost(3));
        let mean = obs.mean_cost();
        assert_eq!(obs.count, 2);
        assert_eq!(mean.compute_ops, 200);
        assert_eq!(mean.bytes_out, 20);
        assert_eq!(mean.calls, 2);
    }

    #[test]
    fn empty_observation_means_zero() {
        assert_eq!(LineObservation::default().mean_cost(), LineCost::zero());
    }

    #[test]
    fn profile_versions_bump_per_run_and_key_isolation_holds() {
        let store = ProfileStore::new();
        let key_a: ProfileKey = ("w".into(), 1);
        let key_b: ProfileKey = ("w".into(), 2);
        assert_eq!(store.version(&key_a), 0);
        store.record(&key_a, &[cost(1), cost(2)]);
        store.record(&key_a, &[cost(1), cost(2)]);
        store.record(&key_b, &[cost(5)]);
        assert_eq!(store.version(&key_a), 2);
        assert_eq!(store.version(&key_b), 1);
        assert_eq!(store.runs_recorded(), 3);
        let profile = store.profile(&key_a);
        assert_eq!(profile.observation(0).expect("line 0").count, 2);
        assert_eq!(profile.observation(1).expect("line 1").mean_cost(), cost(2));
        assert!(profile.observation(2).is_none());
        assert!(store.profile(&("other".into(), 1)).is_empty());
    }

    #[test]
    fn recording_order_cannot_change_the_aggregate() {
        let mut forward = WorkloadProfile::default();
        forward.record_run(&[cost(1)]);
        forward.record_run(&[cost(4)]);
        let mut backward = WorkloadProfile::default();
        backward.record_run(&[cost(4)]);
        backward.record_run(&[cost(1)]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn recorder_identity_equality_matches_the_tracer_pattern() {
        let store = Arc::new(ProfileStore::new());
        let a = ProfileRecorder::to_store(Arc::clone(&store), ("w".into(), 7));
        let b = a.clone();
        let c = ProfileRecorder::to_store(store, ("w".into(), 7));
        assert_eq!(a, b, "clones share the Arc");
        assert_ne!(a, c, "independent recorders differ even on equal keys");
        assert_eq!(ProfileRecorder::disabled(), ProfileRecorder::default());
        assert_ne!(a, ProfileRecorder::disabled());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = ProfileRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(&[cost(1)]);
        let store = Arc::new(ProfileStore::new());
        let live = ProfileRecorder::to_store(Arc::clone(&store), ("w".into(), 1));
        assert!(live.is_enabled());
        live.record(&[cost(1)]);
        assert_eq!(store.runs_recorded(), 1);
    }
}
