//! The unified per-run metrics snapshot.
//!
//! Four counter structs used to travel separately: the plan cache's
//! hit/miss pair, the fault injector's [`FaultCounters`], the recovery
//! layer's [`RecoveryStats`], and the kernel engine's
//! [`ParStatsSnapshot`]. [`MetricsSnapshot`] folds them into one struct
//! with a stable serialized field order (declaration order below), so a
//! run report carries a single metrics block instead of scattered
//! accessors.
//!
//! Every field is deterministic for a fixed seed and policy. The two
//! wall-clock quantities the old structs carried — the plan cache's
//! `planning_nanos` and the kernel engine's scheduling-dependent
//! `stolen_chunks` — are deliberately excluded: they stay reachable
//! through [`crate::plan::PlanCache::stats`] and
//! [`alang::ParEngine::nondet`], keeping snapshot equality meaningful
//! across repeated same-seed runs.

use crate::recovery::RecoveryStats;
use alang::ParStatsSnapshot;
use csd_sim::fault::FaultCounters;
use isp_obs::Tracer;
use serde::{Deserialize, Serialize};

/// Deterministic audit-layer accumulators: how many lines a calibration
/// pass joined, how many counterfactual placement flips it found, and
/// the mean absolute relative time error (integral parts per million so
/// snapshot equality stays exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AuditStats {
    /// Lines joined by [`crate::audit::calibrate`] (0 for unaudited runs).
    pub lines_audited: u64,
    /// Counterfactual Algorithm-1 flips detected.
    pub counterfactual_flips: u64,
    /// Mean absolute relative time error, parts per million.
    pub mean_abs_err_ppm: u64,
}

/// One deterministic snapshot of every counter family a run touches.
///
/// Serialized field order is the declaration order and is part of the
/// repro's byte-stability contract (golden journals diff this block).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Plan-cache lookups satisfied from the cache (0 for uncached runs).
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to build a plan (0 for uncached runs).
    pub plan_cache_misses: u64,
    /// Injection totals from the simulator's fault injector.
    pub faults: FaultCounters,
    /// What the recovery layer absorbed.
    pub recovery: RecoveryStats,
    /// Deterministic kernel-engine counters (chunk grid only).
    pub par: ParStatsSnapshot,
    /// Cached plans refitted from a newer measured profile (0 for
    /// uncached runs). Appended after `par` so the serialized prefix the
    /// golden journals predate is unchanged.
    pub plan_cache_refits: u64,
    /// Calibration-audit accumulators (all zero for unaudited runs).
    /// Appended after `plan_cache_refits`, same stable-prefix contract.
    pub audit: AuditStats,
}

impl MetricsSnapshot {
    /// Folds a plan cache's hit/miss counters into the snapshot. The
    /// cache's wall-clock `planning_nanos` is dropped on purpose — it is
    /// host-time and would break same-seed snapshot equality.
    #[must_use]
    pub fn with_plan_cache(mut self, stats: &crate::plan::PlanCacheStats) -> Self {
        self.plan_cache_hits = stats.hits;
        self.plan_cache_misses = stats.misses;
        self.plan_cache_refits = stats.refits;
        self
    }

    /// Folds a calibration report's aggregates into the snapshot.
    #[must_use]
    pub fn with_audit(mut self, report: &crate::audit::CalibrationReport) -> Self {
        self.audit.lines_audited = report.lines.len() as u64;
        self.audit.counterfactual_flips = report.flips.len() as u64;
        self.audit.mean_abs_err_ppm = (report.mean_abs_rel_err() * 1e6).round() as u64;
        self
    }

    /// The snapshot's publishable counter families as `(name, value)`
    /// rows, in the unified registry namespaces and stable declaration
    /// order — the one fold every consumer shares (tracer publication
    /// here, the timeline footer in [`crate::report`], exporter gauges in
    /// the bench layer), so a new family is added in exactly one place.
    ///
    /// `plan_cache.*` and `kernel.*` stream live at their sources and are
    /// deliberately absent.
    #[must_use]
    pub fn counter_families(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("fault.flash_read_errors", self.faults.flash_read_errors),
            ("fault.nvme_command_errors", self.faults.nvme_command_errors),
            ("fault.dma_transfer_errors", self.faults.dma_transfer_errors),
            ("fault.cse_crashes", self.faults.cse_crashes),
            ("recovery.transient_faults", self.recovery.transient_faults),
            ("recovery.retries", self.recovery.retries),
            ("recovery.recovered_ops", self.recovery.recovered_ops),
            ("recovery.hard_faults", self.recovery.hard_faults),
            ("recovery.fault_migrations", self.recovery.fault_migrations),
            // Simulated seconds, scaled to whole microseconds so the
            // counter stays integral and deterministic.
            (
                "recovery.backoff_us",
                (self.recovery.backoff_secs * 1e6).round() as u64,
            ),
            ("audit.lines_audited", self.audit.lines_audited),
            (
                "audit.counterfactual_flips",
                self.audit.counterfactual_flips,
            ),
            ("audit.mean_abs_err_ppm", self.audit.mean_abs_err_ppm),
        ]
    }

    /// Publishes the fault, recovery, and audit counters into `tracer`'s
    /// registry under the unified `fault.*` / `recovery.*` / `audit.*`
    /// namespaces — one walk over [`MetricsSnapshot::counter_families`].
    /// The other two families stream live at their source —
    /// `plan_cache.*` from [`crate::plan::PlanCache::plan_for`] and
    /// `kernel.*` from the engine's chunked path — so they are not
    /// re-published here.
    pub fn publish_to(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        for (name, value) in self.counter_families() {
            tracer.counter_add(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot_is_all_zero() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.plan_cache_hits, 0);
        assert_eq!(snap.faults, FaultCounters::default());
        assert_eq!(snap.recovery, RecoveryStats::default());
        assert_eq!(snap.par, ParStatsSnapshot::default());
    }

    #[test]
    fn serialized_field_order_is_stable() {
        // The golden-journal contract: field order is declaration order.
        let json = serde_json::to_string(&MetricsSnapshot::default()).expect("serialize");
        let keys: Vec<usize> = [
            "plan_cache_hits",
            "plan_cache_misses",
            "faults",
            "recovery",
            "par",
            "plan_cache_refits",
            "audit",
        ]
        .iter()
        .map(|k| json.find(&format!("\"{k}\"")).expect("key present"))
        .collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "order drifted: {json}"
        );
    }

    #[test]
    fn publish_lands_in_the_unified_namespace() {
        let (tracer, _sink) = Tracer::to_memory();
        let snap = MetricsSnapshot {
            recovery: RecoveryStats {
                transient_faults: 3,
                retries: 2,
                recovered_ops: 1,
                hard_faults: 0,
                fault_migrations: 0,
                backoff_secs: 6e-4,
            },
            ..MetricsSnapshot::default()
        };
        snap.publish_to(&tracer);
        let reg = tracer.metrics_snapshot().expect("enabled");
        assert_eq!(reg.counter("recovery.transient_faults"), Some(3));
        assert_eq!(reg.counter("recovery.backoff_us"), Some(600));
        assert_eq!(reg.counter("fault.cse_crashes"), Some(0));
        assert_eq!(reg.counter("audit.lines_audited"), Some(0));
        // Disabled tracers swallow everything for free.
        MetricsSnapshot::default().publish_to(&Tracer::disabled());
    }

    #[test]
    fn counter_families_cover_every_published_name_once() {
        let families = MetricsSnapshot::default().counter_families();
        let mut names: Vec<&str> = families.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate family name");
        for prefix in ["fault.", "recovery.", "audit."] {
            assert!(
                families.iter().any(|(n, _)| n.starts_with(prefix)),
                "missing family prefix {prefix}"
            );
        }
    }
}
