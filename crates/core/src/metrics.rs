//! The unified per-run metrics snapshot.
//!
//! Four counter structs used to travel separately: the plan cache's
//! hit/miss pair, the fault injector's [`FaultCounters`], the recovery
//! layer's [`RecoveryStats`], and the kernel engine's
//! [`ParStatsSnapshot`]. [`MetricsSnapshot`] folds them into one struct
//! with a stable serialized field order (declaration order below), so a
//! run report carries a single metrics block instead of scattered
//! accessors.
//!
//! Every field is deterministic for a fixed seed and policy. The two
//! wall-clock quantities the old structs carried — the plan cache's
//! `planning_nanos` and the kernel engine's scheduling-dependent
//! `stolen_chunks` — are deliberately excluded: they stay reachable
//! through [`crate::plan::PlanCache::stats`] and
//! [`alang::ParEngine::nondet`], keeping snapshot equality meaningful
//! across repeated same-seed runs.

use crate::recovery::RecoveryStats;
use alang::ParStatsSnapshot;
use csd_sim::fault::FaultCounters;
use isp_obs::Tracer;
use serde::{Deserialize, Serialize};

/// One deterministic snapshot of every counter family a run touches.
///
/// Serialized field order is the declaration order and is part of the
/// repro's byte-stability contract (golden journals diff this block).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Plan-cache lookups satisfied from the cache (0 for uncached runs).
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that had to build a plan (0 for uncached runs).
    pub plan_cache_misses: u64,
    /// Injection totals from the simulator's fault injector.
    pub faults: FaultCounters,
    /// What the recovery layer absorbed.
    pub recovery: RecoveryStats,
    /// Deterministic kernel-engine counters (chunk grid only).
    pub par: ParStatsSnapshot,
    /// Cached plans refitted from a newer measured profile (0 for
    /// uncached runs). Appended after `par` so the serialized prefix the
    /// golden journals predate is unchanged.
    pub plan_cache_refits: u64,
}

impl MetricsSnapshot {
    /// Folds a plan cache's hit/miss counters into the snapshot. The
    /// cache's wall-clock `planning_nanos` is dropped on purpose — it is
    /// host-time and would break same-seed snapshot equality.
    #[must_use]
    pub fn with_plan_cache(mut self, stats: &crate::plan::PlanCacheStats) -> Self {
        self.plan_cache_hits = stats.hits;
        self.plan_cache_misses = stats.misses;
        self.plan_cache_refits = stats.refits;
        self
    }

    /// Publishes the fault and recovery counters into `tracer`'s registry
    /// under the unified `fault.*` / `recovery.*` namespaces. The other
    /// two families stream live at their source — `plan_cache.*` from
    /// [`crate::plan::PlanCache::plan_for`] and `kernel.*` from the
    /// engine's chunked path — so they are not re-published here.
    pub fn publish_to(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        tracer.counter_add("fault.flash_read_errors", self.faults.flash_read_errors);
        tracer.counter_add("fault.nvme_command_errors", self.faults.nvme_command_errors);
        tracer.counter_add("fault.dma_transfer_errors", self.faults.dma_transfer_errors);
        tracer.counter_add("fault.cse_crashes", self.faults.cse_crashes);
        tracer.counter_add("recovery.transient_faults", self.recovery.transient_faults);
        tracer.counter_add("recovery.retries", self.recovery.retries);
        tracer.counter_add("recovery.recovered_ops", self.recovery.recovered_ops);
        tracer.counter_add("recovery.hard_faults", self.recovery.hard_faults);
        tracer.counter_add("recovery.fault_migrations", self.recovery.fault_migrations);
        // Simulated seconds, scaled to whole microseconds so the counter
        // stays integral and deterministic.
        tracer.counter_add(
            "recovery.backoff_us",
            (self.recovery.backoff_secs * 1e6).round() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot_is_all_zero() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.plan_cache_hits, 0);
        assert_eq!(snap.faults, FaultCounters::default());
        assert_eq!(snap.recovery, RecoveryStats::default());
        assert_eq!(snap.par, ParStatsSnapshot::default());
    }

    #[test]
    fn serialized_field_order_is_stable() {
        // The golden-journal contract: field order is declaration order.
        let json = serde_json::to_string(&MetricsSnapshot::default()).expect("serialize");
        let keys: Vec<usize> = [
            "plan_cache_hits",
            "plan_cache_misses",
            "faults",
            "recovery",
            "par",
            "plan_cache_refits",
        ]
        .iter()
        .map(|k| json.find(&format!("\"{k}\"")).expect("key present"))
        .collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "order drifted: {json}"
        );
    }

    #[test]
    fn publish_lands_in_the_unified_namespace() {
        let (tracer, _sink) = Tracer::to_memory();
        let snap = MetricsSnapshot {
            recovery: RecoveryStats {
                transient_faults: 3,
                retries: 2,
                recovered_ops: 1,
                hard_faults: 0,
                fault_migrations: 0,
                backoff_secs: 6e-4,
            },
            ..MetricsSnapshot::default()
        };
        snap.publish_to(&tracer);
        let reg = tracer.metrics_snapshot().expect("enabled");
        assert_eq!(reg.counter("recovery.transient_faults"), Some(3));
        assert_eq!(reg.counter("recovery.backoff_us"), Some(600));
        assert_eq!(reg.counter("fault.cse_crashes"), Some(0));
        // Disabled tracers swallow everything for free.
        MetricsSnapshot::default().publish_to(&Tracer::disabled());
    }
}
