//! Human-readable rendering of execution reports.
//!
//! [`render_timeline`] turns a [`RunReport`] into the kind of annotated
//! trace an ISP developer reads when deciding whether a placement made
//! sense: per-line placement, wall-clock interval, data volumes, staging
//! traffic, and the migration break if one occurred.

use crate::exec::{MigrationReason, RunReport};
use alang::Program;
use std::fmt::Write as _;

/// Formats a byte count compactly.
fn fmt_bytes(b: u64) -> String {
    let n = b as f64;
    if n >= 1e9 {
        format!("{:.2}GB", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1}MB", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}KB", n / 1e3)
    } else {
        format!("{b}B")
    }
}

/// Renders a per-line execution timeline.
///
/// `program` must be the program the report was produced from (line
/// indices are matched positionally).
///
/// ```
/// # use activepy::runtime::ActivePy;
/// # use alang::{builtins::Storage, value::ArrayVal, Value};
/// # use csd_sim::{ContentionScenario, SystemConfig};
/// # let program = alang::parser::parse("a = scan('v')\ns = sum(a)\n")?;
/// # let input = |scale: f64| {
/// #     let mut st = Storage::new();
/// #     let logical = ((scale * 1e9) as u64).max(64);
/// #     st.insert("v", Value::Array(ArrayVal::with_logical(vec![1.0; 64], logical)));
/// #     st
/// # };
/// # let outcome = ActivePy::new()
/// #     .run(&program, &input, &SystemConfig::paper_default(), ContentionScenario::none())?;
/// let text = activepy::report::render_timeline(&program, &outcome.report);
/// assert!(text.contains("total "));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn render_timeline(program: &Program, report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>9}  {:>6}  {:<5} {:>10} {:>10} {:>9}  line",
        "start", "dur", "where", "in", "out", "staged"
    );
    for l in &report.lines {
        let source = program
            .lines()
            .get(l.line)
            .map_or("<unknown>", |line| line.source.as_str());
        let place = match l.engine {
            csd_sim::EngineKind::Cse => "CSD",
            csd_sim::EngineKind::Host => "host",
        };
        let _ = writeln!(
            out,
            "{:>8.3}s {:>5.0}ms  {:<5} {:>10} {:>10} {:>9}  {}",
            l.start_secs,
            (l.end_secs - l.start_secs) * 1e3,
            place,
            fmt_bytes(l.cost.bytes_in),
            fmt_bytes(l.cost.bytes_out),
            fmt_bytes(l.staged_bytes),
            source,
        );
        if let Some(m) = report.migration {
            if m.after_line == l.line {
                let why = match m.reason {
                    MigrationReason::Degraded => "throughput degraded",
                    MigrationReason::Preempted => "high-priority preemption",
                    MigrationReason::DeviceFault => "device fault",
                    MigrationReason::Reclaim => "availability recovered",
                };
                let _ = writeln!(
                    out,
                    "{:>8.3}s  ------ MIGRATION ({why}): {} of live state, {:.0}ms regen ------",
                    m.at_secs,
                    fmt_bytes(m.state_bytes),
                    m.regen_secs * 1e3,
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "total {:.3}s | csd-busy {:.3}s | d2h {} | h2d {} | peak device DRAM {}",
        report.total_secs,
        report.csd_busy_secs(),
        fmt_bytes(report.d2h_bytes),
        fmt_bytes(report.h2d_bytes),
        fmt_bytes(report.peak_device_bytes),
    );
    out.push_str(&render_counters(&report.metrics));
    out
}

/// Renders the non-zero counter families of a metrics snapshot as a
/// timeline footer — the same
/// [`MetricsSnapshot::counter_families`](crate::metrics::MetricsSnapshot::counter_families)
/// fold the tracer publication and the bench exporters walk, so the
/// footer can never drift from the registry namespace. Empty (no
/// header) when every family is zero — the common fault-free,
/// unaudited run.
#[must_use]
pub fn render_counters(metrics: &crate::metrics::MetricsSnapshot) -> String {
    let nonzero: Vec<(&'static str, u64)> = metrics
        .counter_families()
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .collect();
    let mut out = String::new();
    if nonzero.is_empty() {
        return out;
    }
    let _ = writeln!(out, "counters:");
    for (name, value) in nonzero {
        let _ = writeln!(out, "  {name:<32} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecOptions};
    use alang::parser::parse;
    use alang::value::ArrayVal;
    use alang::{Storage, Value};
    use csd_sim::{EngineKind, SystemConfig};

    fn run_report() -> (Program, RunReport) {
        let program = parse("a = scan('v')\nm = a < 50\ns = count(m)\n").expect("parse");
        let mut st = Storage::new();
        let data: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        st.insert("v", Value::Array(ArrayVal::with_logical(data, 100_000_000)));
        let mut sys = SystemConfig::paper_default().build();
        let placements = vec![EngineKind::Cse, EngineKind::Cse, EngineKind::Host];
        let report = execute(
            &program,
            &st,
            &placements,
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("run");
        (program, report)
    }

    #[test]
    fn timeline_contains_every_line_and_the_totals() {
        let (program, report) = run_report();
        let text = render_timeline(&program, &report);
        for line in program.lines() {
            assert!(text.contains(&line.source), "missing: {}", line.source);
        }
        assert!(text.contains("total "));
        assert!(text.contains("CSD"));
        assert!(text.contains("host"));
        assert!(text.contains("peak device DRAM"));
    }

    #[test]
    fn counter_footer_shows_only_nonzero_families() {
        let (_, report) = run_report();
        // Fault-free, unaudited run: no footer at all.
        assert_eq!(render_counters(&report.metrics), "");

        let mut metrics = report.metrics;
        metrics.recovery.retries = 2;
        metrics.audit.lines_audited = 3;
        metrics.audit.mean_abs_err_ppm = 41_000;
        let text = render_counters(&metrics);
        assert!(text.starts_with("counters:"), "{text}");
        assert!(text.contains("recovery.retries"), "{text}");
        assert!(text.contains("audit.lines_audited"), "{text}");
        assert!(text.contains("audit.mean_abs_err_ppm"), "{text}");
        assert!(!text.contains("fault.cse_crashes"), "{text}");
    }

    #[test]
    fn byte_formatting_scales() {
        assert_eq!(fmt_bytes(12), "12B");
        assert_eq!(fmt_bytes(1_500), "1.5KB");
        assert_eq!(fmt_bytes(2_500_000), "2.5MB");
        assert_eq!(fmt_bytes(9_100_000_000), "9.10GB");
    }
}
