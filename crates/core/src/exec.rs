//! The execution engine: runs a partitioned program against the simulated
//! platform.
//!
//! The engine walks the program line by line (the ActivePy task unit),
//! charging the simulator for compute, storage streaming, interconnect
//! transfers, queue-pair invocations, and status updates. When a monitor is
//! installed, every CSD status update is inspected and, on degradation, the
//! remaining CSD work is re-estimated and migrated back to the host at the
//! current line boundary (§III-D): live state moves through the shared
//! address space, host code is regenerated, and execution resumes at the
//! breakpoint.

use crate::error::{ActivePyError, Result};
use crate::estimate::LineEstimate;
use crate::metrics::MetricsSnapshot;
use crate::monitor::{Monitor, MonitorConfig, Observation};
use crate::recovery::{Recovery, RecoveryPolicy, RecoveryStats};
use crate::resume::{backend_code, reason_code, ExecJournal};
use alang::compile::CompiledProgram;
use alang::{
    CostParams, ExecBackend, ExecTier, Interpreter, LineCost, LoweredProgram, ParStatsSnapshot,
    ParallelPolicy, Program, Storage, Vm,
};
use csd_sim::availability::AvailabilityTrace;
use csd_sim::contention::{ContentionScenario, Trigger};
use csd_sim::fault::{DeviceFault, FaultPlan};
use csd_sim::nvme::CommandKind;
use csd_sim::units::{Bytes, Ops};
use csd_sim::{Direction, EngineKind, System};
use isp_obs::{Attrs, SpanKind, StateSnap, Tracer, WalRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Options controlling one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOptions {
    /// The code tier both partitions run at.
    pub tier: ExecTier,
    /// Cost-model constants.
    pub params: CostParams,
    /// CSE contention applied during the run.
    pub scenario: ContentionScenario,
    /// Monitoring/migration policy; `None` disables migration (the static
    /// frameworks of Figures 2 and 5).
    pub monitor: Option<MonitorConfig>,
    /// Whether to charge queue-pair invocation and status-update overheads
    /// (on for ISP runs; irrelevant for all-host runs).
    pub offload_overheads: bool,
    /// Simulated time at which the CSD must preempt the ISP task for a
    /// high-priority request (§III-D, case 1): a `Break` command lands in
    /// the call queue, the status-update code sees it at the next chunk
    /// boundary, and the task migrates unconditionally.
    pub preempt_at: Option<f64>,
    /// The per-line evaluation engine: the lowered register-bytecode VM
    /// (default) or the tree-walking reference interpreter. Both produce
    /// byte-identical reports; they differ only in repro wall-clock.
    pub backend: ExecBackend,
    /// How the run responds to injected device faults (retry budget,
    /// sim-time backoff, host fallback).
    pub recovery: RecoveryPolicy,
    /// The deterministic fault plan injected into the simulator for this
    /// run; [`FaultPlan::none`] (the default) injects nothing.
    pub faults: FaultPlan,
    /// How builtin kernels execute on the repro host: chunked across a
    /// worker pool (`threads > 1`) or serially (the default). Execution-only
    /// — values, [`LineCost`] records, and `values_fingerprint` are
    /// identical for every valid policy, so plans cached under one policy
    /// replay under any other.
    pub parallel: ParallelPolicy,
    /// Trace recording handle. Disabled by default; when enabled, the run
    /// records dual-clock spans for regions, chunks, host lines, monitor
    /// windows, migration decisions, faults, and recovery backoffs.
    /// Observation-only: a live tracer never perturbs the simulated clock,
    /// `values_fingerprint`, or any [`RunReport`] field.
    pub tracer: Tracer,
    /// Measured-cost recording handle. Disabled by default; when enabled,
    /// the run appends its per-line measured [`LineCost`]s to the attached
    /// [`crate::profile::ProfileStore`] after the report is assembled.
    /// Observation-only, like the tracer: recording never perturbs the
    /// simulated clock, `values_fingerprint`, or any [`RunReport`] field.
    pub profile: crate::profile::ProfileRecorder,
    /// Crash-consistent journal handle. Disabled by default; when enabled,
    /// the run appends one checksummed WAL record per execution boundary
    /// (run start/end, host line, region chunk, migration, reclaim) — or,
    /// when resuming, verifies each boundary against the recovered log.
    /// Like the tracer, a live journal never perturbs the simulated
    /// clock, `values_fingerprint`, or any [`RunReport`] field.
    pub journal: crate::resume::ExecJournal,
}

impl ExecOptions {
    /// ActivePy's own execution: generated copy-eliminated code, default
    /// monitoring, no contention.
    #[must_use]
    pub fn activepy() -> Self {
        ExecOptions {
            tier: ExecTier::CompiledCopyElim,
            params: CostParams::paper_default(),
            scenario: ContentionScenario::none(),
            monitor: Some(MonitorConfig::default()),
            offload_overheads: true,
            preempt_at: None,
            backend: ExecBackend::default(),
            recovery: RecoveryPolicy::default(),
            faults: FaultPlan::none(),
            parallel: ParallelPolicy::default(),
            tracer: Tracer::disabled(),
            profile: crate::profile::ProfileRecorder::disabled(),
            journal: crate::resume::ExecJournal::disabled(),
        }
    }

    /// A hand-written C framework: native code, no monitoring.
    #[must_use]
    pub fn native_static() -> Self {
        ExecOptions {
            tier: ExecTier::Native,
            params: CostParams::paper_default(),
            scenario: ContentionScenario::none(),
            monitor: None,
            offload_overheads: true,
            preempt_at: None,
            backend: ExecBackend::default(),
            recovery: RecoveryPolicy::default(),
            faults: FaultPlan::none(),
            parallel: ParallelPolicy::default(),
            tracer: Tracer::disabled(),
            profile: crate::profile::ProfileRecorder::disabled(),
            journal: crate::resume::ExecJournal::disabled(),
        }
    }

    /// Replaces the contention scenario.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ContentionScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Disables task migration.
    #[must_use]
    pub fn without_migration(mut self) -> Self {
        self.monitor = None;
        self
    }

    /// Schedules a high-priority preemption at `at_secs`.
    #[must_use]
    pub fn with_preemption_at(mut self, at_secs: f64) -> Self {
        self.preempt_at = Some(at_secs);
        self
    }

    /// Selects the per-line evaluation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a deterministic fault plan for the run.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the data-parallel kernel policy. Validated at the door like
    /// every other policy; see [`ParallelPolicy::validate`].
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches a trace recording handle to the run.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a measured-cost recording handle to the run.
    #[must_use]
    pub fn with_profile(mut self, profile: crate::profile::ProfileRecorder) -> Self {
        self.profile = profile;
        self
    }

    /// Attaches a crash-consistent journal handle to the run.
    #[must_use]
    pub fn with_journal(mut self, journal: crate::resume::ExecJournal) -> Self {
        self.journal = journal;
        self
    }
}

/// One shard's view of an execution, for fleet scatter/gather runs.
///
/// The repo's central repro discipline is that placement affects *costs
/// only*: the evaluator always computes every value on the full data, so
/// answers are byte-identical no matter where lines run. A `ShardSlice`
/// extends the same discipline to fleets: a shard run evaluates the whole
/// program (values — and therefore `values_fingerprint` — are identical
/// on every shard), but is *charged* only for its own work:
///
/// * lines outside `[charge_start, charge_end)` are evaluated free — no
///   storage, compute, staging, or allocation charges (they belong to a
///   different phase of the fleet plan, e.g. the host-side combine);
/// * charged lines whose output is row-partitioned (`sharded[line]`)
///   charge the shard's exact slice of every extensive quantity, using
///   the same integer partition arithmetic as chunk streaming, so slices
///   across shards sum to the unsharded total with no remainder;
/// * charged replicated lines (model weights, centroid seeds) charge in
///   full on every shard — replicated work really is redone per device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlice {
    /// This shard's index.
    pub index: usize,
    /// Total shards in the fleet.
    pub count: usize,
    /// Row-bound numerator: first row owned.
    pub lo: u64,
    /// Row-bound numerator: one past the last row owned.
    pub hi: u64,
    /// The partition denominator (total logical rows).
    pub rows: u64,
    /// First line this run is charged for.
    pub charge_start: usize,
    /// One past the last line this run is charged for.
    pub charge_end: usize,
    /// Per line: whether its output is row-partitioned (sharded lines
    /// charge a slice, replicated lines charge in full).
    pub sharded: Vec<bool>,
}

impl ShardSlice {
    /// This shard's exact slice of an extensive total; slices across all
    /// shards of one [`alang::shard::ShardMap`] sum to `total`.
    #[must_use]
    pub fn slice(&self, total: u64) -> u64 {
        if self.rows == 0 {
            return total;
        }
        total * self.hi / self.rows - total * self.lo / self.rows
    }

    /// Whether `line` is charged by this run at all.
    #[must_use]
    pub fn charges(&self, line: usize) -> bool {
        line >= self.charge_start && line < self.charge_end
    }

    /// The charge for a quantity produced *by* `line`: zero outside the
    /// charge range, a slice for sharded lines, full for replicated ones.
    #[must_use]
    pub fn scale_line(&self, line: usize, total: u64) -> u64 {
        if !self.charges(line) {
            0
        } else if self.sharded.get(line).copied().unwrap_or(false) {
            self.slice(total)
        } else {
            total
        }
    }

    /// The charge for moving a value defined at `def_line` on behalf of
    /// `at_line`: sliced when the *defining* line is row-partitioned
    /// (each shard ships only its rows), full otherwise.
    #[must_use]
    pub fn scale_def(&self, def_line: Option<usize>, at_line: usize, total: u64) -> u64 {
        if !self.charges(at_line) {
            return 0;
        }
        match def_line {
            Some(d) if self.sharded.get(d).copied().unwrap_or(false) => self.slice(total),
            _ => total,
        }
    }
}

/// What happened on one line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineOutcome {
    /// Line index.
    pub line: usize,
    /// Engine that executed it.
    pub engine: EngineKind,
    /// Start time, seconds.
    pub start_secs: f64,
    /// End time, seconds.
    pub end_secs: f64,
    /// Measured cost.
    pub cost: LineCost,
    /// Bytes moved across the interconnect to stage this line's inputs.
    pub staged_bytes: u64,
}

/// Why a migration was initiated (§III-D distinguishes throughput
/// degradation from preemption; device faults extend the same mechanism
/// to hardware adversity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationReason {
    /// The monitor observed degraded throughput and the re-estimate said
    /// finishing on the host is cheaper.
    Degraded,
    /// The device signalled a high-priority request through the command
    /// pages; the task must vacate immediately.
    Preempted,
    /// A hard device fault (CSE crash, or a transient fault that exhausted
    /// its retry budget): the remaining work falls back to the host from
    /// the last completed chunk-boundary checkpoint.
    DeviceFault,
    /// The reverse direction: lines that had migrated to the host after a
    /// degradation are speculatively re-assigned to the CSD once measured
    /// availability clears again (profile-guided re-planning's bidirectional
    /// migration). Hysteresis-guarded to avoid ping-ponging.
    Reclaim,
}

impl MigrationReason {
    /// Stable lowercase label — the `reason` attribute on
    /// `migration.decision` trace events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationReason::Degraded => "degraded",
            MigrationReason::Preempted => "preempted",
            MigrationReason::DeviceFault => "device_fault",
            MigrationReason::Reclaim => "reclaim",
        }
    }
}

/// Alias emphasizing the causal reading of [`MigrationReason`] in fault
/// reports and the bench sweep.
pub type MigrationCause = MigrationReason;

/// A migration that occurred during the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// The CSD line at whose end execution broke.
    pub after_line: usize,
    /// Live state moved device-to-host, bytes.
    pub state_bytes: u64,
    /// Wall-clock time of the decision, seconds.
    pub at_secs: f64,
    /// Code-regeneration overhead paid, seconds.
    pub regen_secs: f64,
    /// What triggered the break.
    pub reason: MigrationReason,
}

/// The result of one execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end latency in seconds.
    pub total_secs: f64,
    /// Per-line outcomes.
    pub lines: Vec<LineOutcome>,
    /// The migration, if one occurred.
    pub migration: Option<MigrationEvent>,
    /// Lines that actually executed on the CSD.
    pub csd_lines_executed: usize,
    /// Total bytes shipped device-to-host.
    pub d2h_bytes: u64,
    /// Total bytes shipped host-to-device.
    pub h2d_bytes: u64,
    /// Peak bytes of program state resident in device DRAM (BAR-mapped
    /// shared-address-space allocations).
    pub peak_device_bytes: u64,
    /// FNV-1a hash over every program variable's final value, in
    /// first-assignment order — the cheap "did we compute the same
    /// answer?" check the fault sweep and the chaos differential compare
    /// across faulted and fault-free runs.
    pub values_fingerprint: u64,
    /// The kernel-execution policy the run was configured with.
    pub parallel: ParallelPolicy,
    /// The unified metrics block: fault, recovery, and kernel counter
    /// families in one deterministic snapshot (plan-cache counters are
    /// zero here; [`crate::plan::PlanCache`] fills them in for cached
    /// runs).
    pub metrics: MetricsSnapshot,
    /// Every migration the run performed, in decision order — including
    /// [`MigrationReason::Reclaim`] flips back to the CSD. The legacy
    /// `migration` field above stays the last *host-ward* event so callers
    /// that predate bidirectional migration read what they always read.
    /// Appended after `metrics` so the serialized prefix the golden
    /// journals predate is unchanged.
    pub migrations: Vec<MigrationEvent>,
    /// The per-line Eq. 1 terms of the assignment that executed —
    /// empty for raw `execute` calls, filled by
    /// [`crate::runtime::ActivePy::execute_plan`] and the fleet plan
    /// executor so the audit layer can join predictions against this
    /// report without the plan in hand. Appended after `migrations` to
    /// keep the serialized prefix stable.
    pub eq1: Vec<crate::audit::Eq1Term>,
}

impl RunReport {
    /// What the recovery layer absorbed during the run.
    #[deprecated(since = "0.1.0", note = "read `metrics.recovery` instead")]
    #[must_use]
    pub fn recovery(&self) -> RecoveryStats {
        self.metrics.recovery
    }

    /// Chunk counters accumulated by the run's kernel calls.
    #[deprecated(since = "0.1.0", note = "read `metrics.par` instead")]
    #[must_use]
    pub fn par_stats(&self) -> ParStatsSnapshot {
        self.metrics.par
    }

    /// Sum of measured line costs.
    #[must_use]
    pub fn total_cost(&self) -> LineCost {
        self.lines.iter().map(|l| l.cost).sum()
    }

    /// Total wall-clock seconds spent executing CSD lines.
    #[must_use]
    pub fn csd_busy_secs(&self) -> f64 {
        self.lines
            .iter()
            .filter(|l| l.engine == EngineKind::Cse)
            .map(|l| l.end_secs - l.start_secs)
            .sum()
    }

    /// The absolute simulated time at which the ISP task had completed
    /// `fraction` of its CSD work in this run — how the Figure 5 stress
    /// point ("right after 50 % of their progress") is computed from an
    /// uncontended reference run. Returns `None` when nothing ran on the
    /// CSD.
    #[must_use]
    pub fn time_at_csd_progress(&self, fraction: f64) -> Option<f64> {
        let total = self.csd_busy_secs();
        if total <= 0.0 {
            return None;
        }
        let target = total * fraction.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for l in &self.lines {
            if l.engine != EngineKind::Cse {
                continue;
            }
            let span = l.end_secs - l.start_secs;
            if acc + span >= target {
                return Some(l.start_secs + (target - acc));
            }
            acc += span;
        }
        self.lines.last().map(|l| l.end_secs)
    }
}

/// Executes `program` with the given per-line `placements` on `system`.
///
/// `estimates` (from the sampling/fitting pipeline) are required for
/// migration decisions; without them the monitor is ignored. `copy_elim`
/// follows [`alang::copyelim::eliminable_lines`] (empty disables
/// elimination).
///
/// # Errors
///
/// Returns an error if `placements` does not match the program length, or
/// if any line fails to evaluate.
pub fn execute(
    program: &Program,
    storage: &Storage,
    placements: &[EngineKind],
    system: &mut System,
    opts: &ExecOptions,
    estimates: Option<&[LineEstimate]>,
    copy_elim: &[bool],
) -> Result<RunReport> {
    execute_with_shard(
        program, storage, placements, system, opts, estimates, copy_elim, None,
    )
}

/// As [`execute`], charging the run as one shard of a fleet when `shard`
/// is given: values are still computed in full (so `values_fingerprint`
/// matches the unsharded run byte-for-byte), but extensive costs are
/// restricted to the shard's charge range and row slice.
///
/// # Errors
///
/// As [`execute`].
#[allow(clippy::too_many_arguments)]
pub fn execute_with_shard(
    program: &Program,
    storage: &Storage,
    placements: &[EngineKind],
    system: &mut System,
    opts: &ExecOptions,
    estimates: Option<&[LineEstimate]>,
    copy_elim: &[bool],
    shard: Option<&ShardSlice>,
) -> Result<RunReport> {
    match opts.backend {
        ExecBackend::Vm => {
            let lowered = alang::lower::lower_with(program, copy_elim)?;
            let eval = Evaluator::Vm(Vm::with_policy(&lowered, storage, opts.parallel));
            execute_impl(
                program, placements, system, opts, estimates, copy_elim, eval, shard,
            )
        }
        ExecBackend::AstWalk => {
            let eval = Evaluator::Ast(Interpreter::with_policy(storage, opts.parallel));
            execute_impl(
                program, placements, system, opts, estimates, copy_elim, eval, shard,
            )
        }
    }
}

/// Executes an already-lowered program on the bytecode VM, reusing the
/// lowering (and its baked copy-elimination flags) across runs — how a
/// cached [`crate::plan::OffloadPlan`] avoids re-lowering per contention
/// scenario.
///
/// # Errors
///
/// As [`execute`]; additionally rejects a lowering whose line count does
/// not match `program`.
pub fn execute_lowered(
    program: &Program,
    lowered: &LoweredProgram,
    storage: &Storage,
    placements: &[EngineKind],
    system: &mut System,
    opts: &ExecOptions,
    estimates: Option<&[LineEstimate]>,
) -> Result<RunReport> {
    if lowered.len() != program.len() {
        return Err(ActivePyError::exec(format!(
            "lowered program has {} lines, source has {}",
            lowered.len(),
            program.len()
        )));
    }
    let eval = Evaluator::Vm(Vm::with_policy(lowered, storage, opts.parallel));
    execute_impl(
        program,
        placements,
        system,
        opts,
        estimates,
        lowered.copy_elim(),
        eval,
        None,
    )
}

/// The per-line evaluation engine behind [`execute`]. Engine bookkeeping
/// (variable locations, the shared address space, migration) stays
/// name-keyed either way; only line evaluation and variable-size queries
/// dispatch here.
enum Evaluator<'a> {
    Ast(Interpreter<'a>),
    Vm(Vm<'a>),
}

impl Evaluator<'_> {
    fn exec_line(&mut self, line: &alang::ast::Line, elim: bool) -> alang::error::Result<LineCost> {
        match self {
            Evaluator::Ast(interp) => interp.exec_line(line, elim),
            Evaluator::Vm(vm) => vm.exec_line_with(line.index, elim),
        }
    }

    fn var_bytes(&self, name: &str) -> u64 {
        match self {
            Evaluator::Ast(interp) => interp.var_bytes(name),
            Evaluator::Vm(vm) => vm.var_bytes(name),
        }
    }

    /// The debug rendering of a variable's current value; what the values
    /// fingerprint hashes. Identical across backends because both render
    /// the same [`alang::Value`].
    fn var_debug(&self, name: &str) -> String {
        match self {
            Evaluator::Ast(interp) => format!("{:?}", interp.var(name)),
            Evaluator::Vm(vm) => format!("{:?}", vm.var(name)),
        }
    }

    /// Chunk/steal counters accumulated by the run's kernel calls.
    fn par_stats(&self) -> ParStatsSnapshot {
        match self {
            Evaluator::Ast(interp) => interp.par_stats(),
            Evaluator::Vm(vm) => vm.par_stats(),
        }
    }

    /// Hands the run's tracer to the kernel engine so `kernel.par` spans
    /// land in the same journal as the execution spans.
    fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            Evaluator::Ast(interp) => interp.set_tracer(tracer),
            Evaluator::Vm(vm) => vm.set_tracer(tracer),
        }
    }
}

/// FNV-1a over every program variable's final value (first-assignment
/// order): the answer-integrity check compared between faulted and
/// fault-free runs.
fn values_fingerprint(program: &Program, eval: &Evaluator<'_>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    let mut seen: Vec<&str> = Vec::new();
    for line in program.lines() {
        if seen.contains(&line.target.as_str()) {
            continue;
        }
        seen.push(&line.target);
    }
    for target in seen {
        mix(target.as_bytes());
        mix(eval.var_debug(target).as_bytes());
    }
    hash
}

/// A hard fault leaving the recovery layer: either a crash, or a transient
/// fault that exhausted its retry budget — both escalate to the permanent
/// [`ActivePyError::DeviceFault`] so callers never retry them again.
fn escalate(fault: DeviceFault) -> ActivePyError {
    ActivePyError::device_fault(fault.to_string())
}

/// The shard's charged view of a measured [`LineCost`]: every extensive
/// field scaled by [`ShardSlice::scale_line`] (zero outside the charge
/// range, an exact slice for sharded lines, full for replicated ones).
fn shard_scaled_cost(sh: &ShardSlice, line: usize, cost: LineCost) -> LineCost {
    LineCost {
        compute_ops: sh.scale_line(line, cost.compute_ops),
        storage_bytes: sh.scale_line(line, cost.storage_bytes),
        bytes_in: sh.scale_line(line, cost.bytes_in),
        bytes_out: sh.scale_line(line, cost.bytes_out),
        copy_bytes: sh.scale_line(line, cost.copy_bytes),
        eliminable_copy_bytes: sh.scale_line(line, cost.eliminable_copy_bytes),
        calls: cost.calls,
    }
}

/// Assembles the deterministic boundary snapshot the journal records: sim
/// clock, recovery accounting, injected-fault counters, the fault
/// injector's stream position, and (inside regions) the monitor's
/// degradation evidence. Everything here is simulated-clock state, so an
/// uninterrupted run and its replay produce bit-identical snapshots.
fn wal_snap(system: &System, recov: &Recovery, monitor: Option<&Monitor>) -> StateSnap {
    let counters = system.fault_counters();
    let (crashed, rng_state) = match system.faults() {
        Some(f) => (f.crashed(), f.rng_state()),
        None => (false, 0),
    };
    StateSnap {
        clock_bits: system.now().as_secs().to_bits(),
        transient_faults: recov.stats.transient_faults,
        retries: recov.stats.retries,
        recovered_ops: recov.stats.recovered_ops,
        hard_faults: recov.stats.hard_faults,
        fault_migrations: recov.stats.fault_migrations,
        backoff_bits: recov.stats.backoff_secs.to_bits(),
        flash_read_errors: counters.flash_read_errors,
        nvme_command_errors: counters.nvme_command_errors,
        dma_transfer_errors: counters.dma_transfer_errors,
        cse_crashes: counters.cse_crashes,
        crashed,
        rng_state,
        monitor: monitor.map(|m| m.wal_snapshot()),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_impl(
    program: &Program,
    placements: &[EngineKind],
    system: &mut System,
    opts: &ExecOptions,
    estimates: Option<&[LineEstimate]>,
    copy_elim: &[bool],
    mut eval: Evaluator<'_>,
    shard: Option<&ShardSlice>,
) -> Result<RunReport> {
    if placements.len() != program.len() {
        return Err(ActivePyError::exec(format!(
            "{} placements for {} lines",
            placements.len(),
            program.len()
        )));
    }
    // Options are validated up front: a bad policy is a configuration
    // error at the door, not a silent clamp mid-run.
    if let Some(cfg) = opts.monitor {
        cfg.validate()?;
    }
    opts.recovery.validate()?;
    opts.faults.validate().map_err(ActivePyError::config)?;
    opts.parallel.validate().map_err(ActivePyError::config)?;
    if !opts.faults.is_none() {
        system.install_faults(opts.faults.clone());
    }
    let mut recov = Recovery::with_tracer(opts.recovery, opts.tracer.clone());
    eval.set_tracer(opts.tracer.clone());
    // The plan's original placement is the reclaim target set: only lines
    // the planner offloaded — then migrated host-ward mid-run — are ever
    // speculatively re-assigned to the CSD.
    let original: Vec<EngineKind> = placements.to_vec();
    let mut placements = placements.to_vec();
    let mut var_loc: BTreeMap<String, EngineKind> = BTreeMap::new();
    let mut vars = VarSpace::default();
    let mut lines_out = Vec::with_capacity(program.len());
    let mut migration: Option<MigrationEvent> = None;
    let mut migrations: Vec<MigrationEvent> = Vec::new();
    let mut csd_executed = 0usize;
    let csd_total = placements.iter().filter(|p| **p == EngineKind::Cse).count();
    let mut contention_applied = false;
    let exec_span = opts.tracer.begin_with(
        "phase.execute",
        SpanKind::Phase,
        Some(system.now().as_secs()),
        vec![
            ("lines".into(), program.len().into()),
            ("csd_lines".into(), csd_total.into()),
        ],
    );
    opts.journal.on_record(WalRecord::RunStart {
        lane: 0,
        program_len: program.len() as u32,
        backend: backend_code(opts.backend),
    })?;

    // Distribute the CSD binary into device memory before execution
    // starts. A must-complete transfer: DMA faults only delay it.
    if csd_total > 0 && opts.offload_overheads {
        let region_lines = csd_total;
        let binary = Bytes::new(16 * 1024 + region_lines as u64 * 2048);
        recov.run_to_completion(system, |s| s.try_transfer(Direction::HostToDevice, binary));
    }

    // Absolute-time contention is installed into the availability traces up
    // front, so it throttles resources even in the middle of a line.
    if let Trigger::AtTime(at) = opts.scenario.trigger() {
        if !opts.scenario.is_none() {
            install_contention(system, opts, at);
            contention_applied = true;
        }
    }

    let mut i = 0usize;
    while i < program.len() {
        // Progress-based contention triggers on ISP-task progress.
        let progress = if csd_total == 0 {
            0.0
        } else {
            csd_executed as f64 / csd_total as f64
        };
        if !contention_applied && opts.scenario.active_at_progress(progress) {
            let now = system.now();
            install_contention(system, opts, now);
            contention_applied = true;
        }

        // Bidirectional migration (§III-D in reverse): when measured CSE
        // availability has cleared after a degradation migration, the
        // remaining originally-offloaded lines are speculatively
        // re-assigned to the CSD at this line boundary. The decision reads
        // only simulated-clock quantities (availability traces, modelled
        // estimates), so it is identical across evaluation backends and —
        // like every placement decision — cannot affect computed values.
        if let Some(event) = try_reclaim(
            program,
            i,
            &original,
            &mut placements,
            system,
            opts,
            estimates,
            migrations.last(),
        ) {
            migrations.push(event);
            opts.journal.on_record(WalRecord::Reclaim {
                lane: 0,
                line: i as u32,
                in_region: false,
                snap: wal_snap(system, &recov, None),
            })?;
            // Re-enter the loop at the same line: it is now CSD-resident
            // and executes through the region path.
            continue;
        }

        if placements[i] == EngineKind::Host {
            let line = &program.lines()[i];
            let start = system.now().as_secs();
            let line_span = opts.tracer.begin_with(
                "exec.host_line",
                SpanKind::Device,
                Some(start),
                vec![("line".into(), i.into())],
            );
            let staged = stage_inputs(
                program,
                line,
                EngineKind::Host,
                system,
                &eval,
                &mut var_loc,
                &mut vars,
                true,
                &mut recov,
                shard,
            )?;
            let elim = copy_elim.get(i).copied().unwrap_or(false);
            let mut cost = eval.exec_line(line, elim)?;
            if let Some(sh) = shard {
                cost = shard_scaled_cost(sh, i, cost);
            }
            if cost.storage_bytes > 0 {
                system.storage_read(EngineKind::Host, Bytes::new(cost.storage_bytes));
            }
            let ops = cost.effective_ops(opts.tier, &opts.params);
            if ops > 0 {
                system.compute(EngineKind::Host, Ops::new(ops));
            }
            var_loc.insert(line.target.clone(), EngineKind::Host);
            let bind_bytes = match shard {
                Some(sh) => sh.scale_line(i, eval.var_bytes(&line.target)),
                None => eval.var_bytes(&line.target),
            };
            vars.bind(system, &line.target, EngineKind::Host, bind_bytes)?;
            opts.tracer.end(line_span, Some(system.now().as_secs()));
            lines_out.push(LineOutcome {
                line: i,
                engine: EngineKind::Host,
                start_secs: start,
                end_secs: system.now().as_secs(),
                cost,
                staged_bytes: staged,
            });
            vars.release_dead(system, program, i)?;
            opts.journal.on_record(WalRecord::HostLine {
                lane: 0,
                line: i as u32,
                snap: wal_snap(system, &recov, None),
            })?;
            i += 1;
            continue;
        }

        // A contiguous CSD region [i, end]: executed as a chunk-pipelined
        // stream (real CSD frameworks process per flash page / per chunk;
        // the paper's Python lines sit inside chunked loops, with status
        // updates "once every tens of machine instructions").
        let mut end = i;
        while end + 1 < program.len() && placements[end + 1] == EngineKind::Cse {
            end += 1;
        }
        let region_span = opts.tracer.begin_with(
            "exec.region",
            SpanKind::Device,
            Some(system.now().as_secs()),
            vec![
                ("start_line".into(), i.into()),
                ("end_line".into(), end.into()),
            ],
        );
        let region = match RegionRun::prepare(
            program,
            i,
            end,
            system,
            &mut eval,
            &mut var_loc,
            &mut vars,
            opts,
            copy_elim,
            &mut recov,
            shard,
        ) {
            Ok(region) => region,
            Err(ActivePyError::DeviceFault { .. }) if opts.recovery.fallback_to_host => {
                // The invocation itself hard-faulted, before any region
                // state was computed or moved: fall back by re-placing the
                // remaining CSD lines on the host and re-entering the loop
                // at the same line. No live state to drain (checkpoint is
                // the previous line boundary), only host code to regenerate.
                let later = placements[i..]
                    .iter()
                    .filter(|p| **p == EngineKind::Cse)
                    .count();
                let regen_secs = CompiledProgram::compile_secs_for(later);
                let decided_at = system.now().as_secs();
                opts.tracer.instant(
                    "migration.decision",
                    SpanKind::Migration,
                    Some(decided_at),
                    vec![
                        (
                            "reason".into(),
                            MigrationReason::DeviceFault.as_str().into(),
                        ),
                        ("after_line".into(), i.saturating_sub(1).into()),
                        ("state_bytes".into(), 0u64.into()),
                        ("regen_secs".into(), regen_secs.into()),
                    ],
                );
                opts.tracer.counter_add("exec.migrations", 1);
                let event = MigrationEvent {
                    after_line: i.saturating_sub(1),
                    state_bytes: 0,
                    at_secs: decided_at,
                    regen_secs,
                    reason: MigrationReason::DeviceFault,
                };
                migration = Some(event);
                migrations.push(event);
                system.advance(csd_sim::units::Duration::from_secs(regen_secs));
                recov.stats.fault_migrations += 1;
                opts.journal.on_record(WalRecord::Migration {
                    lane: 0,
                    line: i.saturating_sub(1) as u32,
                    chunk: 0,
                    reason: reason_code(MigrationReason::DeviceFault),
                    state_bytes: 0,
                    snap: wal_snap(system, &recov, None),
                })?;
                opts.tracer.end_with(
                    region_span,
                    Some(system.now().as_secs()),
                    vec![("aborted".into(), true.into())],
                );
                for p in placements.iter_mut().skip(i) {
                    if *p == EngineKind::Cse {
                        *p = EngineKind::Host;
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let outcome = region.execute(
            system,
            &mut var_loc,
            &mut vars,
            &mut placements,
            opts,
            estimates,
            &mut contention_applied,
            csd_executed,
            csd_total,
            &mut recov,
        )?;
        opts.tracer.end(region_span, Some(system.now().as_secs()));
        lines_out.extend(outcome.lines);
        csd_executed += end - i + 1;
        if let Some(event) = outcome.migration {
            migration = Some(event);
            migrations.push(event);
        }
        if let Some(event) = outcome.reclaim {
            migrations.push(event);
        }
        vars.release_dead(system, program, end)?;
        i = end + 1;
    }

    // The program's result must end up in host memory (must-complete).
    // In a fleet shard run, gathering results is the fleet's combine
    // phase, charged against the shared host link budget instead.
    if let Some(last) = program.lines().last() {
        if var_loc.get(&last.target) == Some(&EngineKind::Cse) {
            let full = eval.var_bytes(&last.target);
            let bytes = match shard {
                Some(sh) => sh.scale_line(last.index, full),
                None => full,
            };
            // A free line in a shard run drains nothing; the unsharded
            // path keeps issuing the (possibly empty) transfer so its
            // timing is byte-identical to the pre-fleet engine.
            if shard.is_none() || bytes > 0 {
                recov.run_to_completion(system, |s| {
                    s.try_transfer(Direction::DeviceToHost, Bytes::new(bytes))
                });
            }
        }
    }

    let metrics = MetricsSnapshot {
        plan_cache_hits: 0,
        plan_cache_misses: 0,
        faults: system.fault_counters(),
        recovery: recov.stats,
        par: eval.par_stats(),
        plan_cache_refits: 0,
        audit: crate::metrics::AuditStats::default(),
    };
    metrics.publish_to(&opts.tracer);
    opts.tracer.end_with(
        exec_span,
        Some(system.now().as_secs()),
        vec![("migrated".into(), migration.is_some().into())],
    );
    // Feed the run's measured per-line costs to the profile store. Shard
    // runs are skipped: their costs are slice-scaled and would bias the
    // unsharded profile the planner refits against.
    if opts.profile.is_enabled() && shard.is_none() {
        let mut costs = vec![LineCost::default(); program.len()];
        for l in &lines_out {
            if let Some(slot) = costs.get_mut(l.line) {
                *slot = l.cost;
            }
        }
        opts.profile.record(&costs);
    }
    let fingerprint = values_fingerprint(program, &eval);
    let total_secs = system.now().as_secs();
    opts.journal.on_record(WalRecord::RunEnd {
        lane: 0,
        fingerprint,
        total_secs_bits: total_secs.to_bits(),
    })?;
    Ok(RunReport {
        total_secs,
        lines: lines_out,
        migration,
        csd_lines_executed: csd_executed,
        d2h_bytes: system.dma().d2h_bytes().as_u64(),
        h2d_bytes: system.dma().h2d_bytes().as_u64(),
        peak_device_bytes: vars.peak_device,
        values_fingerprint: fingerprint,
        parallel: opts.parallel,
        metrics,
        migrations,
        eq1: Vec::new(),
    })
}

/// Shared-address-space bookkeeping: every materialized program value is a
/// real allocation in [`csd_sim::memory::SharedAddressSpace`], placed near
/// its consumer and migrated when it crosses the interconnect. Region-
/// internal intermediates are chunk-pipelined and never fully materialize,
/// so only escaping values are bound.
#[derive(Debug, Default)]
struct VarSpace {
    objects: BTreeMap<String, csd_sim::memory::ObjectId>,
    peak_device: u64,
}

impl VarSpace {
    /// (Re)binds `name` to a fresh allocation of `bytes` near `engine`.
    fn bind(
        &mut self,
        system: &mut System,
        name: &str,
        engine: EngineKind,
        bytes: u64,
    ) -> Result<()> {
        if let Some(old) = self.objects.remove(name) {
            system
                .memory_mut()
                .dealloc(old)
                .map_err(|e| ActivePyError::exec(format!("dealloc `{name}`: {e}")))?;
        }
        if bytes == 0 {
            return Ok(());
        }
        let id = system
            .memory_mut()
            .alloc_near(engine, csd_sim::units::Bytes::new(bytes))
            .map_err(|e| ActivePyError::exec(format!("allocating {bytes} B for `{name}`: {e}")))?;
        self.objects.insert(name.to_owned(), id);
        self.update_peak(system);
        Ok(())
    }

    /// Moves `name`'s allocation next to `engine`, if it is materialized.
    fn move_to(&mut self, system: &mut System, name: &str, engine: EngineKind) -> Result<()> {
        if let Some(id) = self.objects.get(name) {
            system
                .memory_mut()
                .migrate(*id, csd_sim::memory::Region::local_to(engine))
                .map_err(|e| ActivePyError::exec(format!("migrating `{name}`: {e}")))?;
            self.update_peak(system);
        }
        Ok(())
    }

    /// Frees `name`'s allocation (the value died: no later consumer).
    fn release(&mut self, system: &mut System, name: &str) -> Result<()> {
        if let Some(id) = self.objects.remove(name) {
            system
                .memory_mut()
                .dealloc(id)
                .map_err(|e| ActivePyError::exec(format!("dealloc `{name}`: {e}")))?;
        }
        Ok(())
    }

    /// Frees every bound value that has no consumer after line `at` and is
    /// not the program result.
    fn release_dead(&mut self, system: &mut System, program: &Program, at: usize) -> Result<()> {
        let result_var = program
            .lines()
            .last()
            .map(|l| l.target.clone())
            .unwrap_or_default();
        let dead: Vec<String> = self
            .objects
            .keys()
            .filter(|name| **name != result_var && program.consumers_of(name, at).is_empty())
            .cloned()
            .collect();
        for name in dead {
            self.release(system, &name)?;
        }
        Ok(())
    }

    fn update_peak(&mut self, system: &System) {
        let used = system
            .memory()
            .used(csd_sim::memory::Region::DeviceDram)
            .as_u64();
        self.peak_device = self.peak_device.max(used);
    }
}

/// Moves any of `line`'s inputs that live on the other engine next to it,
/// returning the bytes shipped (the shared-address-space placement policy:
/// data lives near whoever reads it next).
/// `move_allocation` distinguishes the two staging modes: a host line
/// materializes its inputs in host DRAM (the allocation moves), while a
/// chunk-pipelined CSD region *streams* its inputs — the transfer is
/// charged but the device never holds more than chunk buffers, so the
/// allocation stays put.
#[allow(clippy::too_many_arguments)]
fn stage_inputs(
    program: &Program,
    line: &alang::ast::Line,
    engine: EngineKind,
    system: &mut System,
    eval: &Evaluator<'_>,
    var_loc: &mut BTreeMap<String, EngineKind>,
    vars: &mut VarSpace,
    move_allocation: bool,
    recov: &mut Recovery,
    shard: Option<&ShardSlice>,
) -> Result<u64> {
    let mut staged = 0u64;
    for name in line.inputs() {
        let bytes = match shard {
            // A shard ships only its own rows of a partitioned value; a
            // line outside the charge range ships nothing at all.
            Some(sh) => sh.scale_def(program.def_site(name), line.index, eval.var_bytes(name)),
            None => eval.var_bytes(name),
        };
        if bytes == 0 {
            continue;
        }
        if let Some(loc) = var_loc.get(name) {
            if *loc != engine {
                let dir = match engine {
                    EngineKind::Cse => Direction::HostToDevice,
                    EngineKind::Host => Direction::DeviceToHost,
                };
                // Staging must complete; DMA faults only delay it.
                recov.run_to_completion(system, |s| s.try_transfer(dir, Bytes::new(bytes)));
                staged += bytes;
                var_loc.insert(name.clone(), engine);
                if move_allocation {
                    vars.move_to(system, name, engine)?;
                }
            }
        }
    }
    Ok(staged)
}

/// How many chunks a CSD region's stream is processed in. Real CSD
/// frameworks stream per flash page; the paper's status updates land
/// "typically once every tens of machine instructions", so detection and
/// break granularity is far finer than one of our bulk lines.
const REGION_CHUNKS: u64 = 64;

/// Splits `total` into [`REGION_CHUNKS`] near-equal slices; returns slice `c`.
fn chunk_slice(total: u64, c: u64) -> u64 {
    total * (c + 1) / REGION_CHUNKS - total * c / REGION_CHUNKS
}

/// What a region run produced.
struct RegionOutcome {
    lines: Vec<LineOutcome>,
    migration: Option<MigrationEvent>,
    /// A device-ward reclaim performed *inside* the region's post-migration
    /// host completion, when availability recovered mid-stream. Always
    /// chronologically after `migration`.
    reclaim: Option<MigrationEvent>,
}

/// A contiguous run of CSD lines prepared for chunk-pipelined execution.
struct RegionRun {
    start: usize,
    end: usize,
    targets: Vec<String>,
    costs: Vec<LineCost>,
    ops: Vec<u64>,
    staged: Vec<u64>,
    /// Per line: bytes of its output that escape the region (consumed by a
    /// later line or as the program result) — the only live state a
    /// streaming region carries at a chunk boundary.
    escaping_out: Vec<u64>,
    /// Region-external inputs currently resident in device memory.
    external_input_bytes: u64,
}

impl RegionRun {
    /// Stages inputs, invokes the CSD function through the queue pair, and
    /// computes the region's values and measured costs.
    #[allow(clippy::too_many_arguments)]
    fn prepare(
        program: &Program,
        start: usize,
        end: usize,
        system: &mut System,
        eval: &mut Evaluator<'_>,
        var_loc: &mut BTreeMap<String, EngineKind>,
        vars: &mut VarSpace,
        opts: &ExecOptions,
        copy_elim: &[bool],
        recov: &mut Recovery,
        shard: Option<&ShardSlice>,
    ) -> Result<RegionRun> {
        if opts.offload_overheads {
            // The invocation command can be hit by injected NVMe errors (or
            // observe the crash). Rolled — and hard-failed — *before* any
            // region state is evaluated or relocated, so an aborted prepare
            // needs no unwinding: the caller just re-places the lines.
            recov
                .run_bounded(system, |s| s.try_nvme_command())
                .map_err(escalate)?;
            let now = system.now();
            system
                .queue_mut()
                .submit(now, CommandKind::InvokeFunction { entry_line: start })
                .map_err(|e| ActivePyError::exec(format!("queue submit failed: {e}")))?;
            system
                .queue_mut()
                .fetch()
                .map_err(|e| ActivePyError::exec(format!("queue fetch failed: {e}")))?;
            system.charge_invocation();
        }
        let mut targets = Vec::with_capacity(end - start + 1);
        let mut costs = Vec::with_capacity(end - start + 1);
        let mut ops = Vec::with_capacity(end - start + 1);
        let mut staged = Vec::with_capacity(end - start + 1);
        let mut external_input_bytes = 0u64;
        for line in &program.lines()[start..=end] {
            // External inputs cross to device memory before the stream
            // starts; intra-region values are consumed chunk-by-chunk.
            let external: u64 = line
                .inputs()
                .iter()
                .filter(|v| {
                    program.def_site(v).is_none_or(|d| d < start)
                        && var_loc.get(*v) == Some(&EngineKind::Host)
                })
                .map(|v| match shard {
                    Some(sh) => sh.scale_def(program.def_site(v), line.index, eval.var_bytes(v)),
                    None => eval.var_bytes(v),
                })
                .sum();
            let s = stage_inputs(
                program,
                line,
                EngineKind::Cse,
                system,
                eval,
                var_loc,
                vars,
                false,
                recov,
                shard,
            )?;
            external_input_bytes += external;
            staged.push(s);
            let elim = copy_elim.get(line.index).copied().unwrap_or(false);
            let mut cost = eval.exec_line(line, elim)?;
            if let Some(sh) = shard {
                cost = shard_scaled_cost(sh, line.index, cost);
            }
            ops.push(cost.effective_ops(opts.tier, &opts.params));
            costs.push(cost);
            targets.push(line.target.clone());
            var_loc.insert(line.target.clone(), EngineKind::Cse);
        }
        let escaping_out: Vec<u64> = (start..=end)
            .map(|k| {
                let line = &program.lines()[k];
                let consumed_later = !program.consumers_of(&line.target, end).is_empty();
                let is_result = k == program.len() - 1;
                if consumed_later || is_result {
                    costs[k - start].bytes_out
                } else {
                    0
                }
            })
            .collect();
        // Only escaping values materialize in device DRAM; the chunk
        // pipeline consumes everything else in place.
        for (k, bytes) in escaping_out.iter().enumerate() {
            if *bytes > 0 {
                vars.bind(system, &targets[k], EngineKind::Cse, *bytes)?;
            }
        }
        Ok(RegionRun {
            start,
            end,
            targets,
            costs,
            ops,
            staged,
            escaping_out,
            external_input_bytes,
        })
    }

    /// Streams the region through the simulator in [`REGION_CHUNKS`]
    /// chunks, monitoring throughput after each and migrating the remaining
    /// stream to the host when the re-estimate says so (§III-D).
    #[allow(clippy::too_many_arguments)]
    fn execute(
        self,
        system: &mut System,
        var_loc: &mut BTreeMap<String, EngineKind>,
        vars: &mut VarSpace,
        placements: &mut [EngineKind],
        opts: &ExecOptions,
        estimates: Option<&[LineEstimate]>,
        contention_applied: &mut bool,
        csd_executed: usize,
        csd_total: usize,
        recov: &mut Recovery,
    ) -> Result<RegionOutcome> {
        let len = self.end - self.start + 1;
        let region_t0 = system.now().as_secs();
        let mut durations = vec![0.0f64; len];
        let mut done_storage = vec![0u64; len];
        let mut done_ops = vec![0u64; len];
        // The expected instruction throughput is "the total amount of
        // estimated instructions divided by estimated execution time on
        // CSD" (§III-D) — an end-to-end progress rate that includes data
        // stalls, so starvation of the data path registers as degraded IPC.
        let expected_rate = estimates
            .and_then(|est| {
                let region: Vec<&LineEstimate> = est
                    .iter()
                    .filter(|e| e.line >= self.start && e.line <= self.end)
                    .collect();
                let ops: u64 = region.iter().map(|e| e.ops).sum();
                let secs: f64 = region.iter().map(|e| e.ct_device).sum();
                (secs > 0.0 && ops > 0).then(|| ops as f64 / secs)
            })
            .unwrap_or_else(|| {
                system
                    .engine(EngineKind::Cse)
                    .nominal_rate()
                    .as_ops_per_sec()
            });
        let mut monitor = opts.monitor.map(|cfg| {
            Monitor::new(
                cfg,
                expected_rate,
                *system.engine(EngineKind::Cse).counters(),
            )
        });
        let mut migration: Option<MigrationEvent> = None;
        let mut reclaim: Option<MigrationEvent> = None;
        let mut break_submitted = false;

        'chunks: for c in 0..REGION_CHUNKS {
            // Progress-triggered contention can fire mid-region.
            if !*contention_applied && csd_total > 0 {
                let progress = (csd_executed as f64
                    + (c as f64 / REGION_CHUNKS as f64) * len as f64)
                    / csd_total as f64;
                if opts.scenario.active_at_progress(progress) {
                    let now = system.now();
                    install_contention(system, opts, now);
                    *contention_applied = true;
                }
            }
            let chunk_t0 = system.now().as_secs();
            let chunk_span = opts.tracer.begin_with(
                "exec.chunk",
                SpanKind::Device,
                Some(chunk_t0),
                vec![("chunk".into(), c.into())],
            );
            let mut chunk_ops = 0u64;
            // A hard fault mid-chunk ends the device stream; the completed
            // work stays counted so the host replays only the remainder.
            let mut fault: Option<DeviceFault> = None;
            'lines: for k in 0..len {
                let t0 = system.now().as_secs();
                let rb = chunk_slice(self.costs[k].storage_bytes, c);
                if rb > 0 {
                    match recov.run_bounded(system, |s| {
                        s.try_storage_read(EngineKind::Cse, Bytes::new(rb))
                    }) {
                        Ok(_) => done_storage[k] += rb,
                        Err(f) => {
                            durations[k] += system.now().as_secs() - t0;
                            fault = Some(f);
                            break 'lines;
                        }
                    }
                }
                let co = chunk_slice(self.ops[k], c);
                if co > 0 {
                    match recov
                        .run_bounded(system, |s| s.try_compute(EngineKind::Cse, Ops::new(co)))
                    {
                        Ok(_) => {
                            done_ops[k] += co;
                            chunk_ops += co;
                        }
                        Err(f) => {
                            durations[k] += system.now().as_secs() - t0;
                            fault = Some(f);
                            break 'lines;
                        }
                    }
                }
                if opts.offload_overheads {
                    system.charge_status_update();
                }
                durations[k] += system.now().as_secs() - t0;
            }
            let chunk_wall = system.now().as_secs() - chunk_t0;
            opts.tracer.end(chunk_span, Some(system.now().as_secs()));
            if opts.tracer.is_enabled() {
                // Simulated chunk latency, in whole nanoseconds so the
                // histogram stays integral and deterministic.
                opts.tracer
                    .observe("exec.chunk_sim_ns", (chunk_wall * 1e9) as u64);
            }
            // Chunk boundary (or mid-chunk hard fault): the status-update
            // code first checks the command pages for a high-priority
            // request (§III-D case 1), then the host-side monitor checks
            // throughput (case 2); a hard device fault (case 3, this PR)
            // bypasses both and breaks unconditionally.
            let (reason, done_fraction) = if let Some(f) = fault {
                if !opts.recovery.fallback_to_host {
                    return Err(escalate(f));
                }
                recov.stats.fault_migrations += 1;
                // The checkpoint is the last *completed* chunk boundary;
                // the failed chunk's partial work is replayed on the host
                // via the exact done_storage/done_ops remainders.
                (
                    Some(MigrationReason::DeviceFault),
                    c as f64 / REGION_CHUNKS as f64,
                )
            } else {
                let done_fraction = (c + 1) as f64 / REGION_CHUNKS as f64;
                if done_fraction >= 1.0 {
                    opts.journal.on_record(WalRecord::Chunk {
                        lane: 0,
                        region_start: self.start as u32,
                        region_end: (self.end + 1) as u32,
                        chunk: c as u32,
                        snap: wal_snap(system, recov, monitor.as_ref()),
                    })?;
                    break;
                }
                if let Some(t) = opts.preempt_at {
                    if !break_submitted && system.now().as_secs() >= t {
                        let now = system.now();
                        // Host posts the Break; losing the slot on a full ring
                        // only delays preemption to the next boundary.
                        let _ = system.queue_mut().submit(now, CommandKind::Break);
                        break_submitted = true;
                    }
                }
                let reason = if system.queue().has_pending_break() {
                    while system.queue_mut().fetch().is_ok() {}
                    Some(MigrationReason::Preempted)
                } else if let (Some(mon), Some(est)) = (monitor.as_mut(), estimates) {
                    let obs = mon.observe_window(chunk_ops as f64, chunk_wall);
                    if opts.tracer.is_enabled() {
                        let (label, ratio) = match obs {
                            Observation::Warmup => ("warmup", None),
                            Observation::Healthy => ("healthy", None),
                            Observation::Degraded { ratio } => ("degraded", Some(ratio)),
                        };
                        let mut attrs: Attrs = vec![
                            ("observation".into(), label.into()),
                            ("ops".into(), chunk_ops.into()),
                            ("window_secs".into(), chunk_wall.into()),
                        ];
                        if let Some(r) = ratio {
                            attrs.push(("ratio".into(), r.into()));
                        }
                        opts.tracer.instant(
                            "monitor.window",
                            SpanKind::Monitor,
                            Some(system.now().as_secs()),
                            attrs,
                        );
                    }
                    match obs {
                        Observation::Degraded { .. } => {
                            let later_csd: Vec<&LineEstimate> = est
                                .iter()
                                .filter(|e| {
                                    e.line > self.end && placements[e.line] == EngineKind::Cse
                                })
                                .collect();
                            let region_est: Vec<&LineEstimate> = est
                                .iter()
                                .filter(|e| e.line >= self.start && e.line <= self.end)
                                .collect();
                            let remaining_device = (1.0 - done_fraction)
                                * region_est.iter().map(|e| e.ct_device).sum::<f64>()
                                + later_csd.iter().map(|e| e.ct_device).sum::<f64>();
                            let reestimated = mon.reestimate_remaining(remaining_device);
                            let state_est = (self
                                .escaping_out
                                .iter()
                                .map(|b| (*b as f64 * done_fraction) as u64)
                                .sum::<u64>())
                                + self.external_input_bytes;
                            let bw = system.d2h_bandwidth().as_bytes_per_sec();
                            let regen = CompiledProgram::compile_secs_for(len + later_csd.len());
                            let remaining_host = (1.0 - done_fraction)
                                * region_est.iter().map(|e| e.ct_host).sum::<f64>()
                                + later_csd.iter().map(|e| e.ct_host).sum::<f64>();
                            let migrate_cost = state_est as f64 / bw + regen + remaining_host;
                            (reestimated > migrate_cost).then_some(MigrationReason::Degraded)
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                (reason, done_fraction)
            };
            let Some(reason) = reason else {
                opts.journal.on_record(WalRecord::Chunk {
                    lane: 0,
                    region_start: self.start as u32,
                    region_end: (self.end + 1) as u32,
                    chunk: c as u32,
                    snap: wal_snap(system, recov, monitor.as_ref()),
                })?;
                continue;
            };
            // Any migration consumes the monitor's accumulated evidence:
            // after a preemption or device-fault fallback the task is no
            // longer on the CSD either, so a stale decreasing-IPC streak
            // must not instantly re-trigger (or poison a later reclaim
            // decision) once work returns to the device.
            if let Some(mon) = monitor.as_mut() {
                mon.acknowledge_migration();
            }
            let state_bytes = (self
                .escaping_out
                .iter()
                .map(|b| (*b as f64 * done_fraction) as u64)
                .sum::<u64>())
                + self.external_input_bytes;
            let later_count = placements[self.end + 1..]
                .iter()
                .filter(|p| **p == EngineKind::Cse)
                .count();
            let regen_secs = CompiledProgram::compile_secs_for(len + later_count);
            // Break at this chunk boundary: move the live state, regenerate
            // host code, and resume the remaining stream on the host. The
            // state drain is controller-side DMA, which survives a CSE
            // crash — a must-complete transfer.
            let decided_at = system.now().as_secs();
            recov.run_to_completion(system, |s| {
                s.try_transfer(Direction::DeviceToHost, Bytes::new(state_bytes))
            });
            system.advance(csd_sim::units::Duration::from_secs(regen_secs));
            let decided_at_secs = decided_at;
            for k in 0..len {
                let t0 = system.now().as_secs();
                let rem_b = self.costs[k].storage_bytes.saturating_sub(done_storage[k]);
                let rem_o = self.ops[k].saturating_sub(done_ops[k]);
                if opts.scenario.recover_at().is_some() && (rem_b > 0 || rem_o > 0) {
                    // Availability can recover while the host works off
                    // the remainder: under a phase-shifting scenario the
                    // remainder is worked off in chunk slices and the
                    // Degraded migration is reconsidered at every boundary
                    // — the in-region mirror of [`try_reclaim`]. Slicing
                    // partitions the exact remaining bytes/ops, so a trace
                    // that never recovers would time out identically.
                    for c in 0..REGION_CHUNKS {
                        if reclaim.is_none() {
                            if let Some(event) = self.try_reclaim_remaining(
                                k,
                                reason,
                                system,
                                opts,
                                estimates,
                                &done_ops,
                                state_bytes,
                                decided_at_secs,
                            ) {
                                // The live state returns to device memory
                                // and the remaining stream resumes on
                                // regenerated device code.
                                recov.run_to_completion(system, |s| {
                                    s.try_transfer(Direction::HostToDevice, Bytes::new(state_bytes))
                                });
                                system
                                    .advance(csd_sim::units::Duration::from_secs(event.regen_secs));
                                reclaim = Some(event);
                            }
                        }
                        let engine = if reclaim.is_some() {
                            EngineKind::Cse
                        } else {
                            EngineKind::Host
                        };
                        let sb = chunk_slice(rem_b, c);
                        if sb > 0 {
                            system.storage_read(engine, Bytes::new(sb));
                            done_storage[k] += sb;
                        }
                        let so = chunk_slice(rem_o, c);
                        if so > 0 {
                            system.compute(engine, Ops::new(so));
                            done_ops[k] += so;
                        }
                    }
                } else {
                    if rem_b > 0 {
                        system.storage_read(EngineKind::Host, Bytes::new(rem_b));
                    }
                    if rem_o > 0 {
                        system.compute(EngineKind::Host, Ops::new(rem_o));
                    }
                }
                durations[k] += system.now().as_secs() - t0;
                // The merged region outputs live wherever the stream
                // finished.
                let engine = if reclaim.is_some() {
                    EngineKind::Cse
                } else {
                    EngineKind::Host
                };
                var_loc.insert(self.targets[k].clone(), engine);
                vars.move_to(system, &self.targets[k], engine)?;
            }
            // A reclaimed stream leaves the rest of the plan in place; the
            // device is healthy again.
            if reclaim.is_none() {
                for p in placements.iter_mut().skip(self.end + 1) {
                    if *p == EngineKind::Cse {
                        *p = EngineKind::Host;
                    }
                }
            }
            let after_line =
                self.start + ((done_fraction * len as f64).floor() as usize).min(len - 1);
            opts.tracer.instant(
                "migration.decision",
                SpanKind::Migration,
                Some(decided_at),
                vec![
                    ("reason".into(), reason.as_str().into()),
                    ("after_line".into(), after_line.into()),
                    ("state_bytes".into(), state_bytes.into()),
                    ("regen_secs".into(), regen_secs.into()),
                ],
            );
            opts.tracer.counter_add("exec.migrations", 1);
            migration = Some(MigrationEvent {
                after_line,
                state_bytes,
                at_secs: decided_at,
                regen_secs,
                reason,
            });
            opts.journal.on_record(WalRecord::Migration {
                lane: 0,
                line: after_line as u32,
                chunk: c as u32,
                reason: reason_code(reason),
                state_bytes,
                snap: wal_snap(system, recov, monitor.as_ref()),
            })?;
            if let Some(event) = &reclaim {
                opts.journal.on_record(WalRecord::Reclaim {
                    lane: 0,
                    line: event.after_line as u32,
                    in_region: true,
                    snap: wal_snap(system, recov, monitor.as_ref()),
                })?;
            }
            break 'chunks;
        }

        // Synthesize sequential per-line intervals from the accumulated
        // durations (chunks interleave lines; total time is exact, the
        // per-line split is proportional).
        let mut cursor = region_t0;
        let lines = (0..len)
            .map(|k| {
                let start_secs = cursor;
                cursor += durations[k];
                LineOutcome {
                    line: self.start + k,
                    engine: EngineKind::Cse,
                    start_secs,
                    end_secs: cursor,
                    cost: self.costs[k],
                    staged_bytes: self.staged[k],
                }
            })
            .collect();
        Ok(RegionOutcome {
            lines,
            migration,
            reclaim,
        })
    }

    /// In-region mirror of [`try_reclaim`]: after a mid-region
    /// [`MigrationReason::Degraded`] break moved the stream host-ward,
    /// decides at host line boundary `k` whether the remaining (unfinished)
    /// slice of the region should return to the CSD.
    ///
    /// Hysteresis and profit mirror the line-boundary rule: the migration
    /// must be at least `decreasing_streak` monitor windows old, the CSE's
    /// effective availability must have been healthy at window-spaced
    /// probes, and finishing on the device — including moving the live
    /// state back and regenerating device code — must beat finishing on
    /// the host under the blended estimates, scaled by each line's undone
    /// fraction. Every input is simulated-clock state: the decision is
    /// backend-invariant and cannot affect computed values.
    #[allow(clippy::too_many_arguments)]
    fn try_reclaim_remaining(
        &self,
        k: usize,
        reason: MigrationReason,
        system: &System,
        opts: &ExecOptions,
        estimates: Option<&[LineEstimate]>,
        done_ops: &[u64],
        state_bytes: u64,
        migrated_at: f64,
    ) -> Option<MigrationEvent> {
        // Preempted tasks must stay off the device and fault fallbacks
        // carry no evidence the device works; only degradations reverse.
        if reason != MigrationReason::Degraded {
            return None;
        }
        let cfg = opts.monitor?;
        let est = estimates?;
        let len = self.end - self.start + 1;
        let undone = |j: usize| -> f64 {
            if self.ops[j] == 0 {
                0.0
            } else {
                1.0 - done_ops[j] as f64 / self.ops[j] as f64
            }
        };
        let mut device_secs = 0.0;
        let mut host_secs = 0.0;
        for j in k..len {
            let line = self.start + j;
            if let Some(e) = est.iter().find(|e| e.line == line) {
                device_secs += e.ct_device * undone(j);
                host_secs += e.ct_host * undone(j);
            }
        }
        let window = device_secs / REGION_CHUNKS as f64;
        if window <= 0.0 {
            return None;
        }
        let now = system.now();
        if now.as_secs() - f64::from(cfg.decreasing_streak) * window <= migrated_at {
            return None;
        }
        let cse = system.engine(EngineKind::Cse);
        for j in 0..cfg.decreasing_streak {
            let probe = csd_sim::units::SimTime::from_secs(now.as_secs() - f64::from(j) * window);
            if cse.effective_fraction_at(probe) < cfg.degradation_threshold {
                return None;
            }
        }
        let fraction = cse.effective_fraction_at(now);
        let bw = system.d2h_bandwidth().as_bytes_per_sec();
        let regen_secs = CompiledProgram::compile_secs_for(len - k);
        if device_secs / fraction + state_bytes as f64 / bw + regen_secs >= host_secs {
            return None;
        }
        let decided_at = now.as_secs();
        let after_line = (self.start + k).saturating_sub(1);
        opts.tracer.instant(
            "migration.decision",
            SpanKind::Migration,
            Some(decided_at),
            vec![
                ("reason".into(), MigrationReason::Reclaim.as_str().into()),
                ("after_line".into(), after_line.into()),
                ("state_bytes".into(), state_bytes.into()),
                ("regen_secs".into(), regen_secs.into()),
            ],
        );
        opts.tracer.counter_add("exec.migrations", 1);
        Some(MigrationEvent {
            after_line,
            state_bytes,
            at_secs: decided_at,
            regen_secs,
            reason: MigrationReason::Reclaim,
        })
    }
}

/// Decides whether the remaining originally-offloaded, host-resident lines
/// should migrate *back* to the CSD at the line boundary `i`, and performs
/// the flip when profitable.
///
/// The decision is hysteresis-guarded against ping-ponging: it only
/// considers lines a *degradation* pushed host-ward (the last migration
/// must be [`MigrationReason::Degraded`]; a reclaim arms only after a
/// fresh degradation), requires the degradation to be at least
/// `decreasing_streak` monitor windows old, and probes the CSE's effective
/// availability at `decreasing_streak` window-spaced instants — the mirror
/// image of the evidence the monitor needed to leave. Every quantity read
/// is simulated-clock state, so the decision is identical across
/// evaluation backends; like all placement decisions it cannot affect
/// computed values, only charged costs.
#[allow(clippy::too_many_arguments)]
fn try_reclaim(
    program: &Program,
    i: usize,
    original: &[EngineKind],
    placements: &mut [EngineKind],
    system: &mut System,
    opts: &ExecOptions,
    estimates: Option<&[LineEstimate]>,
    last: Option<&MigrationEvent>,
) -> Option<MigrationEvent> {
    let cfg = opts.monitor?;
    let est = estimates?;
    let last = last?;
    // Preempted tasks must stay off the device and fault fallbacks carry
    // no evidence the device works; only degradations are reversible.
    if last.reason != MigrationReason::Degraded {
        return None;
    }
    if original[i] != EngineKind::Cse || placements[i] != EngineKind::Host {
        return None;
    }
    let is_candidate =
        |line: usize| original[line] == EngineKind::Cse && placements[line] == EngineKind::Host;
    let device_secs: f64 = est
        .iter()
        .filter(|e| e.line >= i && is_candidate(e.line))
        .map(|e| e.ct_device)
        .sum();
    let host_secs: f64 = est
        .iter()
        .filter(|e| e.line >= i && is_candidate(e.line))
        .map(|e| e.ct_host)
        .sum();
    // One monitor window of the reclaimed stream: the candidates would be
    // chunk-pipelined in REGION_CHUNKS status-update windows.
    let window = device_secs / REGION_CHUNKS as f64;
    if window <= 0.0 {
        return None;
    }
    let now = system.now();
    if now.as_secs() - f64::from(cfg.decreasing_streak) * window <= last.at_secs {
        return None;
    }
    let cse = system.engine(EngineKind::Cse);
    for j in 0..cfg.decreasing_streak {
        let probe = csd_sim::units::SimTime::from_secs(now.as_secs() - f64::from(j) * window);
        if cse.effective_fraction_at(probe) < cfg.degradation_threshold {
            return None;
        }
    }
    // Speculative profit check at the currently observed availability:
    // finishing on the device (plus re-staging line `i`'s inputs and
    // regenerating device code) must beat finishing on the host.
    let fraction = cse.effective_fraction_at(now);
    let bw = system.d2h_bandwidth().as_bytes_per_sec();
    let staging_bytes: u64 = est.iter().filter(|e| e.line == i).map(|e| e.d_in).sum();
    let candidates: Vec<usize> = (i..program.len()).filter(|&k| is_candidate(k)).collect();
    let regen_secs = CompiledProgram::compile_secs_for(candidates.len());
    if device_secs / fraction + staging_bytes as f64 / bw + regen_secs >= host_secs {
        return None;
    }
    for &k in &candidates {
        placements[k] = EngineKind::Cse;
    }
    let decided_at = now.as_secs();
    // Only code regeneration is charged here: input staging is charged by
    // the region's normal prepare path once the reclaimed region runs.
    system.advance(csd_sim::units::Duration::from_secs(regen_secs));
    opts.tracer.instant(
        "migration.decision",
        SpanKind::Migration,
        Some(decided_at),
        vec![
            ("reason".into(), MigrationReason::Reclaim.as_str().into()),
            ("after_line".into(), i.saturating_sub(1).into()),
            ("state_bytes".into(), 0u64.into()),
            ("regen_secs".into(), regen_secs.into()),
        ],
    );
    opts.tracer.counter_add("exec.migrations", 1);
    Some(MigrationEvent {
        after_line: i.saturating_sub(1),
        state_bytes: 0,
        at_secs: decided_at,
        regen_secs,
        reason: MigrationReason::Reclaim,
    })
}

/// Installs the scenario's degradation on the CSE (and, for competing ISP
/// tenants, the internal flash data path) from time `at` onward. A
/// scenario with a recovery time later than `at` also installs the
/// recovery edge, so phase-shifting traces (drop, then recover) degrade
/// and restore every affected resource consistently.
fn install_contention(system: &mut System, opts: &ExecOptions, at: csd_sim::units::SimTime) {
    system
        .engine_mut(EngineKind::Cse)
        .degrade_from(at, opts.scenario.fraction());
    let recover = opts.scenario.recover_at().filter(|rec| *rec > at);
    if let Some(rec) = recover {
        system.engine_mut(EngineKind::Cse).degrade_from(rec, 1.0);
    }
    if opts.scenario.affects_storage() {
        let mut trace = AvailabilityTrace::full().with_change(at, opts.scenario.fraction());
        if let Some(rec) = recover {
            trace = trace.with_change(rec, 1.0);
        }
        system.flash_mut().set_contention(trace);
    }
}

/// Convenience: runs the whole program on the host (the no-CSD baseline)
/// using the default (VM) backend.
///
/// # Errors
///
/// Propagates execution failures.
pub fn execute_all_host(
    program: &Program,
    storage: &Storage,
    system: &mut System,
    tier: ExecTier,
    params: &CostParams,
    copy_elim: &[bool],
) -> Result<RunReport> {
    execute_all_host_with(
        program,
        storage,
        system,
        tier,
        params,
        copy_elim,
        ExecBackend::default(),
    )
}

/// As [`execute_all_host`], on an explicit evaluation backend.
///
/// # Errors
///
/// Propagates execution failures.
#[allow(clippy::too_many_arguments)]
pub fn execute_all_host_with(
    program: &Program,
    storage: &Storage,
    system: &mut System,
    tier: ExecTier,
    params: &CostParams,
    copy_elim: &[bool],
    backend: ExecBackend,
) -> Result<RunReport> {
    let placements = vec![EngineKind::Host; program.len()];
    let opts = ExecOptions {
        tier,
        params: *params,
        scenario: ContentionScenario::none(),
        monitor: None,
        offload_overheads: false,
        preempt_at: None,
        backend,
        recovery: RecoveryPolicy::default(),
        faults: FaultPlan::none(),
        tracer: Tracer::disabled(),
        parallel: ParallelPolicy::default(),
        profile: crate::profile::ProfileRecorder::disabled(),
        journal: ExecJournal::disabled(),
    };
    execute(
        program,
        storage,
        &placements,
        system,
        &opts,
        None,
        copy_elim,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::parser::parse;
    use alang::value::ArrayVal;
    use alang::Value;
    use csd_sim::SystemConfig;

    /// 4 GB logical array, materialized small.
    fn storage() -> Storage {
        let mut st = Storage::new();
        let data: Vec<f64> = (0..4096).map(|i| (i % 100) as f64).collect();
        st.insert("v", Value::Array(ArrayVal::with_logical(data, 500_000_000)));
        st
    }

    const SRC: &str = "a = scan('v')\nm = a < 50\nb = select(a, m)\ns = sum(b)\n";

    fn placements(csd: &[usize], len: usize) -> Vec<EngineKind> {
        (0..len)
            .map(|i| {
                if csd.contains(&i) {
                    EngineKind::Cse
                } else {
                    EngineKind::Host
                }
            })
            .collect()
    }

    #[test]
    fn all_host_run_produces_report() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute_all_host(
            &program,
            &st,
            &mut sys,
            ExecTier::Native,
            &CostParams::paper_default(),
            &[],
        )
        .expect("run");
        assert_eq!(rep.lines.len(), 4);
        assert!(rep.total_secs > 0.0);
        assert_eq!(rep.csd_lines_executed, 0);
        assert!(rep.migration.is_none());
        // Host scan of 4 GB at the 4 GB/s external path ≈ 1 s floor.
        assert!(rep.total_secs > 0.9, "got {}", rep.total_secs);
    }

    #[test]
    fn offloading_the_reduction_pipeline_wins() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut host_sys = SystemConfig::paper_default().build();
        let host = execute_all_host(
            &program,
            &st,
            &mut host_sys,
            ExecTier::Native,
            &CostParams::paper_default(),
            &[],
        )
        .expect("host");
        let mut isp_sys = SystemConfig::paper_default().build();
        let opts = ExecOptions::native_static();
        let isp = execute(
            &program,
            &st,
            &placements(&[0, 1, 2, 3], 4),
            &mut isp_sys,
            &opts,
            None,
            &[],
        )
        .expect("isp");
        assert!(
            isp.total_secs < host.total_secs,
            "ISP {} should beat host {}",
            isp.total_secs,
            host.total_secs
        );
        assert_eq!(isp.csd_lines_executed, 4);
    }

    #[test]
    fn placements_length_mismatch_rejected() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let e = execute(
            &program,
            &st,
            &placements(&[], 2),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .unwrap_err();
        assert!(matches!(e, ActivePyError::Exec { .. }));
    }

    #[test]
    fn cross_engine_variables_are_staged() {
        // Line 0,1 on CSD; line 2,3 on host: `a` and `m` must cross back.
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &placements(&[0, 1], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("run");
        let staged: u64 = rep.lines.iter().map(|l| l.staged_bytes).sum();
        assert!(staged > 0, "host lines must pull a and m over: {rep:?}");
        assert!(rep.d2h_bytes >= staged);
    }

    #[test]
    fn constant_contention_slows_static_isp() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let all = placements(&[0, 1, 2, 3], 4);
        let mut full_sys = SystemConfig::paper_default().build();
        let full = execute(
            &program,
            &st,
            &all,
            &mut full_sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("full");
        let mut starved_sys = SystemConfig::paper_default().build();
        let starved = execute(
            &program,
            &st,
            &all,
            &mut starved_sys,
            &ExecOptions::native_static().with_scenario(ContentionScenario::constant(0.1)),
            None,
            &[],
        )
        .expect("starved");
        assert!(
            starved.total_secs > full.total_secs * 1.5,
            "10% CSE must hurt: {} vs {}",
            starved.total_secs,
            full.total_secs
        );
    }

    #[test]
    fn migration_fires_under_progress_contention() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let all = placements(&[0, 1, 2, 3], 4);
        // Build estimates that roughly match reality so the decision logic
        // has something to work with.
        let estimates: Vec<LineEstimate> = (0..4)
            .map(|line| LineEstimate {
                line,
                ct_host: 0.5,
                ct_device: 0.3,
                d_in: 1_000_000,
                d_out: 1_000_000,
                ops: 1_000_000_000,
            })
            .collect();
        let opts =
            ExecOptions::activepy().with_scenario(ContentionScenario::after_progress(0.5, 0.01));
        let mut sys = SystemConfig::paper_default().build();
        let rep =
            execute(&program, &st, &all, &mut sys, &opts, Some(&estimates), &[]).expect("run");
        let mig = rep.migration.expect("should migrate under 1% availability");
        assert!(
            mig.after_line >= 1,
            "contention starts at 50% progress, so the break lands mid-stream: {mig:?}"
        );
        assert!(mig.regen_secs > 0.0, "host code regeneration is charged");
        // And the run with migration beats the one without.
        let mut sys2 = SystemConfig::paper_default().build();
        let no_mig = execute(
            &program,
            &st,
            &all,
            &mut sys2,
            &opts.clone().without_migration(),
            Some(&estimates),
            &[],
        )
        .expect("no-mig run");
        assert!(
            rep.total_secs < no_mig.total_secs,
            "migration {} must beat starvation {}",
            rep.total_secs,
            no_mig.total_secs
        );
    }

    #[test]
    fn split_placements_form_two_regions_with_two_invocations() {
        // CSD, host, CSD, host: two separate CSD regions, each invoked
        // through the queue pair.
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &placements(&[0, 2], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("run");
        assert_eq!(rep.csd_lines_executed, 2);
        assert_eq!(
            sys.queue().submitted_total(),
            2,
            "one invocation per region"
        );
        // The host lines in between pull their inputs across.
        let staged: u64 = rep.lines.iter().map(|l| l.staged_bytes).sum();
        assert!(staged > 0);
    }

    #[test]
    fn device_memory_is_accounted_and_bounded() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        // Lines 0-2 on CSD, line 3 (sum) on host: `b` (the selected array)
        // escapes the region, so it must materialize in device DRAM.
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &placements(&[0, 1, 2], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("run");
        // b has ~250M logical elements x 8 B = ~2 GB.
        assert!(
            rep.peak_device_bytes > 1_000_000_000,
            "escaping output must occupy device DRAM: {}",
            rep.peak_device_bytes
        );
        assert!(rep.peak_device_bytes < 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn device_dram_overflow_is_an_error_not_a_lie() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        // A CSD with 1 GB of DRAM cannot hold the ~2 GB escaping array.
        let mut config = SystemConfig::paper_default();
        config.device_dram = csd_sim::units::Bytes::from_gib(1);
        let mut sys = config.build();
        let e = execute(
            &program,
            &st,
            &placements(&[0, 1, 2], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("out of memory"), "got: {msg}");
    }

    #[test]
    fn high_priority_preemption_forces_migration() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let all = placements(&[0, 1, 2, 3], 4);
        // Uncontended reference to find a mid-run time.
        let mut ref_sys = SystemConfig::paper_default().build();
        let reference = execute(
            &program,
            &st,
            &all,
            &mut ref_sys,
            &ExecOptions::activepy(),
            None,
            &[],
        )
        .expect("reference");
        let t_mid = reference.total_secs * 0.4;
        // No contention at all: the monitor would never migrate, but the
        // Break command must.
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &all,
            &mut sys,
            &ExecOptions::activepy().with_preemption_at(t_mid),
            None,
            &[],
        )
        .expect("preempted run");
        let mig = rep
            .migration
            .expect("the Break command must force a migration");
        assert_eq!(mig.reason, MigrationReason::Preempted);
        assert!(
            mig.at_secs >= t_mid,
            "break happens at the next status update after {t_mid}: {mig:?}"
        );
        // The run completes correctly, just slower than the quiet one.
        assert!(rep.total_secs >= reference.total_secs * 0.99);
    }

    #[test]
    fn preemption_after_completion_is_harmless() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let all = placements(&[0, 1, 2, 3], 4);
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &all,
            &mut sys,
            &ExecOptions::activepy().with_preemption_at(1e9),
            None,
            &[],
        )
        .expect("run");
        assert!(rep.migration.is_none());
    }

    /// Runs the same configuration on both backends and asserts
    /// byte-identical reports (`RunReport` derives `PartialEq`, and the
    /// simulator is deterministic, so any engine divergence shows up).
    fn assert_backend_parity(opts: &ExecOptions, csd: &[usize], copy_elim: &[bool]) {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(csd, 4);
        let estimates: Vec<LineEstimate> = (0..4)
            .map(|line| LineEstimate {
                line,
                ct_host: 0.5,
                ct_device: 0.3,
                d_in: 1_000_000,
                d_out: 1_000_000,
                ops: 1_000_000_000,
            })
            .collect();
        let mut vm_sys = SystemConfig::paper_default().build();
        let vm = execute(
            &program,
            &st,
            &pl,
            &mut vm_sys,
            &opts.clone().with_backend(ExecBackend::Vm),
            Some(&estimates),
            copy_elim,
        )
        .expect("vm run");
        let mut ast_sys = SystemConfig::paper_default().build();
        let ast = execute(
            &program,
            &st,
            &pl,
            &mut ast_sys,
            &opts.clone().with_backend(ExecBackend::AstWalk),
            Some(&estimates),
            copy_elim,
        )
        .expect("ast run");
        assert_eq!(vm, ast);
    }

    #[test]
    fn backends_agree_on_host_only_runs() {
        assert_backend_parity(&ExecOptions::native_static(), &[], &[]);
    }

    #[test]
    fn backends_agree_on_full_offload_with_copy_elim() {
        assert_backend_parity(
            &ExecOptions::activepy(),
            &[0, 1, 2, 3],
            &[false, true, true, true],
        );
    }

    #[test]
    fn backends_agree_on_split_placements_under_contention() {
        assert_backend_parity(
            &ExecOptions::activepy().with_scenario(ContentionScenario::after_progress(0.5, 0.01)),
            &[0, 2],
            &[],
        );
    }

    #[test]
    fn execute_lowered_matches_execute() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[0, 1], 4);
        let flags = [false, true, true, true];
        let lowered = alang::lower::lower_with(&program, &flags).expect("lower");
        let opts = ExecOptions::native_static();
        let mut sys_a = SystemConfig::paper_default().build();
        let via_lowered =
            execute_lowered(&program, &lowered, &st, &pl, &mut sys_a, &opts, None).expect("run");
        let mut sys_b = SystemConfig::paper_default().build();
        let direct = execute(&program, &st, &pl, &mut sys_b, &opts, None, &flags).expect("run");
        assert_eq!(via_lowered, direct);
    }

    #[test]
    fn lowered_line_count_mismatch_rejected() {
        let program = parse(SRC).expect("parse");
        let short = parse("a = 1\n").expect("parse");
        let lowered = alang::lower::lower(&short).expect("lower");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let e = execute_lowered(
            &program,
            &lowered,
            &st,
            &placements(&[], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
        )
        .unwrap_err();
        assert!(matches!(e, ActivePyError::Exec { .. }));
    }

    #[test]
    fn fault_free_runs_report_zero_recovery_activity() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &placements(&[0, 1, 2, 3], 4),
            &mut sys,
            &ExecOptions::activepy(),
            None,
            &[],
        )
        .expect("run");
        assert_eq!(rep.metrics.recovery, RecoveryStats::default());
        assert_ne!(rep.values_fingerprint, 0);
    }

    /// Runs SRC fully offloaded, fault-free and with `faults`, and returns
    /// (fault-free report, faulted report).
    fn run_with_faults(opts: &ExecOptions, faults: FaultPlan) -> (RunReport, RunReport) {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[0, 1, 2, 3], 4);
        let mut clean_sys = SystemConfig::paper_default().build();
        let clean = execute(&program, &st, &pl, &mut clean_sys, opts, None, &[]).expect("clean");
        let mut faulted_sys = SystemConfig::paper_default().build();
        let faulted = execute(
            &program,
            &st,
            &pl,
            &mut faulted_sys,
            &opts.clone().with_faults(faults),
            None,
            &[],
        )
        .expect("faulted");
        (clean, faulted)
    }

    #[test]
    fn transient_faults_are_retried_and_preserve_the_answer() {
        let faults = FaultPlan::none()
            .with_seed(11)
            .with_flash_read_error_prob(0.05)
            .with_nvme_error_prob(0.05)
            .with_dma_error_prob(0.05);
        let (clean, faulted) = run_with_faults(&ExecOptions::activepy(), faults);
        assert!(
            faulted.metrics.recovery.transient_faults > 0,
            "5% per-op error over a 64-chunk stream must fire: {:?}",
            faulted.metrics.recovery
        );
        assert!(faulted.metrics.recovery.recovered_ops > 0);
        assert_eq!(faulted.values_fingerprint, clean.values_fingerprint);
        assert!(
            faulted.total_secs > clean.total_secs,
            "detection latency and backoff are charged to sim time"
        );
    }

    #[test]
    fn cse_crash_migrates_to_host_with_identical_answer() {
        let opts = ExecOptions::activepy();
        // Crash mid-way through the CSD stream (reference run finds when).
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[0, 1, 2, 3], 4);
        let mut ref_sys = SystemConfig::paper_default().build();
        let reference = execute(&program, &st, &pl, &mut ref_sys, &opts, None, &[]).expect("ref");
        let t_half = reference.time_at_csd_progress(0.5).expect("csd ran");
        let faults = FaultPlan::none()
            .with_seed(3)
            .with_crash_at(csd_sim::units::SimTime::from_secs(t_half));
        let (clean, faulted) = run_with_faults(&opts, faults);
        let mig = faulted.migration.expect("crash must force a migration");
        assert_eq!(mig.reason, MigrationCause::DeviceFault);
        assert!(faulted.metrics.recovery.hard_faults >= 1);
        assert!(faulted.metrics.recovery.fault_migrations >= 1);
        assert_eq!(faulted.values_fingerprint, clean.values_fingerprint);
        assert!(faulted.total_secs > clean.total_secs);
    }

    #[test]
    fn disabling_fallback_turns_a_crash_into_a_device_fault_error() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[0, 1, 2, 3], 4);
        let opts = ExecOptions::activepy()
            .with_recovery(RecoveryPolicy::default().without_fallback())
            .with_faults(
                FaultPlan::none()
                    .with_seed(3)
                    .with_crash_at(csd_sim::units::SimTime::ZERO),
            );
        let mut sys = SystemConfig::paper_default().build();
        let e = execute(&program, &st, &pl, &mut sys, &opts, None, &[]).unwrap_err();
        assert!(matches!(e, ActivePyError::DeviceFault { .. }), "got {e}");
    }

    #[test]
    fn invalid_policies_are_config_errors_at_the_door() {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[], 4);
        let mut bad_recovery = ExecOptions::activepy();
        bad_recovery.recovery.backoff_multiplier = 0.0;
        let mut bad_faults = ExecOptions::activepy();
        bad_faults.faults.flash_read_error_prob = 2.0;
        let mut bad_parallel = ExecOptions::activepy();
        bad_parallel.parallel.threads = 0;
        for opts in [bad_recovery, bad_faults, bad_parallel] {
            let mut sys = SystemConfig::paper_default().build();
            let e = execute(&program, &st, &pl, &mut sys, &opts, None, &[]).unwrap_err();
            assert!(matches!(e, ActivePyError::Config { .. }), "got {e}");
        }
    }

    #[test]
    fn parallel_policy_is_execution_only() {
        // Same program, serial vs 8-thread kernels: per-line outcomes,
        // fingerprint, and sim-time must not move. Only the recorded policy
        // (and its counters) differ, so compare fields, not whole reports.
        let program = parse(SRC).expect("parse");
        let st = storage();
        let pl = placements(&[0, 1, 2, 3], 4);
        let mut serial_sys = SystemConfig::paper_default().build();
        let serial = execute(
            &program,
            &st,
            &pl,
            &mut serial_sys,
            &ExecOptions::activepy(),
            None,
            &[],
        )
        .expect("serial");
        for backend in [ExecBackend::Vm, ExecBackend::AstWalk] {
            let policy = ParallelPolicy::new(8, 64).expect("valid policy");
            let mut par_sys = SystemConfig::paper_default().build();
            let par = execute(
                &program,
                &st,
                &pl,
                &mut par_sys,
                &ExecOptions::activepy()
                    .with_backend(backend)
                    .with_parallelism(policy),
                None,
                &[],
            )
            .expect("parallel");
            assert_eq!(par.lines, serial.lines, "{backend:?}");
            assert_eq!(par.values_fingerprint, serial.values_fingerprint);
            assert_eq!(par.total_secs, serial.total_secs);
            assert_eq!(par.parallel, policy, "the report records its policy");
            assert!(
                par.metrics.par.par_calls > 0,
                "a 64-element threshold engages chunking: {:?}",
                par.metrics.par
            );
        }
        assert_eq!(serial.parallel, ParallelPolicy::default());
        assert_eq!(serial.metrics.par.par_calls, 0);
    }

    #[test]
    fn backends_agree_under_injected_faults() {
        let faults = FaultPlan::none()
            .with_seed(29)
            .with_flash_read_error_prob(0.1)
            .with_nvme_error_prob(0.1)
            .with_dma_error_prob(0.1)
            .with_gc_burst(
                csd_sim::units::SimTime::from_secs(0.05),
                csd_sim::units::Duration::from_secs(0.1),
                0.05,
            );
        assert_backend_parity(
            &ExecOptions::activepy().with_faults(faults),
            &[0, 1, 2, 3],
            &[],
        );
    }

    #[test]
    fn final_result_returns_to_host() {
        let program = parse("a = scan('v')\ns = sum(a)\n").expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let rep = execute(
            &program,
            &st,
            &placements(&[0, 1], 2),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("run");
        // The scalar result crossing back is tiny but the path is charged.
        assert!(rep.d2h_bytes >= 8);
    }

    #[test]
    fn every_migration_reason_acknowledges_the_monitor() {
        // The exec engine acknowledges unconditionally at its single
        // migration site; this regression pins the contract per variant: an
        // acknowledged monitor never carries a decrease streak across the
        // move, no matter why the move happened.
        use csd_sim::counters::PerfCounters;
        for reason in [
            MigrationReason::Degraded,
            MigrationReason::Preempted,
            MigrationReason::DeviceFault,
            MigrationReason::Reclaim,
        ] {
            let cfg = MonitorConfig::default();
            let mk = || Monitor::new(cfg, 1000.0, PerfCounters::new());
            // Rates decrease >0.1% per window but keep the smoothed ratio
            // above the threshold, so only the streak condition is in play.
            let rates = [1000.0, 997.0, 994.0, 991.0];
            let mut acked = mk();
            let mut stale = mk();
            for r in &rates[..3] {
                acked.observe_window(*r, 1.0);
                stale.observe_window(*r, 1.0);
            }
            // A migration for `reason` consumes the evidence...
            acked.acknowledge_migration();
            assert!(
                matches!(acked.observe_window(rates[3], 1.0), Observation::Healthy),
                "{}: acknowledged monitor must not re-trigger on a stale streak",
                reason.as_str()
            );
            // ...while an unacknowledged streak (the old behavior for
            // non-Degraded reasons) fires immediately.
            assert!(
                matches!(
                    stale.observe_window(rates[3], 1.0),
                    Observation::Degraded { .. }
                ),
                "{}: control monitor must hit the streak",
                reason.as_str()
            );
        }
    }

    /// Phase-shifting scenario harness for the reclaim tests: CSD region
    /// [0,1], host line 2, CSD line 3. Contention drops mid-region-0 and
    /// recovers shortly after, so the degradation migrates line 3 host-ward
    /// and the recovery hands it back.
    fn run_phase_shift(backend: ExecBackend) -> RunReport {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let place = placements(&[0, 1, 3], 4);
        // Reference run (no estimates, so no migration is possible) to
        // calibrate the estimates to the simulator's real timings: the
        // monitor then reads a healthy ~1.0 throughput ratio until the
        // burst hits.
        let mut ref_sys = SystemConfig::paper_default().build();
        let reference = execute(
            &program,
            &st,
            &place,
            &mut ref_sys,
            &ExecOptions::activepy().with_backend(backend),
            None,
            &[],
        )
        .expect("reference");
        let params = CostParams::paper_default();
        let estimates: Vec<LineEstimate> = reference
            .lines
            .iter()
            .map(|l| {
                let dur = (l.end_secs - l.start_secs).max(0.02);
                // Line 3 is the reclaim candidate: clearly device-
                // profitable, so abandoning it host-ward is a real loss.
                let (ct_device, ct_host) = if l.line == 3 {
                    (dur, 4.0 * dur)
                } else {
                    (dur, 1.2 * dur)
                };
                LineEstimate {
                    line: l.line,
                    ct_host,
                    ct_device,
                    d_in: 1_000_000,
                    d_out: 1_000_000,
                    ops: l.cost.effective_ops(ExecTier::CompiledCopyElim, &params),
                }
            })
            .collect();
        // A 0.5 s burst at 5% availability starting 30% into region [0,1]:
        // long enough for the monitor's smoothed rate to collapse and the
        // re-estimate to favor the host, over well before line 3 is due.
        let region_start = reference.lines[0].start_secs;
        let region_end = reference.lines[1].end_secs;
        let drop_at = region_start + 0.3 * (region_end - region_start);
        let scenario =
            ContentionScenario::at_time(csd_sim::units::SimTime::from_secs(drop_at), 0.05)
                .with_recovery_at(csd_sim::units::SimTime::from_secs(drop_at + 0.5));
        let opts = ExecOptions::activepy()
            .with_backend(backend)
            .with_scenario(scenario);
        let mut sys = SystemConfig::paper_default().build();
        execute(
            &program,
            &st,
            &place,
            &mut sys,
            &opts,
            Some(&estimates),
            &[],
        )
        .expect("run")
    }

    #[test]
    fn reclaim_returns_work_to_the_csd_after_recovery() {
        let rep = run_phase_shift(ExecBackend::default());
        let reasons: Vec<MigrationReason> = rep.migrations.iter().map(|m| m.reason).collect();
        assert!(
            reasons.contains(&MigrationReason::Degraded),
            "the burst must first push work host-ward: {reasons:?}"
        );
        assert!(
            reasons.contains(&MigrationReason::Reclaim),
            "recovered availability must pull line 3 back: {reasons:?}"
        );
        // The reclaimed line really ran on the CSD.
        let line3 = rep.lines.iter().find(|l| l.line == 3).expect("line 3");
        assert_eq!(line3.engine, EngineKind::Cse, "line 3 must run reclaimed");
        // The legacy field still reads the last *host-ward* migration.
        assert_eq!(
            rep.migration.expect("legacy migration").reason,
            MigrationReason::Degraded
        );
        // Reclaim charges regeneration on the simulated clock.
        let reclaim = rep
            .migrations
            .iter()
            .find(|m| m.reason == MigrationReason::Reclaim)
            .expect("reclaim event");
        assert!(reclaim.regen_secs > 0.0);
        assert_eq!(reclaim.state_bytes, 0, "inputs stage via the region path");
    }

    #[test]
    fn reclaim_schedule_is_value_and_backend_invariant() {
        // Placement flips — in either direction — may never change computed
        // values, and the reclaim decision reads only simulated-clock
        // state, so both backends take the identical migration schedule.
        let vm = run_phase_shift(ExecBackend::Vm);
        let interp = run_phase_shift(ExecBackend::AstWalk);
        assert_eq!(vm.migrations, interp.migrations);
        assert_eq!(vm.values_fingerprint, interp.values_fingerprint);
        assert!((vm.total_secs - interp.total_secs).abs() < 1e-12);
        // And the fingerprint matches an undisturbed static run.
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let static_run = execute(
            &program,
            &st,
            &placements(&[0, 1, 3], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("static");
        assert_eq!(vm.values_fingerprint, static_run.values_fingerprint);
    }

    /// Phase-shifting harness for the *in-region* reclaim path: every line
    /// is placed on the CSD, so the whole program is one merged region and
    /// the Degraded break is handled inside the region executor. Estimates
    /// make the remainder strongly device-favorable, so once availability
    /// recovers mid-completion the host-side remainder migrates back.
    fn run_in_region_phase_shift(backend: ExecBackend) -> RunReport {
        let program = parse(SRC).expect("parse");
        let st = storage();
        let place = placements(&[0, 1, 2, 3], 4);
        let mut ref_sys = SystemConfig::paper_default().build();
        let reference = execute(
            &program,
            &st,
            &place,
            &mut ref_sys,
            &ExecOptions::activepy().with_backend(backend),
            None,
            &[],
        )
        .expect("reference");
        let params = CostParams::paper_default();
        let estimates: Vec<LineEstimate> = reference
            .lines
            .iter()
            .map(|l| {
                let dur = (l.end_secs - l.start_secs).max(0.02);
                LineEstimate {
                    line: l.line,
                    // Uniformly device-profitable, so finishing host-side
                    // is a loss the reclaim check can always recognize.
                    ct_host: 4.0 * dur,
                    ct_device: dur,
                    d_in: 1_000_000,
                    d_out: 1_000_000,
                    ops: l.cost.effective_ops(ExecTier::CompiledCopyElim, &params),
                }
            })
            .collect();
        // Burst 30% into the region, recovering 1.4 s later: the monitor
        // breaks host-ward mid-region (after ~3 burst-stretched chunk
        // windows) and the recovery lands while the host is still working
        // off the (4x slower for it) remainder.
        let drop_at = 0.3 * reference.total_secs;
        let scenario =
            ContentionScenario::at_time(csd_sim::units::SimTime::from_secs(drop_at), 0.05)
                .with_recovery_at(csd_sim::units::SimTime::from_secs(drop_at + 1.4));
        let opts = ExecOptions::activepy()
            .with_backend(backend)
            .with_scenario(scenario);
        let mut sys = SystemConfig::paper_default().build();
        execute(
            &program,
            &st,
            &place,
            &mut sys,
            &opts,
            Some(&estimates),
            &[],
        )
        .expect("run")
    }

    #[test]
    fn in_region_reclaim_resumes_the_merged_region_on_the_csd() {
        let rep = run_in_region_phase_shift(ExecBackend::default());
        let reasons: Vec<MigrationReason> = rep.migrations.iter().map(|m| m.reason).collect();
        assert_eq!(
            reasons,
            vec![MigrationReason::Degraded, MigrationReason::Reclaim],
            "burst breaks host-ward, recovery pulls the remainder back"
        );
        let degraded = &rep.migrations[0];
        let reclaim = &rep.migrations[1];
        assert!(
            reclaim.at_secs > degraded.at_secs,
            "reclaim happens strictly after the host-ward break"
        );
        assert_eq!(
            reclaim.state_bytes, degraded.state_bytes,
            "the drained region state is what returns to the device"
        );
        assert!(
            reclaim.regen_secs > 0.0,
            "device code regeneration is charged"
        );
    }

    #[test]
    fn in_region_reclaim_is_value_and_backend_invariant() {
        let vm = run_in_region_phase_shift(ExecBackend::Vm);
        let interp = run_in_region_phase_shift(ExecBackend::AstWalk);
        assert_eq!(vm.migrations, interp.migrations);
        assert_eq!(vm.values_fingerprint, interp.values_fingerprint);
        assert!((vm.total_secs - interp.total_secs).abs() < 1e-12);
        // The round trip never touches computed values.
        let program = parse(SRC).expect("parse");
        let st = storage();
        let mut sys = SystemConfig::paper_default().build();
        let static_run = execute(
            &program,
            &st,
            &placements(&[0, 1, 2, 3], 4),
            &mut sys,
            &ExecOptions::native_static(),
            None,
            &[],
        )
        .expect("static");
        assert_eq!(vm.values_fingerprint, static_run.values_fingerprint);
    }
}
