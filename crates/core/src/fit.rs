//! Complexity-curve fitting and extrapolation (§III-A).
//!
//! "Since our sampling mechanism grows F exponentially, ActivePy can
//! extrapolate the execution time and change to the raw data size for each
//! line once four sample runs are complete. ActivePy predicts the execution
//! time and data-size changes by selecting the closest fit from one of five
//! curves — O(1), O(n), O(n log n), O(n²), and O(n³)."
//!
//! Each scalar series (compute ops, storage bytes, input/output volumes,
//! copy traffic) is fit independently: for every candidate curve `g`, the
//! least-squares coefficient is `c = Σ yᵢ·g(nᵢ) / Σ g(nᵢ)²`, the candidate
//! with the smallest normalized residual wins, and the prediction at full
//! scale is `c · g(n_full)`.

use crate::error::{ActivePyError, Result};
use crate::sampling::LineSamples;
use alang::LineCost;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five candidate complexity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Complexity {
    /// Constant.
    O1,
    /// Linear.
    ON,
    /// Linearithmic.
    ONLogN,
    /// Quadratic.
    ON2,
    /// Cubic.
    ON3,
}

impl Complexity {
    /// All candidates, in the paper's order.
    pub const ALL: [Complexity; 5] = [
        Complexity::O1,
        Complexity::ON,
        Complexity::ONLogN,
        Complexity::ON2,
        Complexity::ON3,
    ];

    /// Evaluates the curve's basis function at input size `n`.
    #[must_use]
    pub fn g(self, n: f64) -> f64 {
        match self {
            Complexity::O1 => 1.0,
            Complexity::ON => n,
            Complexity::ONLogN => n * n.max(2.0).log2(),
            Complexity::ON2 => n * n,
            Complexity::ON3 => n * n * n,
        }
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Complexity::O1 => write!(f, "O(1)"),
            Complexity::ON => write!(f, "O(n)"),
            Complexity::ONLogN => write!(f, "O(n log n)"),
            Complexity::ON2 => write!(f, "O(n^2)"),
            Complexity::ON3 => write!(f, "O(n^3)"),
        }
    }
}

/// A fitted curve for one scalar series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedCurve {
    /// The winning complexity class.
    pub complexity: Complexity,
    /// Least-squares coefficient.
    pub coefficient: f64,
    /// Normalized root-mean-square residual of the winning fit.
    pub residual: f64,
}

impl FittedCurve {
    /// Predicts the series value at input size `n`.
    #[must_use]
    pub fn predict(&self, n: f64) -> f64 {
        (self.coefficient * self.complexity.g(n)).max(0.0)
    }
}

/// Fits the best of the five curves to `(n, y)` points.
///
/// Fitting runs in log space — `ln y ≈ ln c + ln g(n)` — which is
/// scale-invariant across the paper's exponentially-spaced sample sizes
/// and robust to multiplicative measurement noise. Zero-valued series fit
/// a zero-coefficient constant.
///
/// # Errors
///
/// Returns an error if fewer than two points are supplied.
pub fn fit_series(points: &[(f64, f64)]) -> Result<FittedCurve> {
    if points.len() < 2 {
        return Err(ActivePyError::Fit {
            message: format!("need at least 2 points, got {}", points.len()),
        });
    }
    let positive: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|(n, y)| *y > 0.0 && *n > 0.0)
        .collect();
    if positive.len() < 2 {
        // An (almost) everywhere-zero series: predict zero.
        return Ok(FittedCurve {
            complexity: Complexity::O1,
            coefficient: 0.0,
            residual: 0.0,
        });
    }
    let mut best: Option<FittedCurve> = None;
    for complexity in Complexity::ALL {
        // ln c = mean(ln y − ln g(n)); residual = RMS in log space.
        let logs: Vec<f64> = positive
            .iter()
            .map(|(n, y)| y.ln() - complexity.g(*n).ln())
            .collect();
        let ln_c = logs.iter().sum::<f64>() / logs.len() as f64;
        let mse = logs.iter().map(|l| (l - ln_c) * (l - ln_c)).sum::<f64>() / logs.len() as f64;
        let candidate = FittedCurve {
            complexity,
            coefficient: ln_c.exp(),
            residual: mse.sqrt(),
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.residual < b.residual - 1e-12,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or_else(|| ActivePyError::Fit {
        message: "no curve could be fit".into(),
    })
}

/// The full-scale prediction for one line, with the curves that produced
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinePrediction {
    /// The line index.
    pub line: usize,
    /// Predicted full-scale cost.
    pub cost: LineCost,
    /// The curve fitted to compute operations.
    pub compute_curve: FittedCurve,
    /// The curve fitted to output volume (the paper's headline accuracy
    /// metric: "ActivePy's mechanism usually makes very accurate
    /// predictions on data volume changes").
    pub out_curve: FittedCurve,
}

/// Extrapolates every sampled line to full scale (`n = 1.0` in scale
/// units; callers may use any consistent size unit for `n`).
///
/// # Errors
///
/// Propagates fitting failures (fewer than two sample points).
pub fn predict_lines(samples: &[LineSamples]) -> Result<Vec<LinePrediction>> {
    samples
        .iter()
        .map(|ls| {
            let series = |f: &dyn Fn(&LineCost) -> u64| -> Vec<(f64, f64)> {
                ls.points
                    .iter()
                    .map(|p| (p.scale, f(&p.cost) as f64))
                    .collect()
            };
            let compute = fit_series(&series(&|c| c.compute_ops))?;
            let storage = fit_series(&series(&|c| c.storage_bytes))?;
            let bytes_in = fit_series(&series(&|c| c.bytes_in))?;
            let bytes_out = fit_series(&series(&|c| c.bytes_out))?;
            let copies = fit_series(&series(&|c| c.copy_bytes))?;
            let elim = fit_series(&series(&|c| c.eliminable_copy_bytes))?;
            let calls = ls.points.last().map_or(0, |p| p.cost.calls);
            let cost = LineCost {
                compute_ops: compute.predict(1.0).round() as u64,
                storage_bytes: storage.predict(1.0).round() as u64,
                bytes_in: bytes_in.predict(1.0).round() as u64,
                bytes_out: bytes_out.predict(1.0).round() as u64,
                copy_bytes: copies.predict(1.0).round() as u64,
                eliminable_copy_bytes: elim.predict(1.0).round() as u64,
                calls,
            };
            Ok(LinePrediction {
                line: ls.line,
                cost,
                compute_curve: compute,
                out_curve: bytes_out,
            })
        })
        .collect()
}

/// The pseudo-count the sampling fit is worth when blending against
/// measured observations: the paper's four exponentially-spaced sample
/// runs. One full-scale observation moves the blend to 1/5 measured;
/// after four observed runs the profile and the fit carry equal weight,
/// and the blend converges to the measured mean as runs accumulate.
pub const BLEND_PRIOR_RUNS: f64 = 4.0;

/// Blends measured full-scale observations into sampled predictions.
///
/// For every line with at least one recorded observation, each cost field
/// becomes `(1 − w)·predicted + w·measured_mean` with
/// `w = count / (count + BLEND_PRIOR_RUNS)` — a deterministic
/// observation-count-weighted average that never overshoots either input.
/// Lines without observations (and the fitted curves themselves, which
/// still describe how costs scale) pass through unchanged. `calls` is
/// taken from the observation when present: it is an exact integer, not
/// an extrapolation.
#[must_use]
pub fn blend_predictions(
    predictions: &[LinePrediction],
    profile: &crate::profile::WorkloadProfile,
) -> Vec<LinePrediction> {
    predictions
        .iter()
        .map(|p| {
            let Some(obs) = profile.observation(p.line) else {
                return p.clone();
            };
            let w = obs.count as f64 / (obs.count as f64 + BLEND_PRIOR_RUNS);
            let measured = obs.mean_cost();
            let mix = |pred: u64, meas: u64| -> u64 {
                ((1.0 - w) * pred as f64 + w * meas as f64).round() as u64
            };
            let cost = LineCost {
                compute_ops: mix(p.cost.compute_ops, measured.compute_ops),
                storage_bytes: mix(p.cost.storage_bytes, measured.storage_bytes),
                bytes_in: mix(p.cost.bytes_in, measured.bytes_in),
                bytes_out: mix(p.cost.bytes_out, measured.bytes_out),
                copy_bytes: mix(p.cost.copy_bytes, measured.copy_bytes),
                eliminable_copy_bytes: mix(
                    p.cost.eliminable_copy_bytes,
                    measured.eliminable_copy_bytes,
                ),
                calls: measured.calls,
            };
            LinePrediction { cost, ..p.clone() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplePoint;

    fn pts(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [1.0 / 1024.0, 1.0 / 512.0, 1.0 / 256.0, 1.0 / 128.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn recovers_linear() {
        let fit = fit_series(&pts(|n| 7.0 * n)).expect("fit");
        assert_eq!(fit.complexity, Complexity::ON);
        assert!((fit.coefficient - 7.0).abs() < 1e-9);
        assert!((fit.predict(1.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_constant() {
        let fit = fit_series(&pts(|_| 42.0)).expect("fit");
        assert_eq!(fit.complexity, Complexity::O1);
        assert!((fit.predict(1.0) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_quadratic_and_cubic() {
        let q = fit_series(&pts(|n| 3.0 * n * n)).expect("fit");
        assert_eq!(q.complexity, Complexity::ON2);
        let c = fit_series(&pts(|n| 2.0 * n * n * n)).expect("fit");
        assert_eq!(c.complexity, Complexity::ON3);
    }

    #[test]
    fn recovers_nlogn_against_neighbors() {
        // Use absolute sizes (not sub-unity scales) so the log term varies.
        let points: Vec<(f64, f64)> = [1024.0, 2048.0, 4096.0, 8192.0]
            .iter()
            .map(|&n: &f64| (n, 5.0 * n * n.log2()))
            .collect();
        let fit = fit_series(&points).expect("fit");
        assert_eq!(fit.complexity, Complexity::ONLogN);
    }

    #[test]
    fn noisy_linear_still_linear() {
        let noisy: Vec<(f64, f64)> = pts(|n| 7.0 * n)
            .into_iter()
            .enumerate()
            .map(|(i, (n, y))| (n, y * (1.0 + 0.03 * if i % 2 == 0 { 1.0 } else { -1.0 })))
            .collect();
        let fit = fit_series(&noisy).expect("fit");
        assert_eq!(fit.complexity, Complexity::ON);
        assert!(fit.residual < 0.05, "log-space residual ~0.03 for 3% noise");
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_series(&[(1.0, 1.0)]).is_err());
        assert!(fit_series(&[]).is_err());
    }

    #[test]
    fn zero_series_predicts_zero() {
        let fit = fit_series(&pts(|_| 0.0)).expect("fit");
        assert_eq!(fit.predict(1.0), 0.0);
    }

    #[test]
    fn predict_lines_extrapolates_all_fields() {
        // A perfectly linear line cost across scales.
        let samples = vec![LineSamples {
            line: 0,
            points: [0.001, 0.002, 0.004, 0.008]
                .iter()
                .map(|&scale| SamplePoint {
                    scale,
                    cost: LineCost {
                        compute_ops: (1e9 * scale) as u64,
                        storage_bytes: (8e8 * scale) as u64,
                        bytes_in: (4e8 * scale) as u64,
                        bytes_out: (1e8 * scale) as u64,
                        copy_bytes: (2e8 * scale) as u64,
                        eliminable_copy_bytes: (2e8 * scale) as u64,
                        calls: 2,
                    },
                })
                .collect(),
        }];
        let preds = predict_lines(&samples).expect("predict");
        let c = &preds[0].cost;
        assert!((c.compute_ops as f64 - 1e9).abs() / 1e9 < 0.01);
        assert!((c.bytes_out as f64 - 1e8).abs() / 1e8 < 0.01);
        assert_eq!(c.calls, 2);
        assert_eq!(preds[0].compute_curve.complexity, Complexity::ON);
    }

    fn line_prediction(line: usize, compute_ops: u64) -> LinePrediction {
        let curve = FittedCurve {
            complexity: Complexity::ON,
            coefficient: compute_ops as f64,
            residual: 0.0,
        };
        LinePrediction {
            line,
            cost: LineCost {
                compute_ops,
                bytes_out: 1_000,
                calls: 1,
                ..LineCost::zero()
            },
            compute_curve: curve,
            out_curve: curve,
        }
    }

    #[test]
    fn blend_is_observation_count_weighted() {
        let mut profile = crate::profile::WorkloadProfile::default();
        // Four observed runs at 2_000 ops vs a 1_000-op prediction:
        // w = 4 / (4 + 4) = 0.5 → blended 1_500.
        let measured = LineCost {
            compute_ops: 2_000,
            bytes_out: 1_000,
            calls: 1,
            ..LineCost::zero()
        };
        for _ in 0..4 {
            profile.record_run(&[measured]);
        }
        let blended = blend_predictions(&[line_prediction(0, 1_000)], &profile);
        assert_eq!(blended[0].cost.compute_ops, 1_500);
        assert_eq!(blended[0].cost.bytes_out, 1_000, "agreeing fields fixed");
        // Many more runs: converges toward the measured mean.
        for _ in 0..96 {
            profile.record_run(&[measured]);
        }
        let converged = blend_predictions(&[line_prediction(0, 1_000)], &profile);
        assert!(converged[0].cost.compute_ops > 1_950);
    }

    #[test]
    fn blend_passes_unobserved_lines_through() {
        let profile = crate::profile::WorkloadProfile::default();
        let preds = vec![line_prediction(0, 1_000), line_prediction(1, 3_000)];
        assert_eq!(blend_predictions(&preds, &profile), preds);
    }

    #[test]
    fn blend_is_deterministic_across_recording_orders() {
        let runs = [500u64, 1_500, 2_500];
        let mut forward = crate::profile::WorkloadProfile::default();
        let mut reverse = crate::profile::WorkloadProfile::default();
        for ops in runs {
            forward.record_run(&[LineCost {
                compute_ops: ops,
                ..LineCost::zero()
            }]);
        }
        for ops in runs.iter().rev() {
            reverse.record_run(&[LineCost {
                compute_ops: *ops,
                ..LineCost::zero()
            }]);
        }
        let preds = vec![line_prediction(0, 1_000)];
        assert_eq!(
            blend_predictions(&preds, &forward),
            blend_predictions(&preds, &reverse)
        );
    }
}
