//! The planner-audit observatory: Eq. 1 predicted-vs-measured calibration.
//!
//! Algorithm 1 places lines using Eq. 1 *predictions*; the monitors of
//! §III-D correct the plan when reality diverges. This module makes the
//! divergence itself first-class: at plan time every per-line Eq. 1 term
//! is captured as an [`Eq1Term`] (into [`crate::plan::OffloadPlan::eq1`]
//! and [`crate::exec::RunReport::eq1`]); after execution, [`calibrate`]
//! joins the terms against the measured [`alang::LineCost`]s and
//! per-line wall-clock, and against the [`crate::profile::ProfileStore`]
//! observations when a profile exists, producing a [`CalibrationReport`]:
//!
//! * per-line signed time error and output-volume error,
//! * per-phase attribution on both clocks (host nanoseconds from
//!   [`crate::plan::PlanTimings`], simulated seconds from the plan and
//!   the run),
//! * log₂ error histograms in parts-per-million
//!   ([`isp_obs::Histogram`]),
//! * and the counterfactual question the adapt sweep answers only
//!   indirectly: **would Algorithm 1 have flipped this line under the
//!   measured costs?** ([`CounterfactualFlip`]).
//!
//! The whole layer is observation-only, like the tracer and the profile
//! recorder: capture happens on data the planner already produced,
//! calibration reads a finished report, and publishing goes through a
//! [`Tracer`] — none of it can perturb the simulated clock, the
//! `values_fingerprint`, migration decisions, or recovery accounting.
//!
//! ## Counterfactual-flip semantics
//!
//! The measured estimates replace predictions with observations *where
//! observations exist*: the engine a line actually ran on gets its
//! measured duration (wall minus input staging, which Eq. 1 charges
//! separately through the `D_in` term); the engine it did not run on
//! keeps its predicted cost; `D_in`/`D_out` become the measured byte
//! counts. Algorithm 1 then re-runs verbatim
//! ([`crate::assign::assign_refined`]) and the symmetric difference
//! against the planned `P_csd` is the flip set. Scaling *both* engines by
//! the observed ratio would cancel contention out of the comparison and
//! never flip anything; replacing only the observed side is exactly the
//! information a re-planner would actually have.

use std::collections::BTreeMap;

use crate::assign::{assign_refined, Assignment};
use crate::estimate::{net_profit, LineEstimate};
use crate::exec::{LineOutcome, RunReport};
use crate::plan::OffloadPlan;
use crate::profile::WorkloadProfile;
use csd_sim::EngineKind;
use isp_obs::{Histogram, SpanKind, Tracer};
use serde::{Deserialize, Serialize};

/// One line's Eq. 1 terms exactly as Algorithm 1 consumed them.
///
/// Captured at plan time into [`OffloadPlan::eq1`] and echoed (from the
/// assignment actually executed) into [`RunReport::eq1`]. For wire-format
/// scan lines, `on_csd` *is* the decode placement: decode runs wherever
/// the scan line runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Eq1Term {
    /// The line index.
    pub line: usize,
    /// Predicted input volume `D_in`, bytes.
    pub d_in: u64,
    /// Predicted output volume `D_out`, bytes.
    pub d_out: u64,
    /// Predicted host execution time `CT_host`, seconds.
    pub ct_host: f64,
    /// Predicted device execution time `CT_device`, seconds.
    pub ct_device: f64,
    /// The D2H bandwidth the assignment charged transfers against — the
    /// shared-link `min(link, budget/N)` term for fleet plans.
    pub bw_d2h: f64,
    /// Fleet width the bandwidth term assumed (1 for unsharded plans).
    pub shards: usize,
    /// Eq. 1 net profit `S` of running this line on the CSD in
    /// isolation.
    pub profit: f64,
    /// Algorithm 1's decision: whether the line joined `P_csd`.
    pub on_csd: bool,
}

/// Captures per-line [`Eq1Term`]s from estimates and an assignment.
///
/// `shards` documents the fleet width `bw_d2h` was derived for; pass 1
/// for single-device plans.
#[must_use]
pub fn capture_terms(
    estimates: &[LineEstimate],
    assignment: &Assignment,
    bw_d2h: f64,
    shards: usize,
) -> Vec<Eq1Term> {
    estimates
        .iter()
        .map(|e| Eq1Term {
            line: e.line,
            d_in: e.d_in,
            d_out: e.d_out,
            ct_host: e.ct_host,
            ct_device: e.ct_device,
            bw_d2h,
            shards,
            profit: net_profit(e.d_in, e.ct_host, e.ct_device, e.d_out, bw_d2h),
            on_csd: assignment.csd_lines.contains(&e.line),
        })
        .collect()
}

/// The per-line join of an [`Eq1Term`] against the measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineAudit {
    /// The line index.
    pub line: usize,
    /// Where Algorithm 1 placed the line.
    pub planned_csd: bool,
    /// Where the line actually ran (differs after a migration).
    pub ran_csd: bool,
    /// The predicted execution time on the engine that actually ran the
    /// line, seconds.
    pub predicted_secs: f64,
    /// The measured execution time on that engine, seconds: per-line wall
    /// minus input staging (Eq. 1 charges staging through `D_in`).
    pub measured_secs: f64,
    /// Signed time error, `measured − predicted`, seconds.
    pub err_secs: f64,
    /// `|err| / max(measured, predicted)`, in `[0, 1]` — the bounded
    /// relative error both histograms and the CI band use.
    pub abs_rel_err: f64,
    /// Predicted output volume, bytes.
    pub predicted_d_out: u64,
    /// Measured output volume, bytes.
    pub measured_d_out: u64,
    /// Mean output volume over every [`WorkloadProfile`] observation of
    /// this line (0 when no profile was supplied or the line was never
    /// observed).
    pub profile_d_out: u64,
    /// Whether Algorithm 1 re-run on the measured costs places this line
    /// on the other engine.
    pub flipped: bool,
}

/// One counterfactual placement flip, with the Eq. 1 profits that
/// explain it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterfactualFlip {
    /// The line index.
    pub line: usize,
    /// Where the plan put it.
    pub planned_csd: bool,
    /// Eq. 1 net profit under the predicted terms, seconds.
    pub predicted_profit: f64,
    /// Eq. 1 net profit under the measured terms, seconds.
    pub measured_profit: f64,
    /// Human-readable account of the flip.
    pub explanation: String,
}

/// Host-nanosecond and simulated-second attribution of one pipeline
/// phase — the dual-clock breakdown of where planning and execution time
/// went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAttribution {
    /// Phase name (`sampling`, `fit`, `assign`, `materialize`, `compile`,
    /// `execute`).
    pub phase: String,
    /// Host wall-clock spent, nanoseconds (0 where the phase is charged
    /// to the simulated clock only).
    pub wall_nanos: u64,
    /// Simulated seconds charged (0 for host-only phases).
    pub sim_secs: f64,
}

/// The complete predicted-vs-measured calibration of one executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The workload the plan belongs to.
    pub workload: String,
    /// Per-line audits, ascending line index.
    pub lines: Vec<LineAudit>,
    /// Counterfactual flips, ascending line index (empty when Algorithm 1
    /// stands by its plan under the measured costs).
    pub flips: Vec<CounterfactualFlip>,
    /// Dual-clock per-phase attribution.
    pub phases: Vec<PhaseAttribution>,
    /// Log₂ histogram of per-line `abs_rel_err`, in parts per million.
    pub time_err_ppm: Histogram,
    /// Log₂ histogram of per-line output-volume relative error, in parts
    /// per million.
    pub volume_err_ppm: Histogram,
    /// The profile version joined against (0 when none was supplied).
    pub profile_version: u64,
}

impl CalibrationReport {
    /// Mean of the bounded per-line relative time errors (0 when no line
    /// did measurable work).
    #[must_use]
    pub fn mean_abs_rel_err(&self) -> f64 {
        if self.lines.is_empty() {
            return 0.0;
        }
        self.lines.iter().map(|l| l.abs_rel_err).sum::<f64>() / self.lines.len() as f64
    }

    /// The worst `n` lines by `|err_secs|`, descending (ties broken by
    /// ascending line index for determinism).
    #[must_use]
    pub fn worst_lines(&self, n: usize) -> Vec<&LineAudit> {
        let mut sorted: Vec<&LineAudit> = self.lines.iter().collect();
        sorted.sort_by(|a, b| {
            b.err_secs
                .abs()
                .partial_cmp(&a.err_secs.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.line.cmp(&b.line))
        });
        sorted.truncate(n);
        sorted
    }

    /// Publishes the calibration into `tracer`'s unified registry: the
    /// `audit.lines` / `audit.flips` counters, the `audit.time_err_ppm`
    /// and `audit.volume_err_ppm` histograms, and one `audit.line`
    /// instant per audited line (the summarizer's worst-5 table reads
    /// these back from the journal). No-op when the tracer is disabled.
    pub fn publish_to(&self, tracer: &Tracer) {
        if !tracer.is_enabled() {
            return;
        }
        tracer.counter_add("audit.lines", self.lines.len() as u64);
        tracer.counter_add("audit.flips", self.flips.len() as u64);
        for l in &self.lines {
            let time_ppm = ppm(l.abs_rel_err);
            tracer.observe("audit.time_err_ppm", time_ppm);
            tracer.observe(
                "audit.volume_err_ppm",
                ppm(rel_err(l.predicted_d_out as f64, l.measured_d_out as f64)),
            );
            tracer.instant(
                "audit.line",
                SpanKind::Monitor,
                None,
                vec![
                    ("workload".into(), self.workload.as_str().into()),
                    ("line".into(), l.line.into()),
                    ("predicted_secs".into(), l.predicted_secs.into()),
                    ("measured_secs".into(), l.measured_secs.into()),
                    ("err_ppm".into(), (time_ppm as usize).into()),
                    ("flipped".into(), l.flipped.into()),
                ],
            );
        }
    }
}

/// `|a − b| / max(a, b)`, bounded to `[0, 1]`; 0 when both sides are
/// negligible.
fn rel_err(predicted: f64, measured: f64) -> f64 {
    let denom = predicted.max(measured);
    if denom <= 1e-12 {
        0.0
    } else {
        (measured - predicted).abs() / denom
    }
}

/// A `[0, 1]` relative error as integral parts per million.
fn ppm(rel: f64) -> u64 {
    (rel * 1e6).round() as u64
}

/// Measured Eq. 1 execution time of one line outcome: wall-clock minus
/// the input-staging transfer (charged separately through `D_in`),
/// clamped at zero.
fn measured_ct(outcome: &LineOutcome, bw_d2h: f64) -> f64 {
    let staging = if bw_d2h > 0.0 {
        outcome.staged_bytes as f64 / bw_d2h
    } else {
        0.0
    };
    (outcome.end_secs - outcome.start_secs - staging).max(0.0)
}

/// Joins a plan's captured [`Eq1Term`]s against a finished run's measured
/// outcomes (and the workload's [`WorkloadProfile`], when one exists)
/// into a [`CalibrationReport`].
///
/// Prefers the terms echoed into `report.eq1` (they reflect the
/// assignment that actually executed, e.g. a forced-placement variant);
/// falls back to `plan.eq1`. Lines the run never reached are skipped.
#[must_use]
pub fn calibrate(
    workload: &str,
    plan: &OffloadPlan,
    report: &RunReport,
    profile: Option<&WorkloadProfile>,
) -> CalibrationReport {
    let terms: &[Eq1Term] = if report.eq1.is_empty() {
        &plan.eq1
    } else {
        &report.eq1
    };
    // Last outcome per line wins: a reclaim may revisit a boundary, and
    // the final visit is the one that produced the line's lasting cost.
    let mut by_line: BTreeMap<usize, &LineOutcome> = BTreeMap::new();
    for l in &report.lines {
        by_line.insert(l.line, l);
    }

    // The counterfactual estimates: observations where we have them,
    // predictions elsewhere (see the module docs for why only the
    // observed engine is replaced).
    let mut measured_est = plan.estimates.clone();
    for est in &mut measured_est {
        let Some(outcome) = by_line.get(&est.line) else {
            continue;
        };
        let bw = terms
            .iter()
            .find(|t| t.line == est.line)
            .map_or(0.0, |t| t.bw_d2h);
        let m = measured_ct(outcome, bw);
        match outcome.engine {
            EngineKind::Cse => est.ct_device = m,
            EngineKind::Host => est.ct_host = m,
        }
        est.d_in = outcome.cost.bytes_in;
        est.d_out = outcome.cost.bytes_out;
    }
    let bw = terms.first().map_or(0.0, |t| t.bw_d2h);
    let counterfactual = if bw > 0.0 {
        assign_refined(&plan.program, &measured_est, bw)
    } else {
        plan.assignment.clone()
    };

    let mut lines = Vec::with_capacity(terms.len());
    let mut flips = Vec::new();
    let mut time_err_ppm = Histogram::default();
    let mut volume_err_ppm = Histogram::default();
    for t in terms {
        let Some(outcome) = by_line.get(&t.line) else {
            continue;
        };
        let ran_csd = outcome.engine == EngineKind::Cse;
        let predicted_secs = if ran_csd { t.ct_device } else { t.ct_host };
        let measured_secs = measured_ct(outcome, t.bw_d2h);
        let abs_rel = rel_err(predicted_secs, measured_secs);
        let flipped = counterfactual.csd_lines.contains(&t.line) != t.on_csd;
        let profile_d_out = profile
            .and_then(|p| p.observation(t.line))
            .map_or(0, |o| o.mean_cost().bytes_out);
        time_err_ppm.observe(ppm(abs_rel));
        volume_err_ppm.observe(ppm(rel_err(t.d_out as f64, outcome.cost.bytes_out as f64)));
        lines.push(LineAudit {
            line: t.line,
            planned_csd: t.on_csd,
            ran_csd,
            predicted_secs,
            measured_secs,
            err_secs: measured_secs - predicted_secs,
            abs_rel_err: abs_rel,
            predicted_d_out: t.d_out,
            measured_d_out: outcome.cost.bytes_out,
            profile_d_out,
            flipped,
        });
        if flipped {
            let m = &measured_est[t.line.min(measured_est.len().saturating_sub(1))];
            let measured_profit = net_profit(m.d_in, m.ct_host, m.ct_device, m.d_out, t.bw_d2h);
            let target = plan
                .program
                .lines()
                .get(t.line)
                .map_or_else(|| "?".to_string(), |l| l.target.clone());
            flips.push(CounterfactualFlip {
                line: t.line,
                planned_csd: t.on_csd,
                predicted_profit: t.profit,
                measured_profit,
                explanation: format!(
                    "line {} (`{}`): planned {}, measured costs favor {} \
                     (predicted S {:+.4}s, measured S {:+.4}s)",
                    t.line,
                    target,
                    if t.on_csd { "CSD" } else { "host" },
                    if t.on_csd { "host" } else { "CSD" },
                    t.profit,
                    measured_profit,
                ),
            });
        }
    }

    CalibrationReport {
        workload: workload.to_string(),
        lines,
        flips,
        phases: phase_attribution(plan, report),
        time_err_ppm,
        volume_err_ppm,
        profile_version: profile.map_or(0, |p| p.version),
    }
}

/// The dual-clock phase breakdown: host nanoseconds from
/// [`crate::plan::PlanTimings`], simulated seconds from the plan's
/// charged overheads and the run's remainder.
fn phase_attribution(plan: &OffloadPlan, report: &RunReport) -> Vec<PhaseAttribution> {
    let exec_sim = (report.total_secs - plan.sampling_secs - plan.compile_secs).max(0.0);
    let phase = |name: &str, wall_nanos: u64, sim_secs: f64| PhaseAttribution {
        phase: name.to_string(),
        wall_nanos,
        sim_secs,
    };
    vec![
        phase("sampling", plan.timings.sampling_nanos, plan.sampling_secs),
        phase("fit", plan.timings.fit_nanos, 0.0),
        phase("assign", plan.timings.assign_nanos, 0.0),
        phase("materialize", plan.timings.materialize_nanos, 0.0),
        phase("compile", 0, plan.compile_secs),
        phase("execute", 0, exec_sim),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanCache;
    use crate::runtime::ActivePy;
    use crate::sampling::InputSource;
    use alang::builtins::Storage;
    use alang::parser::parse;
    use alang::value::ArrayVal;
    use alang::Value;
    use csd_sim::{ContentionScenario, SystemConfig};

    fn input() -> impl InputSource {
        |scale: f64| {
            let logical = (scale * 1e9).round().max(100.0) as u64;
            let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
            let data: Vec<f64> = (0..actual).map(|i| (i % 100) as f64).collect();
            let mut st = Storage::new();
            st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
            st
        }
    }

    const SRC: &str = "a = scan('v')\nm = a < 50\nb = select(a, m)\ns = sum(b)\n";

    fn plan_and_run(
        scenario: ContentionScenario,
    ) -> (
        std::sync::Arc<OffloadPlan>,
        RunReport,
        ActivePy,
        SystemConfig,
    ) {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let plan = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        let outcome = rt.execute_plan(&plan, &config, scenario).expect("execute");
        (plan, outcome.report, rt, config)
    }

    #[test]
    fn plans_capture_one_term_per_line_with_consistent_profit_sign() {
        let (plan, report, _, _) = plan_and_run(ContentionScenario::none());
        assert_eq!(plan.eq1.len(), 4);
        assert_eq!(report.eq1.len(), 4);
        for t in &plan.eq1 {
            assert_eq!(t.shards, 1);
            assert!(t.bw_d2h > 0.0);
            let direct = net_profit(t.d_in, t.ct_host, t.ct_device, t.d_out, t.bw_d2h);
            assert!((t.profit - direct).abs() < 1e-12);
        }
        // Algorithm 1 offloads the scan; its *isolated* Eq. 1 profit is
        // negative (the full 8 GB D_out is charged as crossing until the
        // filter joins — the lookahead hump), which is exactly why the
        // term captures the raw ingredients rather than only the sign.
        assert!(plan.eq1[0].on_csd);
        assert!(plan.eq1[0].d_out > 1_000_000_000);
    }

    #[test]
    fn uncontended_calibration_is_tight_and_flip_free() {
        let (plan, report, _, _) = plan_and_run(ContentionScenario::none());
        let audit = calibrate("w", &plan, &report, None);
        assert_eq!(audit.lines.len(), 4);
        assert!(
            audit.mean_abs_rel_err() < 0.35,
            "uncontended predictions should be close: {}",
            audit.mean_abs_rel_err()
        );
        assert!(
            audit.flips.is_empty(),
            "no contention, no reason to flip: {:?}",
            audit.flips
        );
        assert_eq!(audit.time_err_ppm.count(), 4);
        assert_eq!(audit.volume_err_ppm.count(), 4);
        // Both clocks are attributed and the execute phase dominates sim
        // time.
        let exec = audit
            .phases
            .iter()
            .find(|p| p.phase == "execute")
            .expect("execute phase");
        assert!(exec.sim_secs > 0.0);
        assert!(audit.phases.iter().any(|p| p.wall_nanos > 0));
    }

    #[test]
    fn contended_run_flips_the_offloaded_lines() {
        // Drop the CSE to 10 % availability from the start: measured
        // device time balloons ~10x and Algorithm 1, shown those costs,
        // must pull work back to the host.
        let (plan, report, _, _) = plan_and_run(ContentionScenario::at_time(
            csd_sim::units::SimTime::from_secs(0.0),
            0.1,
        ));
        let audit = calibrate("w", &plan, &report, None);
        assert!(
            !audit.flips.is_empty(),
            "10% availability must flip at least one planned-CSD line"
        );
        let flip = &audit.flips[0];
        assert!(flip.planned_csd, "the flip pulls work back to the host");
        assert!(
            flip.measured_profit < flip.predicted_profit,
            "measured profit must have collapsed: {flip:?}"
        );
        assert!(flip.explanation.contains("measured costs favor host"));
        // The flip is also flagged on the per-line join.
        assert!(audit.lines.iter().any(|l| l.line == flip.line && l.flipped));
    }

    #[test]
    fn worst_lines_sort_by_absolute_error() {
        let (plan, report, _, _) = plan_and_run(ContentionScenario::none());
        let audit = calibrate("w", &plan, &report, None);
        let worst = audit.worst_lines(2);
        assert_eq!(worst.len(), 2);
        assert!(worst[0].err_secs.abs() >= worst[1].err_secs.abs());
    }

    #[test]
    fn profile_join_records_version_and_mean_volume() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let plan = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        let recorder = cache.recorder_for(&rt, "w", &input(), &config);
        let rt_rec = ActivePy::with_options(
            crate::runtime::ActivePyOptions::default().with_profile(recorder),
        );
        let outcome = rt_rec
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("execute");
        let key = PlanCache::key_for(&rt, "w", &input(), &config);
        let profile = cache.profiles().profile(&key);
        assert_eq!(profile.version, 1);
        let audit = calibrate("w", &plan, &outcome.report, Some(&profile));
        assert_eq!(audit.profile_version, 1);
        for l in &audit.lines {
            assert_eq!(
                l.profile_d_out, l.measured_d_out,
                "one recorded run: the profile mean is the measurement"
            );
        }
    }

    #[test]
    fn calibration_is_observation_only() {
        // Publishing an audit to a live tracer must not perturb anything:
        // run twice, audit one of them, reports stay identical.
        let (plan, report, rt, config) = plan_and_run(ContentionScenario::none());
        let audit = calibrate("w", &plan, &report, None);
        let (tracer, _sink) = Tracer::to_memory();
        audit.publish_to(&tracer);
        audit.publish_to(&Tracer::disabled());
        let again = rt
            .execute_plan(&plan, &config, ContentionScenario::none())
            .expect("re-execute");
        assert_eq!(report, again.report);
        let reg = tracer.metrics_snapshot().expect("enabled");
        assert_eq!(reg.counter("audit.lines"), Some(4));
        assert_eq!(reg.counter("audit.flips"), Some(0));
        assert_eq!(
            reg.histogram("audit.time_err_ppm").map(|h| h.count),
            Some(4)
        );
    }
}
