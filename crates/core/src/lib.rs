//! # activepy — the ActivePy runtime (DAC 2023), reproduced
//!
//! ActivePy lets a programmer write an ordinary interpreted-language
//! program — no annotations, pragmas, or hints — and transparently decides
//! which lines to run inside a computational storage device (CSD). This
//! crate implements the complete pipeline of the paper against the
//! [`csd_sim`] hardware model and the [`alang`] language substrate:
//!
//! 1. **Sampling** ([`sampling`]): run the program on inputs scaled by
//!    2⁻¹⁰…2⁻⁷ and collect per-line statistics (§III-A).
//! 2. **Fitting** ([`fit`]): extrapolate each line's cost to full scale by
//!    choosing among O(1), O(n), O(n log n), O(n²), O(n³) (§III-A).
//! 3. **Estimation** ([`estimate`]): calibrate the CSE slowdown constant
//!    `C` from performance counters or a probe program, and evaluate the
//!    net-profit equation (Eq. 1).
//! 4. **Assignment** ([`assign`]): Algorithm 1's greedy line-by-line CSD
//!    partitioning (§III-B).
//! 5. **Code generation**: Cython-style compilation with redundant-copy
//!    elimination, binary distribution through BAR-mapped device memory
//!    (§III-C, implemented in [`alang::compile`] and charged by the
//!    execution engine).
//! 6. **Execution, monitoring, migration** ([`exec`], [`monitor`]): NVMe
//!    queue-pair function calls, per-line status updates, IPC-based
//!    degradation detection, and line-boundary task migration back to the
//!    host (§III-C0b, §III-D).
//!
//! The [`runtime::ActivePy`] facade chains all of it:
//!
//! ```
//! use activepy::runtime::ActivePy;
//! use alang::builtins::Storage;
//! use alang::value::ArrayVal;
//! use alang::Value;
//! use csd_sim::{ContentionScenario, SystemConfig};
//!
//! let program = alang::parser::parse("a = scan('v')\ns = sum(a)\n")?;
//! let input = |scale: f64| {
//!     let logical = (scale * 1e9) as u64;
//!     let mut st = Storage::new();
//!     st.insert("v", Value::Array(ArrayVal::with_logical(vec![1.0; 512], logical.max(512))));
//!     st
//! };
//! let outcome = ActivePy::new().run(
//!     &program,
//!     &input,
//!     &SystemConfig::paper_default(),
//!     ContentionScenario::none(),
//! )?;
//! println!("end-to-end: {:.3}s, offloaded {} lines",
//!          outcome.report.total_secs, outcome.assignment.csd_lines.len());
//! # Ok::<(), activepy::error::ActivePyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assign;
pub mod audit;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod fit;
pub mod metrics;
pub mod monitor;
pub mod persist;
pub mod plan;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod resume;
pub mod runtime;
pub mod sampling;
pub mod shard;

pub use assign::Assignment;
pub use audit::{
    calibrate, capture_terms, CalibrationReport, CounterfactualFlip, Eq1Term, LineAudit,
    PhaseAttribution,
};
pub use error::ActivePyError;
pub use estimate::{Calibration, LineEstimate};
pub use exec::{ExecOptions, MigrationCause, MigrationReason, RunReport};
pub use metrics::{AuditStats, MetricsSnapshot};
pub use monitor::MonitorConfig;
pub use plan::{OffloadPlan, PlanCache, PlanCacheStats, PlanTimings};
pub use profile::{LineObservation, ProfileKey, ProfileRecorder, ProfileStore, WorkloadProfile};
pub use recovery::{RecoveryPolicy, RecoveryStats};
pub use resume::{plan_fingerprint, ExecJournal, JournalStats, ResumeInfo};
pub use runtime::{ActivePy, ActivePyOptions, ActivePyOutcome};
pub use sampling::InputSource;
pub use shard::{
    derive_sharded_plan, execute_sharded, execute_sharded_plan, execute_sharded_raw, FleetReport,
    FleetRun, ShardRunReport, ShardedPlan,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ActivePy>();
        assert_send_sync::<crate::RunReport>();
        assert_send_sync::<crate::Assignment>();
        assert_send_sync::<crate::OffloadPlan>();
        assert_send_sync::<crate::PlanCache>();
    }
}
