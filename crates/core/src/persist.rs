//! Warm-start persistence: the on-disk codec for plan-cache seeds and
//! measured profiles.
//!
//! A cold [`crate::plan::PlanCache`] miss runs the sampling phase —
//! dozens of down-scaled executions plus full-scale input
//! materialization, all driven by datagen calls against the workload's
//! [`crate::sampling::InputSource`]. Everything planning derives from
//! those calls is captured by two values: the [`SamplingReport`] and the
//! materialized full-scale [`Storage`]. This module serializes exactly
//! that pair per cache key (plus the profile store's accumulated
//! observations) into a single checksummed binary file, so a restarted
//! process re-plans **byte-identical** plans with *zero* datagen calls
//! — the warm half of the crash-recovery story, next to the execution
//! WAL in [`crate::resume`].
//!
//! ## Format
//!
//! ```text
//! [ magic "ISPWARM1" : 8 bytes ]
//! [ u64 payload_len (LE) ][ u64 fnv1a(payload) (LE) ][ payload ]
//! ```
//!
//! One frame for the whole file: warm state is written atomically at
//! save points (not appended), so a torn write is detected by the
//! length/checksum and the caller falls back to cold planning. The
//! payload is a straight little-endian encoding via the WAL's
//! [`ByteWriter`]/[`ByteReader`]; floats travel as IEEE-754 bit patterns
//! so round trips are exact and replanning from a loaded seed is
//! bit-identical to replanning from the live one.

use crate::profile::{LineObservation, ProfileKey, WorkloadProfile};
use crate::sampling::{LineSamples, SamplePoint, SamplingReport};
use alang::copyelim::StaticType;
use alang::forest::{Forest, Tree, TreeNode};
use alang::matrix::{Csr, Matrix};
use alang::table::{Column, Table};
use alang::value::{ArrayVal, BoolArrayVal, EncodedVal};
use alang::{LineCost, Storage, Value};
use csd_sim::wire::{ByteOrder, Codec, Encoding};
use isp_obs::wal::{fnv1a, ByteReader, ByteWriter};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// File header identifying a warm-start file and its format version.
pub const WARM_MAGIC: [u8; 8] = *b"ISPWARM1";

/// Everything a plan-cache miss needs to re-plan without datagen: the
/// sampling measurements and the materialized full-scale input.
#[derive(Debug, Clone)]
pub struct WarmSeed {
    /// The down-scale sampling measurements (planning phase 1's output).
    pub sampling: SamplingReport,
    /// The materialized full-scale input (planning phase 6's output).
    pub storage: Storage,
}

/// Serializes warm seeds and profiles and writes the framed file.
///
/// # Errors
///
/// Propagates file write errors.
pub fn save_warm_file(
    path: &Path,
    seeds: &[(ProfileKey, WarmSeed)],
    profiles: &[(ProfileKey, WorkloadProfile)],
) -> io::Result<()> {
    let mut w = ByteWriter::default();
    w.u32(seeds.len() as u32);
    for (key, seed) in seeds {
        enc_key(&mut w, key);
        enc_sampling(&mut w, &seed.sampling);
        enc_storage(&mut w, &seed.storage);
    }
    w.u32(profiles.len() as u32);
    for (key, profile) in profiles {
        enc_key(&mut w, key);
        enc_profile(&mut w, profile);
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&WARM_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    std::fs::write(path, out)
}

/// Reads and decodes a file written by [`save_warm_file`].
///
/// # Errors
///
/// File I/O errors pass through; a bad magic, length, checksum, or
/// payload surfaces as [`io::ErrorKind::InvalidData`] so callers can
/// fall back to cold planning.
#[allow(clippy::type_complexity)]
pub fn load_warm_file(
    path: &Path,
) -> io::Result<(
    Vec<(ProfileKey, WarmSeed)>,
    Vec<(ProfileKey, WorkloadProfile)>,
)> {
    let bytes = std::fs::read(path)?;
    decode_warm_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[allow(clippy::type_complexity)]
fn decode_warm_bytes(
    bytes: &[u8],
) -> Result<
    (
        Vec<(ProfileKey, WarmSeed)>,
        Vec<(ProfileKey, WorkloadProfile)>,
    ),
    String,
> {
    if bytes.len() < 24 || bytes[..8] != WARM_MAGIC {
        return Err("not a warm-start file (bad magic)".into());
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = bytes
        .get(24..24 + len)
        .ok_or("warm-start payload truncated")?;
    if 24 + len != bytes.len() {
        return Err("warm-start file has trailing bytes".into());
    }
    if fnv1a(payload) != checksum {
        return Err("warm-start checksum mismatch (torn write?)".into());
    }
    let mut r = ByteReader::new(payload);
    let mut seeds = Vec::new();
    for _ in 0..r.u32()? {
        let key = dec_key(&mut r)?;
        let sampling = dec_sampling(&mut r)?;
        let storage = dec_storage(&mut r)?;
        seeds.push((key, WarmSeed { sampling, storage }));
    }
    let mut profiles = Vec::new();
    for _ in 0..r.u32()? {
        let key = dec_key(&mut r)?;
        profiles.push((key, dec_profile(&mut r)?));
    }
    if r.remaining() != 0 {
        return Err(format!(
            "warm-start payload has {} undecoded bytes",
            r.remaining()
        ));
    }
    Ok((seeds, profiles))
}

fn enc_key(w: &mut ByteWriter, key: &ProfileKey) {
    w.str(&key.0);
    w.u64(key.1);
}

fn dec_key(r: &mut ByteReader<'_>) -> Result<ProfileKey, String> {
    Ok((r.str()?, r.u64()?))
}

fn enc_cost(w: &mut ByteWriter, c: &LineCost) {
    w.u64(c.compute_ops);
    w.u64(c.storage_bytes);
    w.u64(c.bytes_in);
    w.u64(c.bytes_out);
    w.u64(c.copy_bytes);
    w.u64(c.eliminable_copy_bytes);
    w.u32(c.calls);
}

fn dec_cost(r: &mut ByteReader<'_>) -> Result<LineCost, String> {
    Ok(LineCost {
        compute_ops: r.u64()?,
        storage_bytes: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        copy_bytes: r.u64()?,
        eliminable_copy_bytes: r.u64()?,
        calls: r.u32()?,
    })
}

fn static_type_code(t: StaticType) -> u8 {
    match t {
        StaticType::Num => 0,
        StaticType::Bool => 1,
        StaticType::Str => 2,
        StaticType::Array => 3,
        StaticType::BoolArray => 4,
        StaticType::Table => 5,
        StaticType::Matrix => 6,
        StaticType::Csr => 7,
        StaticType::Forest => 8,
        StaticType::Unknown => 9,
        StaticType::Encoded => 10,
    }
}

fn static_type_from(code: u8) -> Result<StaticType, String> {
    Ok(match code {
        0 => StaticType::Num,
        1 => StaticType::Bool,
        2 => StaticType::Str,
        3 => StaticType::Array,
        4 => StaticType::BoolArray,
        5 => StaticType::Table,
        6 => StaticType::Matrix,
        7 => StaticType::Csr,
        8 => StaticType::Forest,
        9 => StaticType::Unknown,
        10 => StaticType::Encoded,
        other => return Err(format!("unknown static type code {other}")),
    })
}

fn enc_sampling(w: &mut ByteWriter, s: &SamplingReport) {
    w.u32(s.lines.len() as u32);
    for line in &s.lines {
        w.u64(line.line as u64);
        w.u32(line.points.len() as u32);
        for p in &line.points {
            w.f64(p.scale);
            enc_cost(w, &p.cost);
        }
    }
    w.u32(s.dataset_types.len() as u32);
    for (name, t) in &s.dataset_types {
        w.str(name);
        w.u8(static_type_code(*t));
    }
    enc_cost(w, &s.total_sampling_cost);
}

fn dec_sampling(r: &mut ByteReader<'_>) -> Result<SamplingReport, String> {
    let mut lines = Vec::new();
    for _ in 0..r.u32()? {
        let line = r.u64()? as usize;
        let mut points = Vec::new();
        for _ in 0..r.u32()? {
            points.push(SamplePoint {
                scale: r.f64()?,
                cost: dec_cost(r)?,
            });
        }
        lines.push(LineSamples { line, points });
    }
    let mut dataset_types = alang::copyelim::DatasetTypes::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        let t = static_type_from(r.u8()?)?;
        dataset_types.insert(name, t);
    }
    let total_sampling_cost = dec_cost(r)?;
    Ok(SamplingReport {
        lines,
        dataset_types,
        total_sampling_cost,
    })
}

fn enc_storage(w: &mut ByteWriter, storage: &Storage) {
    let names: Vec<&str> = storage.names().collect();
    w.u32(names.len() as u32);
    for name in names {
        w.str(name);
        let value = storage.get(name).expect("name came from the storage");
        enc_value(w, value);
    }
}

fn dec_storage(r: &mut ByteReader<'_>) -> Result<Storage, String> {
    let mut storage = Storage::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        let value = dec_value(r)?;
        storage.insert(name, value);
    }
    Ok(storage)
}

fn enc_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Num(x) => {
            w.u8(0);
            w.f64(*x);
        }
        Value::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        Value::Str(s) => {
            w.u8(2);
            w.str(s);
        }
        Value::Array(a) => {
            w.u8(3);
            w.u64(a.logical_len());
            w.u32(a.data().len() as u32);
            for x in a.data() {
                w.f64(*x);
            }
        }
        Value::BoolArray(a) => {
            w.u8(4);
            w.u64(a.logical_len());
            w.u32(a.data().len() as u32);
            for b in a.data() {
                w.bool(*b);
            }
        }
        Value::Table(t) => {
            w.u8(5);
            w.u64(t.logical_rows());
            let names: Vec<&str> = t.column_names().collect();
            w.u32(names.len() as u32);
            for name in names {
                w.str(name);
                match t.column(name).expect("name came from the table") {
                    Column::F64(data) => {
                        w.u8(0);
                        w.u32(data.len() as u32);
                        for x in data.iter() {
                            w.f64(*x);
                        }
                    }
                    Column::I64(data) => {
                        w.u8(1);
                        w.u32(data.len() as u32);
                        for x in data.iter() {
                            w.u64(*x as u64);
                        }
                    }
                    Column::Dict { codes, dict } => {
                        w.u8(2);
                        w.u32(codes.len() as u32);
                        for c in codes.iter() {
                            w.u32(*c);
                        }
                        w.u32(dict.len() as u32);
                        for s in dict.iter() {
                            w.str(s);
                        }
                    }
                }
            }
        }
        Value::Matrix(m) => {
            w.u8(6);
            w.u32(m.rows() as u32);
            w.u32(m.cols() as u32);
            w.u64(m.logical_rows());
            w.u64(m.logical_cols());
            for x in m.data() {
                w.f64(*x);
            }
        }
        Value::Csr(c) => {
            w.u8(7);
            w.u32(c.rows() as u32);
            w.u32(c.cols() as u32);
            w.u64(c.logical_rows());
            w.u64(c.logical_cols());
            w.u64(c.logical_nnz());
            w.u32(c.row_ptr().len() as u32);
            for p in c.row_ptr() {
                w.u32(*p);
            }
            w.u32(c.values().len() as u32);
            for (idx, val) in c.col_idx().iter().zip(c.values()) {
                w.u32(*idx);
                w.f64(*val);
            }
        }
        Value::Forest(f) => {
            w.u8(8);
            w.u32(f.feature_count());
            w.u32(f.trees().len() as u32);
            for tree in f.trees() {
                w.u32(tree.nodes().len() as u32);
                for n in tree.nodes() {
                    w.u32(n.feature);
                    w.f64(n.threshold);
                    w.u32(n.left);
                    w.u32(n.right);
                    w.f64(n.value);
                }
            }
        }
        Value::Encoded(e) => {
            w.u8(9);
            enc_encoding(w, e.encoding());
            w.u64(e.logical_len());
            w.u64(e.encoded_logical_bytes());
            w.u32(e.actual_len() as u32);
            w.u32(e.chunks().len() as u32);
            for chunk in e.chunks() {
                w.bytes(chunk);
            }
        }
    }
}

fn enc_encoding(w: &mut ByteWriter, enc: &Encoding) {
    w.u8(match enc.codec {
        Codec::Gzip => 0,
        Codec::Zlib => 1,
        Codec::None => 2,
    });
    w.bool(enc.shuffle);
    w.u8(match enc.byte_order {
        ByteOrder::Little => 0,
        ByteOrder::Big => 1,
    });
    match enc.fill_value {
        None => w.bool(false),
        Some(f) => {
            w.bool(true);
            w.f64(f);
        }
    }
}

fn dec_encoding(r: &mut ByteReader<'_>) -> Result<Encoding, String> {
    let codec = match r.u8()? {
        0 => Codec::Gzip,
        1 => Codec::Zlib,
        2 => Codec::None,
        other => return Err(format!("unknown codec tag {other}")),
    };
    let shuffle = r.bool()?;
    let byte_order = match r.u8()? {
        0 => ByteOrder::Little,
        1 => ByteOrder::Big,
        other => return Err(format!("unknown byte-order tag {other}")),
    };
    let fill_value = if r.bool()? { Some(r.f64()?) } else { None };
    Ok(Encoding {
        codec,
        shuffle,
        byte_order,
        fill_value,
    })
}

fn dec_value(r: &mut ByteReader<'_>) -> Result<Value, String> {
    Ok(match r.u8()? {
        0 => Value::Num(r.f64()?),
        1 => Value::Bool(r.bool()?),
        2 => Value::Str(r.str()?),
        3 => {
            let logical = r.u64()?;
            let len = r.u32()? as usize;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(r.f64()?);
            }
            Value::Array(ArrayVal::with_logical(data, logical))
        }
        4 => {
            let logical = r.u64()?;
            let len = r.u32()? as usize;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(r.bool()?);
            }
            Value::BoolArray(BoolArrayVal::with_logical(data, logical))
        }
        5 => {
            let logical_rows = r.u64()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let name = r.str()?;
                let col = match r.u8()? {
                    0 => {
                        let len = r.u32()? as usize;
                        let mut data = Vec::with_capacity(len);
                        for _ in 0..len {
                            data.push(r.f64()?);
                        }
                        Column::F64(Arc::new(data))
                    }
                    1 => {
                        let len = r.u32()? as usize;
                        let mut data = Vec::with_capacity(len);
                        for _ in 0..len {
                            data.push(r.u64()? as i64);
                        }
                        Column::I64(Arc::new(data))
                    }
                    2 => {
                        let len = r.u32()? as usize;
                        let mut codes = Vec::with_capacity(len);
                        for _ in 0..len {
                            codes.push(r.u32()?);
                        }
                        let dlen = r.u32()? as usize;
                        let mut dict = Vec::with_capacity(dlen);
                        for _ in 0..dlen {
                            dict.push(r.str()?);
                        }
                        Column::Dict {
                            codes: Arc::new(codes),
                            dict: Arc::new(dict),
                        }
                    }
                    other => return Err(format!("unknown column tag {other}")),
                };
                columns.push((name, col));
            }
            Value::Table(Table::with_logical_rows(columns, logical_rows).map_err(err_str)?)
        }
        6 => {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            let logical_rows = r.u64()?;
            let logical_cols = r.u64()?;
            let n = rows.checked_mul(cols).ok_or("matrix dimensions overflow")?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.f64()?);
            }
            Value::Matrix(
                Matrix::with_logical(data, rows, cols, logical_rows, logical_cols)
                    .map_err(err_str)?,
            )
        }
        7 => {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            let logical_rows = r.u64()?;
            let logical_cols = r.u64()?;
            let logical_nnz = r.u64()?;
            let plen = r.u32()? as usize;
            let mut row_ptr = Vec::with_capacity(plen);
            for _ in 0..plen {
                row_ptr.push(r.u32()?);
            }
            let nnz = r.u32()? as usize;
            let mut col_idx = Vec::with_capacity(nnz);
            let mut values = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                col_idx.push(r.u32()?);
                values.push(r.f64()?);
            }
            Value::Csr(
                Csr::from_parts(
                    row_ptr,
                    col_idx,
                    values,
                    rows,
                    cols,
                    logical_rows,
                    logical_cols,
                    logical_nnz,
                )
                .map_err(err_str)?,
            )
        }
        8 => {
            let features = r.u32()?;
            let ntrees = r.u32()? as usize;
            let mut trees = Vec::with_capacity(ntrees);
            for _ in 0..ntrees {
                let nnodes = r.u32()? as usize;
                let mut nodes = Vec::with_capacity(nnodes);
                for _ in 0..nnodes {
                    nodes.push(TreeNode {
                        feature: r.u32()?,
                        threshold: r.f64()?,
                        left: r.u32()?,
                        right: r.u32()?,
                        value: r.f64()?,
                    });
                }
                trees.push(Tree::new(nodes).map_err(err_str)?);
            }
            Value::Forest(Forest::new(trees, features).map_err(err_str)?)
        }
        9 => {
            let encoding = dec_encoding(r)?;
            let logical_len = r.u64()?;
            let encoded_logical_bytes = r.u64()?;
            let actual_len = r.u32()? as usize;
            let nchunks = r.u32()? as usize;
            let mut chunks = Vec::with_capacity(nchunks);
            for _ in 0..nchunks {
                chunks.push(r.bytes()?);
            }
            Value::Encoded(EncodedVal::from_parts(
                encoding,
                chunks,
                actual_len,
                logical_len,
                encoded_logical_bytes,
            ))
        }
        other => return Err(format!("unknown value tag {other}")),
    })
}

fn enc_profile(w: &mut ByteWriter, p: &WorkloadProfile) {
    w.u64(p.version);
    let obs = p.observations();
    w.u32(obs.len() as u32);
    for o in obs {
        w.u64(o.count);
        for s in o.sums() {
            // u128 accumulators travel as (low, high) u64 halves.
            w.u64(s as u64);
            w.u64((s >> 64) as u64);
        }
        w.u32(o.calls());
    }
}

fn dec_profile(r: &mut ByteReader<'_>) -> Result<WorkloadProfile, String> {
    let version = r.u64()?;
    let nlines = r.u32()? as usize;
    let mut lines = Vec::with_capacity(nlines);
    for _ in 0..nlines {
        let count = r.u64()?;
        let mut sums = [0u128; 6];
        for s in &mut sums {
            let lo = r.u64()?;
            let hi = r.u64()?;
            *s = u128::from(lo) | (u128::from(hi) << 64);
        }
        let calls = r.u32()?;
        lines.push(LineObservation::from_parts(count, sums, calls));
    }
    Ok(WorkloadProfile::from_parts(version, lines))
}

fn err_str(e: impl std::fmt::Display) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_storage() -> Storage {
        let mut st = Storage::new();
        st.insert("num", Value::Num(3.5));
        st.insert("flag", Value::Bool(true));
        st.insert("label", Value::Str("warm".into()));
        st.insert(
            "arr",
            Value::Array(ArrayVal::with_logical(vec![1.0, -2.5, 3.25], 1_000_000)),
        );
        st.insert(
            "mask",
            Value::BoolArray(BoolArrayVal::with_logical(vec![true, false, true], 999)),
        );
        st.insert(
            "tab",
            Value::Table(
                Table::with_logical_rows(
                    vec![
                        ("price".into(), Column::F64(Arc::new(vec![1.5, 2.5]))),
                        ("qty".into(), Column::I64(Arc::new(vec![-3, 7]))),
                        (
                            "city".into(),
                            Column::Dict {
                                codes: Arc::new(vec![0, 1]),
                                dict: Arc::new(vec!["a".into(), "b".into()]),
                            },
                        ),
                    ],
                    5_000,
                )
                .expect("table"),
            ),
        );
        let m = Matrix::with_logical(vec![0.0, 1.0, 2.0, 0.0], 2, 2, 100, 100).expect("matrix");
        st.insert("csr", Value::Csr(m.to_csr()));
        st.insert("mat", Value::Matrix(m));
        let wire: Vec<f64> = (0..5000).map(|i| f64::from(i % 13)).collect();
        st.insert(
            "wire",
            Value::Encoded(EncodedVal::from_f64s(
                Encoding {
                    codec: Codec::Gzip,
                    shuffle: true,
                    byte_order: ByteOrder::Big,
                    fill_value: Some(-9999.0),
                },
                &wire,
                5_000_000,
            )),
        );
        st.insert(
            "model",
            Value::Forest(
                Forest::new(
                    vec![Tree::new(vec![
                        TreeNode::split(0, 0.5, 1, 2),
                        TreeNode::leaf(-1.0),
                        TreeNode::leaf(1.0),
                    ])
                    .expect("tree")],
                    3,
                )
                .expect("forest"),
            ),
        );
        st
    }

    fn sample_report() -> SamplingReport {
        let cost = LineCost {
            compute_ops: 100,
            storage_bytes: 800,
            bytes_in: 40,
            bytes_out: 10,
            copy_bytes: 20,
            eliminable_copy_bytes: 20,
            calls: 2,
        };
        let mut dataset_types = alang::copyelim::DatasetTypes::new();
        dataset_types.insert("arr".into(), StaticType::Array);
        dataset_types.insert("tab".into(), StaticType::Table);
        dataset_types.insert("wire".into(), StaticType::Encoded);
        SamplingReport {
            lines: vec![LineSamples {
                line: 0,
                points: vec![
                    SamplePoint {
                        scale: 2f64.powi(-10),
                        cost,
                    },
                    SamplePoint {
                        scale: 2f64.powi(-9),
                        cost,
                    },
                ],
            }],
            dataset_types,
            total_sampling_cost: cost,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("activepy_warm_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn warm_file_round_trips_every_value_kind() {
        let path = tmp("round_trip");
        let key: ProfileKey = ("workload".into(), 0xBEEF);
        let seed = WarmSeed {
            sampling: sample_report(),
            storage: sample_storage(),
        };
        let mut profile = WorkloadProfile::default();
        profile.record_run(&[sample_report().total_sampling_cost]);
        save_warm_file(
            &path,
            &[(key.clone(), seed.clone())],
            &[(key.clone(), profile.clone())],
        )
        .expect("save");
        let (seeds, profiles) = load_warm_file(&path).expect("load");
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].0, key);
        assert_eq!(seeds[0].1.sampling, seed.sampling);
        // Storage has no PartialEq; compare via per-name value equality.
        let loaded = &seeds[0].1.storage;
        let orig = &seed.storage;
        let names: Vec<&str> = orig.names().collect();
        assert_eq!(loaded.names().collect::<Vec<_>>(), names);
        for name in names {
            assert_eq!(
                loaded.get(name).expect("loaded"),
                orig.get(name).expect("orig"),
                "dataset `{name}`"
            );
        }
        assert_eq!(profiles, vec![(key, profile)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_warm_file_is_invalid_data_not_garbage() {
        let path = tmp("corrupt");
        save_warm_file(&path, &[], &[]).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a payload byte (or the checksum itself when empty).
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let err = load_warm_file(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation is detected too.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = load_warm_file(&path).expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
