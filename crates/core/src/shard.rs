//! Scatter-gather offload planning and execution across a CSD fleet.
//!
//! The paper plans for one device; this module extends the pipeline to a
//! [`Fleet`] of N independent CSDs holding hash- or range-sharded rows
//! ([`ShardMap`]). Planning reuses the single-device sampling and fitting
//! products wholesale: a [`ShardedPlan`] derives per-shard estimates by
//! *exact integer slicing* of the base plan's full-scale estimates, then
//! re-runs Algorithm 1 per shard against the shared-link bandwidth
//! `min(BW_link, BW_budget / N)` — the fleet-aware Eq. 1.
//!
//! Execution is scatter → gather → combine → tail:
//!
//! 1. **Scatter**: every shard executes the program's rowwise prefix
//!    (lines before the [`alang::shard::analyze`] fence) on its own
//!    device, charged only for its row slice via [`ShardSlice`]. Shards
//!    are independent failure domains: a GC burst or hard fault migrates
//!    *that shard* to the host while the rest keep running on-device.
//! 2. **Gather**: the carriers (sharded values live across the fence)
//!    stream to the host concurrently; [`Fleet::gather_secs`] charges the
//!    max of the per-link and aggregate-budget bottlenecks.
//! 3. **Combine**: shard slices are reduced on the host in **ascending
//!    shard index** — the same ordered-reduction discipline that keeps
//!    [`alang::par`] bit-identical — so fleet answers never depend on
//!    arrival order.
//! 4. **Tail**: the fence and everything after it run host-side over the
//!    combined carriers.
//!
//! Values are computed on the full data in every phase (the repo's
//! placement-affects-costs-only discipline), so `values_fingerprint` is
//! identical across every shard count by construction — the bench sweep
//! and the proptest differential both pin that invariant.

use crate::assign::{assign_refined, Assignment};
use crate::error::{ActivePyError, Result};
use crate::estimate::{shared_link_bandwidth, LineEstimate};
use crate::exec::{execute_with_shard, ExecOptions, MigrationReason, RunReport, ShardSlice};
use crate::monitor::{ShardDecision, ShardMonitors};
use crate::plan::OffloadPlan;
use crate::runtime::ActivePy;
use alang::shard::{analyze, ShardAnalysis, ShardMap};
use alang::{Program, Storage};
use csd_sim::contention::{ContentionScenario, Trigger};
use csd_sim::fault::{FaultCounters, FaultPlan};
use csd_sim::units::{Bandwidth, Duration, Ops, SimTime};
use csd_sim::{EngineKind, Fleet, System, SystemConfig};
use isp_obs::SpanKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Host-side combine cost: one operation per gathered 8-byte element.
/// The combine is a concatenation-or-merge pass over the carrier slices,
/// not a recompute — it is deliberately cheap, and charged sequentially
/// in ascending shard index.
const COMBINE_OPS_PER_BYTE: f64 = 0.125;

/// Availability-probe window spacing (seconds of device sim-time) used by
/// the per-shard monitor's recovery check.
const PROBE_WINDOW_SECS: f64 = 0.01;

/// A single-device [`OffloadPlan`] extended with a per-line × per-shard
/// placement: the sharded data model, the scatter/gather fence, per-shard
/// estimates sliced from the base plan (sampling is never redone per
/// shard), and per-shard Algorithm-1 assignments against the shared-link
/// bandwidth.
#[derive(Debug, Clone)]
pub struct ShardedPlan {
    /// The single-device plan everything derives from.
    pub base: Arc<OffloadPlan>,
    /// Row partition and the set of sharded storage names.
    pub map: ShardMap,
    /// Fence position, per-line shardedness, and gather carriers.
    pub analysis: ShardAnalysis,
    /// Per shard: the base estimates with extensive quantities sliced to
    /// the shard's rows (replicated lines keep their full cost).
    pub shard_estimates: Vec<Vec<LineEstimate>>,
    /// Per shard: Algorithm 1 re-run on the sliced estimates, restricted
    /// to the rowwise prefix (the tail always runs host-side).
    pub shard_assignments: Vec<Assignment>,
    /// The effective per-shard D2H bandwidth the assignments assumed:
    /// `min(link, budget / N)`.
    pub shard_bandwidth: Bandwidth,
    /// Per shard: the Eq. 1 terms its assignment consumed, with the
    /// shared-link bandwidth and fleet width baked in — the fleet side of
    /// the audit capture ([`crate::audit::capture_terms`]).
    pub shard_eq1: Vec<Vec<crate::audit::Eq1Term>>,
}

impl ShardedPlan {
    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.map.count()
    }

    /// Per-line placements for shard `s`: the shard's own assignment on
    /// the rowwise prefix, host for the fence and everything after it.
    #[must_use]
    pub fn shard_placements(&self, s: usize) -> Vec<EngineKind> {
        let len = self.base.program.len();
        let mut placements = self.shard_assignments[s].placements(len);
        for p in placements.iter_mut().skip(self.analysis.fence) {
            *p = EngineKind::Host;
        }
        placements
    }
}

/// Derives the fleet plan for `map` from a cached single-device plan:
/// fence analysis, per-shard estimate slicing, and per-shard assignment
/// against the fleet's shared-link bandwidth. No sampling, fitting, or
/// code generation is repeated — the base plan's products are reused.
#[must_use]
pub fn derive_sharded_plan(
    base: &Arc<OffloadPlan>,
    map: ShardMap,
    config: &SystemConfig,
    budget: Bandwidth,
) -> ShardedPlan {
    let analysis = analyze(&base.program, &map);
    let n = map.count();
    let bw = shared_link_bandwidth(config.d2h_bandwidth(), budget, n);
    let shard_estimates: Vec<Vec<LineEstimate>> = (0..n)
        .map(|s| {
            let fraction = map.fraction(s);
            base.estimates
                .iter()
                .map(|e| {
                    if analysis.line_sharded.get(e.line).copied().unwrap_or(false) {
                        LineEstimate {
                            line: e.line,
                            ct_host: e.ct_host * fraction,
                            ct_device: e.ct_device * fraction,
                            d_in: map.slice_u64(e.d_in, s),
                            d_out: map.slice_u64(e.d_out, s),
                            ops: map.slice_u64(e.ops, s),
                        }
                    } else {
                        *e
                    }
                })
                .collect()
        })
        .collect();
    let shard_assignments: Vec<Assignment> = shard_estimates
        .iter()
        .map(|est| {
            let mut a = assign_refined(&base.program, est, bw.as_bytes_per_sec());
            // The fence and everything after it run host-side over the
            // gathered carriers; only the rowwise prefix may offload.
            a.csd_lines.retain(|line| *line < analysis.fence);
            a
        })
        .collect();
    let shard_eq1 = shard_estimates
        .iter()
        .zip(&shard_assignments)
        .map(|(est, a)| crate::audit::capture_terms(est, a, bw.as_bytes_per_sec(), n))
        .collect();
    ShardedPlan {
        base: Arc::clone(base),
        map,
        analysis,
        shard_estimates,
        shard_assignments,
        shard_bandwidth: bw,
        shard_eq1,
    }
}

/// One shard's slice of the scatter phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRunReport {
    /// Shard index.
    pub shard: usize,
    /// What the fleet monitor decided before the shard ran.
    pub decision: ShardDecision,
    /// The shard's execution report (its own device clock).
    pub report: RunReport,
    /// Bytes this shard contributed to the gather phase.
    pub gather_bytes: u64,
}

/// The result of one scatter-gather fleet execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// End-to-end latency: lead-in + scatter + gather + combine + tail.
    pub total_secs: f64,
    /// The scatter phase: max over the shards' device clocks (devices run
    /// concurrently).
    pub scatter_secs: f64,
    /// The concurrent carrier gather, charged by [`Fleet::gather_secs`].
    pub gather_secs: f64,
    /// The ordered host-side combine (ascending shard index).
    pub combine_secs: f64,
    /// The host-side fence-and-after phase.
    pub tail_secs: f64,
    /// Index of the first host-side line (`program.len()` when the whole
    /// program was rowwise).
    pub fence: usize,
    /// Per-shard scatter reports, ascending shard index.
    pub shards: Vec<ShardRunReport>,
    /// The tail run's report (the host clock spanning gather → combine →
    /// tail).
    pub tail: RunReport,
    /// Total bytes gathered across all shards.
    pub gathered_bytes: u64,
    /// The one answer fingerprint — identical on every shard and the
    /// tail by construction, and equal to the unsharded run's.
    pub values_fingerprint: u64,
    /// Sum of every device's injected-fault counters after the run.
    pub injected: FaultCounters,
}

impl FleetReport {
    /// Shards that completed their scatter phase on-device (no migration
    /// and not pre-migrated by fleet pressure).
    #[must_use]
    pub fn shards_on_device(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.report.migration.is_none() && s.decision != ShardDecision::PreMigrate)
            .count()
    }

    /// Sum of the per-shard (and tail) transient-fault counts absorbed by
    /// the recovery layer — compared against `injected` by the chaos
    /// differential.
    #[must_use]
    pub fn recovered_transients(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.report.metrics.recovery.transient_faults)
            .sum::<u64>()
            + self.tail.metrics.recovery.transient_faults
    }
}

/// Everything a fleet execution needs that is independent of the shard
/// loop: the program, its full (unsliced) storage, the row partition, and
/// the code generator's elimination flags.
#[derive(Debug, Clone, Copy)]
pub struct FleetRun<'a> {
    /// The program to execute.
    pub program: &'a Program,
    /// The *full* input: every phase evaluates on it, so answers cannot
    /// depend on the partition.
    pub storage: &'a Storage,
    /// The row partition.
    pub map: &'a ShardMap,
    /// Per-line copy-elimination flags.
    pub copy_elim: &'a [bool],
    /// Simulated seconds that precede the scatter (pipeline overheads);
    /// charged once on the host clock.
    pub lead_in_secs: f64,
}

/// Samples a shard device's CSE availability over `windows` consecutive
/// probe instants (most recent last), folding in a time-triggered
/// contention scenario that would already be active. This is the signal
/// [`ShardMonitors::decision`] uses to spare a recovered shard from a
/// fleet-pressure pre-migration.
fn shard_probe(device: &System, scenario: &ContentionScenario, windows: u32) -> Vec<f64> {
    (0..windows)
        .map(|w| {
            let t = SimTime::from_secs(f64::from(w) * PROBE_WINDOW_SECS);
            let trace = device.engine(EngineKind::Cse).availability().fraction_at(t);
            let scen = match scenario.trigger() {
                Trigger::AtTime(at) if !scenario.is_none() && at <= t => scenario.fraction(),
                _ => 1.0,
            };
            trace.min(scen)
        })
        .collect()
}

/// Executes one scatter-gather fleet run.
///
/// `shard_placements[s]` are the per-line placements for shard `s` (the
/// fence and after are forced host regardless); `shard_estimates`, when
/// given, feed each shard's monitor. `shard_faults[s]` installs a
/// deterministic fault plan on device `s` only — missing entries inject
/// nothing.
///
/// # Errors
///
/// Propagates per-shard execution failures, rejects placement vectors of
/// the wrong shape, and fails if any phase's `values_fingerprint`
/// diverges (a broken invariant, never an input condition).
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded(
    run: &FleetRun<'_>,
    shard_placements: &[Vec<EngineKind>],
    shard_estimates: Option<&[Vec<LineEstimate>]>,
    fleet: &mut Fleet,
    config: &SystemConfig,
    opts: &ExecOptions,
    shard_faults: &[FaultPlan],
) -> Result<FleetReport> {
    let n = fleet.len();
    if run.map.count() != n || shard_placements.len() != n {
        return Err(ActivePyError::exec(format!(
            "fleet of {n} devices needs {n} shard placements and a matching map, got {} and {}",
            shard_placements.len(),
            run.map.count()
        )));
    }
    let analysis = analyze(run.program, run.map);
    let len = run.program.len();
    let fleet_span = opts.tracer.begin_with(
        "fleet.execute",
        SpanKind::Phase,
        Some(0.0),
        vec![
            ("shards".into(), n.into()),
            ("fence".into(), analysis.fence.into()),
        ],
    );

    // Scatter: ascending shard index. Earlier shards' degradation
    // migrations build fleet pressure; later shards are pre-migrated
    // under majority pressure unless their own availability probe clears
    // a full streak window (ShardMonitors — the narrow inverse of
    // migrate-to-host).
    let mut monitors = opts.monitor.map(|cfg| (ShardMonitors::new(cfg, n), cfg));
    let mut shards: Vec<ShardRunReport> = Vec::with_capacity(n);
    for s in 0..n {
        let decision = match &monitors {
            Some((sm, cfg)) => {
                let probe = shard_probe(fleet.device(s), &opts.scenario, cfg.decreasing_streak);
                sm.decision(s, &probe)
            }
            None => ShardDecision::Stay,
        };
        let mut placements = shard_placements[s].clone();
        if placements.len() != len {
            return Err(ActivePyError::exec(format!(
                "shard {s}: {} placements for {len} lines",
                placements.len()
            )));
        }
        for p in placements.iter_mut().skip(analysis.fence) {
            *p = EngineKind::Host;
        }
        if decision == ShardDecision::PreMigrate {
            placements.fill(EngineKind::Host);
        }
        let (lo, hi) = run.map.bounds_of(s);
        let slice = ShardSlice {
            index: s,
            count: n,
            lo,
            hi,
            rows: run.map.rows_total(),
            charge_start: 0,
            charge_end: analysis.fence,
            sharded: analysis.line_sharded.clone(),
        };
        let mut shard_opts = opts.clone();
        shard_opts.faults = shard_faults.get(s).cloned().unwrap_or_else(FaultPlan::none);
        // Shard s journals (and replays) on its own WAL lane, so fleet
        // record streams interleave in the file but verify independently.
        shard_opts.journal = opts.journal.lane(s as u32);
        let estimates = shard_estimates.map(|est| est[s].as_slice());
        let shard_span = opts.tracer.begin_with(
            "fleet.shard",
            SpanKind::Device,
            Some(0.0),
            vec![
                ("shard".into(), s.into()),
                ("decision".into(), format!("{decision:?}").into()),
            ],
        );
        let report = execute_with_shard(
            run.program,
            run.storage,
            &placements,
            fleet.device_mut(s),
            &shard_opts,
            estimates,
            run.copy_elim,
            Some(&slice),
        )?;
        opts.tracer.end(shard_span, Some(report.total_secs));
        if let Some((sm, _)) = monitors.as_mut() {
            let degraded = report
                .migration
                .map(|m| m.reason == MigrationReason::Degraded)
                .unwrap_or(false);
            sm.record(s, degraded);
        }
        let gather_bytes: u64 = analysis
            .carriers
            .iter()
            .filter_map(|c| run.program.def_site(c))
            .map(|def| report.lines[def].cost.bytes_out)
            .sum();
        shards.push(ShardRunReport {
            shard: s,
            decision,
            report,
            gather_bytes,
        });
    }
    let scatter_secs = shards
        .iter()
        .map(|s| s.report.total_secs)
        .fold(0.0f64, f64::max);

    // Gather: carriers stream from every shard concurrently, bounded by
    // per-device links and the shared host budget. A migrated shard's
    // slice may already sit host-side; the gather conservatively charges
    // it anyway (the budget term dominates at scale either way).
    let per_shard_bytes: Vec<u64> = shards.iter().map(|s| s.gather_bytes).collect();
    let gather_secs = fleet.gather_secs(&per_shard_bytes);
    let gathered_bytes: u64 = per_shard_bytes.iter().sum();
    opts.tracer.instant(
        "fleet.gather",
        SpanKind::Device,
        Some(scatter_secs),
        vec![
            ("bytes".into(), gathered_bytes.into()),
            ("secs".into(), gather_secs.into()),
        ],
    );

    // The host clock: lead-in, then the scatter barrier, then the gather,
    // then the ordered combine, then the tail lines.
    let mut host = config.build();
    host.advance(Duration::from_secs(
        run.lead_in_secs + scatter_secs + gather_secs,
    ));
    let combine_t0 = host.now().as_secs();
    for (s, bytes) in per_shard_bytes.iter().enumerate() {
        // Ascending shard index, unconditionally: the combine's ordering
        // rule is part of the answer-determinism contract, so even an
        // empty slice holds its place in the sequence.
        let ops = (*bytes as f64 * COMBINE_OPS_PER_BYTE) as u64;
        if ops > 0 {
            host.compute(EngineKind::Host, Ops::new(ops));
        }
        opts.tracer.instant(
            "fleet.combine",
            SpanKind::Device,
            Some(host.now().as_secs()),
            vec![
                ("shard".into(), s.into()),
                ("bytes".into(), (*bytes).into()),
            ],
        );
    }
    let combine_secs = host.now().as_secs() - combine_t0;

    // Tail: the fence and after, host-side, over the combined carriers.
    // The prefix is evaluated free (values only); charges start at the
    // fence.
    let tail_slice = ShardSlice {
        index: 0,
        count: 1,
        lo: 0,
        hi: run.map.rows_total(),
        rows: run.map.rows_total(),
        charge_start: analysis.fence,
        charge_end: len,
        sharded: analysis.line_sharded.clone(),
    };
    let mut tail_opts = opts.clone();
    tail_opts.faults = FaultPlan::none();
    // The host-side tail journals on lane n, after the shard lanes.
    tail_opts.journal = opts.journal.lane(n as u32);
    let tail_t0 = host.now().as_secs();
    let tail = execute_with_shard(
        run.program,
        run.storage,
        &vec![EngineKind::Host; len],
        &mut host,
        &tail_opts,
        None,
        run.copy_elim,
        Some(&tail_slice),
    )?;
    let tail_secs = tail.total_secs - tail_t0;

    // The invariant the whole module exists to uphold: every phase
    // computed the same answer.
    let fingerprint = tail.values_fingerprint;
    for s in &shards {
        if s.report.values_fingerprint != fingerprint {
            return Err(ActivePyError::exec(format!(
                "shard {} fingerprint {:#x} diverged from {:#x}",
                s.shard, s.report.values_fingerprint, fingerprint
            )));
        }
    }
    let total_secs = tail.total_secs;
    opts.tracer.end_with(
        fleet_span,
        Some(total_secs),
        vec![("gathered_bytes".into(), gathered_bytes.into())],
    );
    Ok(FleetReport {
        total_secs,
        scatter_secs,
        gather_secs,
        combine_secs,
        tail_secs,
        fence: analysis.fence,
        shards,
        tail,
        gathered_bytes,
        values_fingerprint: fingerprint,
        injected: fleet.fault_counters(),
    })
}

/// Executes `program` across a fresh default-budget fleet of `n` devices
/// with the same base `placements` on every shard — the proptest
/// differential's entry point (no planning pipeline involved).
///
/// # Errors
///
/// As [`execute_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded_raw(
    program: &Program,
    storage: &Storage,
    map: &ShardMap,
    placements: &[EngineKind],
    config: &SystemConfig,
    opts: &ExecOptions,
    shard_faults: &[FaultPlan],
    n: usize,
) -> Result<FleetReport> {
    let mut fleet = Fleet::new(config, n);
    let run = FleetRun {
        program,
        storage,
        map,
        copy_elim: &[],
        lead_in_secs: 0.0,
    };
    let shard_placements: Vec<Vec<EngineKind>> = (0..n).map(|_| placements.to_vec()).collect();
    execute_sharded(
        &run,
        &shard_placements,
        None,
        &mut fleet,
        config,
        opts,
        shard_faults,
    )
}

/// Executes a [`ShardedPlan`] under `runtime`'s execution options on a
/// fresh default-budget fleet: the fleet counterpart of
/// [`ActivePy::execute_plan`], charging the base plan's pipeline
/// overheads once on the host clock.
///
/// # Errors
///
/// As [`execute_sharded`].
pub fn execute_sharded_plan(
    runtime: &ActivePy,
    plan: &ShardedPlan,
    config: &SystemConfig,
    scenario: ContentionScenario,
    shard_faults: &[FaultPlan],
) -> Result<FleetReport> {
    let n = plan.count();
    let mut fleet = Fleet::new(config, n);
    let ropts = runtime.options();
    let opts = ExecOptions {
        tier: alang::ExecTier::CompiledCopyElim,
        params: ropts.params,
        scenario,
        monitor: ropts.monitor,
        offload_overheads: true,
        preempt_at: ropts.preempt_at,
        backend: ropts.backend,
        recovery: ropts.recovery,
        faults: FaultPlan::none(),
        parallel: ropts.parallel,
        tracer: ropts.tracer.clone(),
        // Shard runs never record profiles: their measured costs are
        // slice-scaled and would bias the unsharded profile.
        profile: crate::profile::ProfileRecorder::disabled(),
        journal: ropts.journal.clone(),
    };
    // Journal the fleet's plan identity — base plan fingerprint plus the
    // shard map's — so a resume against a re-planned fleet or a different
    // shard count fails at the first record.
    opts.journal.on_record(isp_obs::WalRecord::PlanCommit {
        lane: 0,
        plan_fp: crate::resume::plan_fingerprint(&plan.base),
        shard_fp: plan.map.fingerprint(),
    })?;
    let lead_in_secs = if ropts.charge_pipeline_overheads {
        plan.base.sampling_secs + plan.base.compile_secs
    } else {
        0.0
    };
    let run = FleetRun {
        program: &plan.base.program,
        storage: &plan.base.full_storage,
        map: &plan.map,
        copy_elim: &plan.base.copy_elim,
        lead_in_secs,
    };
    let shard_placements: Vec<Vec<EngineKind>> = (0..n).map(|s| plan.shard_placements(s)).collect();
    let mut report = execute_sharded(
        &run,
        &shard_placements,
        Some(&plan.shard_estimates),
        &mut fleet,
        config,
        &opts,
        shard_faults,
    )?;
    // Echo each shard's Eq. 1 terms so the audit layer can join fleet
    // reports without the plan in hand (observation-only: every simulated
    // quantity above is already final).
    for (s, sr) in report.shards.iter_mut().enumerate() {
        sr.report.eq1 = plan.shard_eq1[s].clone();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_all_host;
    use crate::plan::PlanCache;
    use crate::sampling::InputSource;
    use alang::parser::parse;
    use alang::shard::ShardStrategy;
    use alang::value::ArrayVal;
    use alang::{CostParams, ExecTier, Value};

    /// A filter-reduce workload over an 8 GB logical array, sharded on
    /// `v`.
    fn input() -> impl InputSource {
        |scale: f64| {
            let logical = (scale * 1e9).round().max(100.0) as u64;
            let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
            let data: Vec<f64> = (0..actual).map(|i| (i % 100) as f64).collect();
            let mut st = Storage::new();
            st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
            st
        }
    }

    const SRC: &str = "a = scan('v')\nm = a < 50\nb = select(a, m)\ns = sum(b)\n";

    fn sharded_plan(n: usize) -> (ShardedPlan, SystemConfig, ActivePy) {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::new();
        let cache = PlanCache::new();
        let base = cache
            .plan_for(&rt, "w", &program, &input(), &config)
            .expect("plan");
        let map = ShardMap::auto(&base.full_storage, n, ShardStrategy::Range);
        let budget = config
            .d2h_bandwidth()
            .scale(csd_sim::fleet::DEFAULT_BUDGET_LINKS);
        let plan = derive_sharded_plan(&base, map, &config, budget);
        (plan, config, rt)
    }

    #[test]
    fn fingerprint_is_identical_across_shard_counts_and_vs_unsharded() {
        let program = parse(SRC).expect("parse");
        let storage = input().storage_at(1.0);
        let config = SystemConfig::paper_default();
        let mut host_sys = config.build();
        let unsharded = execute_all_host(
            &program,
            &storage,
            &mut host_sys,
            ExecTier::Native,
            &CostParams::paper_default(),
            &[],
        )
        .expect("host baseline");
        let mut prints = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let (plan, config, rt) = sharded_plan(n);
            let report = execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &[])
                .expect("fleet run");
            prints.push((n, report.values_fingerprint));
            assert_eq!(report.shards.len(), n);
            assert_eq!(report.fence, 3, "sum is the fence in {SRC:?}");
        }
        for (n, p) in &prints {
            assert_eq!(
                *p, unsharded.values_fingerprint,
                "N={n} diverged from the unsharded answer"
            );
        }
    }

    #[test]
    fn sharding_the_prefix_scales_the_scatter_phase() {
        let (plan1, config1, rt1) = sharded_plan(1);
        let one = execute_sharded_plan(&rt1, &plan1, &config1, ContentionScenario::none(), &[])
            .expect("N=1");
        let (plan4, config4, rt4) = sharded_plan(4);
        let four = execute_sharded_plan(&rt4, &plan4, &config4, ContentionScenario::none(), &[])
            .expect("N=4");
        assert!(
            four.scatter_secs < one.scatter_secs / 2.0,
            "4 devices should at least halve the scatter: {} vs {}",
            four.scatter_secs,
            one.scatter_secs
        );
        assert!(
            four.total_secs < one.total_secs,
            "N=4 {} must beat N=1 {}",
            four.total_secs,
            one.total_secs
        );
    }

    #[test]
    fn one_faulted_shard_migrates_alone_with_the_correct_answer() {
        let (plan, config, rt) = sharded_plan(4);
        let healthy = execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &[])
            .expect("healthy");
        // Crash shard 2's CSE immediately; its scatter work falls back to
        // the host from the checkpoint while shards 0, 1, 3 stay on-device.
        let mut faults = vec![FaultPlan::none(); 4];
        faults[2] = FaultPlan::none().with_crash_at(SimTime::from_secs(0.0));
        let chaos = execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &faults)
            .expect("chaos");
        assert_eq!(chaos.values_fingerprint, healthy.values_fingerprint);
        assert!(
            chaos.shards[2].report.migration.is_some(),
            "the crashed shard must migrate: {:?}",
            chaos.shards[2].report.migration
        );
        for s in [0usize, 1, 3] {
            assert!(
                chaos.shards[s].report.migration.is_none(),
                "shard {s} must stay on-device"
            );
        }
        assert_eq!(chaos.injected.cse_crashes, 1);
        assert!(chaos.total_secs >= healthy.total_secs);
    }

    #[test]
    fn per_shard_fault_accounting_sums_to_the_injected_counters() {
        let (plan, config, rt) = sharded_plan(4);
        let faults: Vec<FaultPlan> = (0..4)
            .map(|s| {
                FaultPlan::none()
                    .with_seed(100 + s as u64)
                    .with_flash_read_error_prob(0.05)
            })
            .collect();
        let report = execute_sharded_plan(&rt, &plan, &config, ContentionScenario::none(), &faults)
            .expect("faulted fleet");
        assert_eq!(
            report.recovered_transients(),
            report.injected.transient_total(),
            "recovery accounting must match the injectors: {report:?}"
        );
    }

    #[test]
    fn derive_restricts_offload_to_the_rowwise_prefix() {
        let (plan, _, _) = sharded_plan(4);
        assert_eq!(plan.analysis.fence, 3);
        for s in 0..4 {
            let placements = plan.shard_placements(s);
            assert_eq!(placements[3], EngineKind::Host, "the fence line is host");
            assert!(
                plan.shard_assignments[s].csd_lines.iter().all(|l| *l < 3),
                "shard {s} offloads past the fence"
            );
        }
    }
}
