//! The single error taxonomy for the ActivePy runtime *and* the
//! baselines (which used to carry a near-duplicate enum; it is now a
//! re-export of this one).
//!
//! Device adversity is structured, not stringly-typed: transient faults
//! ([`ActivePyError::Transient`]) and permanent device loss
//! ([`ActivePyError::DeviceFault`]) are distinct variants, and
//! [`ActivePyError::is_retryable`] is what the recovery policy branches
//! on.

use alang::LangError;
use std::fmt;

/// Any failure raised by the ActivePy pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivePyError {
    /// The program itself failed to parse or execute.
    Lang(LangError),
    /// The sampling phase could not produce usable statistics.
    Sampling {
        /// Explanation.
        message: String,
    },
    /// Curve fitting failed (e.g. no sample points).
    Fit {
        /// Explanation.
        message: String,
    },
    /// The execution engine hit an inconsistency (e.g. assignment length
    /// mismatch).
    Exec {
        /// Explanation.
        message: String,
    },
    /// A transient device error (injected flash/NVMe/DMA failure): a
    /// retry can succeed. The only retryable kind.
    Transient {
        /// Explanation.
        message: String,
    },
    /// A permanent device fault (hard CSE crash, or transient-retry
    /// exhaustion escalated by policy): the device side of the run is
    /// over; recovery means host fallback.
    DeviceFault {
        /// Explanation.
        message: String,
    },
    /// An option or policy failed validation at construction.
    Config {
        /// Explanation.
        message: String,
    },
    /// An offload-assignment search failed (baselines).
    Search {
        /// Explanation.
        message: String,
    },
}

impl ActivePyError {
    /// Shorthand for an execution-engine error.
    #[must_use]
    pub fn exec(message: impl Into<String>) -> Self {
        ActivePyError::Exec {
            message: message.into(),
        }
    }

    /// Shorthand for a sampling error.
    #[must_use]
    pub fn sampling(message: impl Into<String>) -> Self {
        ActivePyError::Sampling {
            message: message.into(),
        }
    }

    /// Shorthand for a transient device error.
    #[must_use]
    pub fn transient(message: impl Into<String>) -> Self {
        ActivePyError::Transient {
            message: message.into(),
        }
    }

    /// Shorthand for a permanent device fault.
    #[must_use]
    pub fn device_fault(message: impl Into<String>) -> Self {
        ActivePyError::DeviceFault {
            message: message.into(),
        }
    }

    /// Shorthand for a configuration-validation error.
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        ActivePyError::Config {
            message: message.into(),
        }
    }

    /// Shorthand for an offload-search error.
    #[must_use]
    pub fn search(message: impl Into<String>) -> Self {
        ActivePyError::Search {
            message: message.into(),
        }
    }

    /// Whether retrying the failed operation can possibly succeed — the
    /// structured question the recovery policy asks instead of matching
    /// on message strings. Only transient device errors qualify.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ActivePyError::Transient { .. })
    }
}

impl fmt::Display for ActivePyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivePyError::Lang(e) => write!(f, "language error: {e}"),
            ActivePyError::Sampling { message } => write!(f, "sampling error: {message}"),
            ActivePyError::Fit { message } => write!(f, "fit error: {message}"),
            ActivePyError::Exec { message } => write!(f, "execution error: {message}"),
            ActivePyError::Transient { message } => {
                write!(f, "transient device error: {message}")
            }
            ActivePyError::DeviceFault { message } => write!(f, "device fault: {message}"),
            ActivePyError::Config { message } => write!(f, "invalid configuration: {message}"),
            ActivePyError::Search { message } => write!(f, "offload search error: {message}"),
        }
    }
}

impl std::error::Error for ActivePyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ActivePyError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LangError> for ActivePyError {
    fn from(e: LangError) -> Self {
        ActivePyError::Lang(e)
    }
}

impl From<csd_sim::fault::DeviceFault> for ActivePyError {
    fn from(f: csd_sim::fault::DeviceFault) -> Self {
        if f.is_transient() {
            ActivePyError::transient(f.to_string())
        } else {
            ActivePyError::device_fault(f.to_string())
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ActivePyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ActivePyError::sampling("no scales");
        assert!(format!("{e}").contains("sampling"));
        let e: ActivePyError = LangError::runtime("boom").into();
        assert!(format!("{e}").contains("boom"));
    }

    #[test]
    fn lang_errors_expose_source() {
        use std::error::Error;
        let e: ActivePyError = LangError::runtime("boom").into();
        assert!(e.source().is_some());
    }

    #[test]
    fn only_transient_errors_are_retryable() {
        assert!(ActivePyError::transient("flash hiccup").is_retryable());
        for e in [
            ActivePyError::device_fault("crash"),
            ActivePyError::exec("bad state"),
            ActivePyError::config("smoothing"),
            ActivePyError::search("no assignment"),
            ActivePyError::sampling("no scales"),
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }

    #[test]
    fn device_faults_convert_by_kind() {
        use csd_sim::fault::DeviceFault;
        use csd_sim::units::SimTime;
        let t = SimTime::from_secs(1.0);
        let e: ActivePyError = DeviceFault::FlashRead { at: t }.into();
        assert!(e.is_retryable());
        let e: ActivePyError = DeviceFault::CseCrash { at: t }.into();
        assert!(matches!(e, ActivePyError::DeviceFault { .. }));
        assert!(!e.is_retryable());
    }
}
