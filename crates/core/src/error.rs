//! Error types for the ActivePy runtime.

use alang::LangError;
use std::fmt;

/// Any failure raised by the ActivePy pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivePyError {
    /// The program itself failed to parse or execute.
    Lang(LangError),
    /// The sampling phase could not produce usable statistics.
    Sampling {
        /// Explanation.
        message: String,
    },
    /// Curve fitting failed (e.g. no sample points).
    Fit {
        /// Explanation.
        message: String,
    },
    /// The execution engine hit an inconsistency (e.g. assignment length
    /// mismatch).
    Exec {
        /// Explanation.
        message: String,
    },
}

impl ActivePyError {
    /// Shorthand for an execution-engine error.
    #[must_use]
    pub fn exec(message: impl Into<String>) -> Self {
        ActivePyError::Exec {
            message: message.into(),
        }
    }

    /// Shorthand for a sampling error.
    #[must_use]
    pub fn sampling(message: impl Into<String>) -> Self {
        ActivePyError::Sampling {
            message: message.into(),
        }
    }
}

impl fmt::Display for ActivePyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivePyError::Lang(e) => write!(f, "language error: {e}"),
            ActivePyError::Sampling { message } => write!(f, "sampling error: {message}"),
            ActivePyError::Fit { message } => write!(f, "fit error: {message}"),
            ActivePyError::Exec { message } => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for ActivePyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ActivePyError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LangError> for ActivePyError {
    fn from(e: LangError) -> Self {
        ActivePyError::Lang(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ActivePyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ActivePyError::sampling("no scales");
        assert!(format!("{e}").contains("sampling"));
        let e: ActivePyError = LangError::runtime("boom").into();
        assert!(format!("{e}").contains("boom"));
    }

    #[test]
    fn lang_errors_expose_source() {
        use std::error::Error;
        let e: ActivePyError = LangError::runtime("boom").into();
        assert!(e.source().is_some());
    }
}
