//! Retry/backoff/fallback policy for injected device faults.
//!
//! The recovery layer sits between the execution engine and the
//! simulator's fallible `try_*` operations: transient faults are retried
//! with bounded exponential backoff *charged to sim time*, and a hard
//! fault (or retry exhaustion) escalates to the caller, which performs a
//! checkpointed migration of the remaining work to the host (§III-D
//! applied to device adversity rather than IPC degradation).

use crate::error::{ActivePyError, Result};
use csd_sim::fault::DeviceFault;
use csd_sim::units::Duration;
use csd_sim::System;
use isp_obs::{SpanKind, Tracer};
use serde::{Deserialize, Serialize};

/// Stable short name of a fault variant, used as the `kind` attribute of
/// `fault.injected` trace instants (matches the `fault.*_errors` counter
/// family published from [`csd_sim::fault::FaultCounters`]).
pub(crate) fn fault_kind_str(fault: &DeviceFault) -> &'static str {
    match fault {
        DeviceFault::FlashRead { .. } => "flash_read",
        DeviceFault::NvmeCommand { .. } => "nvme_command",
        DeviceFault::DmaTransfer { .. } => "dma_transfer",
        DeviceFault::CseCrash { .. } => "cse_crash",
    }
}

/// How the runtime responds to injected device faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries allowed per operation before a transient fault is treated
    /// as hard.
    pub max_retries: u32,
    /// Backoff charged to sim time before the first retry, seconds.
    pub backoff_secs: f64,
    /// Multiplier applied to the backoff on each further retry (≥ 1).
    pub backoff_multiplier: f64,
    /// Whether a hard fault migrates the remaining CSD work to the host
    /// (graceful degradation). When `false`, hard faults are terminal
    /// errors.
    pub fallback_to_host: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_secs: 2e-4,
            backoff_multiplier: 2.0,
            fallback_to_host: true,
        }
    }
}

impl RecoveryPolicy {
    /// Exponent cap for the backoff growth, so a long retry chain cannot
    /// produce astronomically large sim-time charges.
    const MAX_BACKOFF_EXPONENT: u32 = 16;

    /// Builds a validated policy.
    ///
    /// # Errors
    ///
    /// Returns [`ActivePyError::Config`] under the same conditions as
    /// [`RecoveryPolicy::validate`].
    pub fn new(
        max_retries: u32,
        backoff_secs: f64,
        backoff_multiplier: f64,
        fallback_to_host: bool,
    ) -> Result<Self> {
        let policy = RecoveryPolicy {
            max_retries,
            backoff_secs,
            backoff_multiplier,
            fallback_to_host,
        };
        policy.validate()?;
        Ok(policy)
    }

    /// Checks the policy is usable: the base backoff must be finite and
    /// non-negative, the multiplier finite and at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`ActivePyError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.backoff_secs.is_finite() && self.backoff_secs >= 0.0) {
            return Err(ActivePyError::config(format!(
                "recovery backoff must be finite and non-negative, got {}",
                self.backoff_secs
            )));
        }
        if !(self.backoff_multiplier.is_finite() && self.backoff_multiplier >= 1.0) {
            return Err(ActivePyError::config(format!(
                "recovery backoff multiplier must be finite and at least 1, got {}",
                self.backoff_multiplier
            )));
        }
        Ok(())
    }

    /// Disables host fallback: hard faults become terminal errors.
    #[must_use]
    pub fn without_fallback(mut self) -> Self {
        self.fallback_to_host = false;
        self
    }

    /// The sim-time backoff before retry number `attempt` (1-based):
    /// `backoff_secs * multiplier^(attempt - 1)`, growth capped.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(Self::MAX_BACKOFF_EXPONENT);
        self.backoff_secs
            * self
                .backoff_multiplier
                .powi(i32::try_from(exp).expect("exp <= 16"))
    }
}

/// Counters a run's recovery layer accumulates; reported on
/// [`RunReport::recovery`](crate::exec::RunReport::recovery).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Transient faults absorbed (each injected transient fault counts
    /// exactly once, whether or not its retry succeeded).
    pub transient_faults: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered_ops: u64,
    /// Hard faults: crashes plus transient-retry exhaustions.
    pub hard_faults: u64,
    /// Migrations caused by device faults.
    pub fault_migrations: u64,
    /// Total sim-time seconds spent backing off between retries.
    pub backoff_secs: f64,
}

/// The per-run retry engine: owns the policy, the stats, and the trace
/// handle that records fault/recovery events as they surface.
pub(crate) struct Recovery {
    pub(crate) policy: RecoveryPolicy,
    pub(crate) stats: RecoveryStats,
    tracer: Tracer,
}

impl Recovery {
    #[cfg(test)]
    pub(crate) fn new(policy: RecoveryPolicy) -> Self {
        Self::with_tracer(policy, Tracer::disabled())
    }

    pub(crate) fn with_tracer(policy: RecoveryPolicy, tracer: Tracer) -> Self {
        Recovery {
            policy,
            stats: RecoveryStats::default(),
            tracer,
        }
    }

    /// Records an injected fault surfacing to the runtime as a trace
    /// instant on the simulated clock.
    fn trace_fault(&self, system: &System, fault: &DeviceFault) {
        self.tracer.instant(
            "fault.injected",
            SpanKind::Fault,
            Some(system.now().as_secs()),
            vec![
                ("kind".to_string(), fault_kind_str(fault).into()),
                ("transient".to_string(), fault.is_transient().into()),
            ],
        );
    }

    /// Runs `op`, retrying transient faults up to the policy's bound with
    /// backoff charged to sim time. A hard fault, or a transient fault
    /// that exhausts its retries, is returned to the caller (who decides
    /// between terminal error and fault migration).
    pub(crate) fn run_bounded<T>(
        &mut self,
        system: &mut System,
        mut op: impl FnMut(&mut System) -> std::result::Result<T, DeviceFault>,
    ) -> std::result::Result<T, DeviceFault> {
        let mut attempt = 0u32;
        loop {
            match op(system) {
                Ok(v) => {
                    if attempt > 0 {
                        self.stats.recovered_ops += 1;
                    }
                    return Ok(v);
                }
                Err(fault) => {
                    self.trace_fault(system, &fault);
                    if fault.is_transient() {
                        self.stats.transient_faults += 1;
                    }
                    // Branch on structured kind, not message strings.
                    let retryable = ActivePyError::from(fault).is_retryable();
                    if retryable && attempt < self.policy.max_retries {
                        attempt += 1;
                        self.stats.retries += 1;
                        self.back_off(system, attempt);
                    } else {
                        self.stats.hard_faults += 1;
                        return Err(fault);
                    }
                }
            }
        }
    }

    /// Runs a must-complete operation (host staging, migration-state
    /// drain, final-result transfer): transient faults are retried without
    /// bound. Termination is guaranteed because fault probabilities are
    /// capped strictly below 1 ([`FaultPlan::MAX_ERROR_PROB`]) and none of
    /// the must-complete operations has a permanent failure mode (DMA
    /// survives the CSE crash).
    ///
    /// [`FaultPlan::MAX_ERROR_PROB`]: csd_sim::fault::FaultPlan::MAX_ERROR_PROB
    pub(crate) fn run_to_completion<T>(
        &mut self,
        system: &mut System,
        mut op: impl FnMut(&mut System) -> std::result::Result<T, DeviceFault>,
    ) -> T {
        let mut attempt = 0u32;
        loop {
            match op(system) {
                Ok(v) => {
                    if attempt > 0 {
                        self.stats.recovered_ops += 1;
                    }
                    return v;
                }
                Err(fault) => {
                    self.trace_fault(system, &fault);
                    debug_assert!(
                        fault.is_transient(),
                        "must-complete operations only face transient faults, got {fault}"
                    );
                    self.stats.transient_faults += 1;
                    attempt += 1;
                    self.stats.retries += 1;
                    self.back_off(system, attempt);
                }
            }
        }
    }

    fn back_off(&mut self, system: &mut System, attempt: u32) {
        let backoff = self.policy.backoff_for(attempt);
        self.stats.backoff_secs += backoff;
        let span = self.tracer.begin_with(
            "recovery.backoff",
            SpanKind::Recovery,
            Some(system.now().as_secs()),
            vec![
                ("attempt".to_string(), attempt.into()),
                ("backoff_secs".to_string(), backoff.into()),
            ],
        );
        system.advance(Duration::from_secs(backoff));
        self.tracer.end(span, Some(system.now().as_secs()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_sim::fault::FaultPlan;
    use csd_sim::units::SimTime;

    #[test]
    fn default_policy_is_valid() {
        assert!(RecoveryPolicy::default().validate().is_ok());
        assert!(
            !RecoveryPolicy::default()
                .without_fallback()
                .fallback_to_host
        );
    }

    #[test]
    fn validation_rejects_bad_policies() {
        assert!(RecoveryPolicy::new(3, -1.0, 2.0, true).is_err());
        assert!(RecoveryPolicy::new(3, f64::NAN, 2.0, true).is_err());
        assert!(RecoveryPolicy::new(3, 1e-3, 0.5, true).is_err());
        assert!(RecoveryPolicy::new(3, 1e-3, f64::INFINITY, true).is_err());
        assert!(RecoveryPolicy::new(0, 0.0, 1.0, false).is_ok());
    }

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RecoveryPolicy {
            max_retries: 100,
            backoff_secs: 1.0,
            backoff_multiplier: 2.0,
            fallback_to_host: true,
        };
        assert!((p.backoff_for(1) - 1.0).abs() < 1e-12);
        assert!((p.backoff_for(2) - 2.0).abs() < 1e-12);
        assert!((p.backoff_for(4) - 8.0).abs() < 1e-12);
        // Growth caps at multiplier^16.
        assert!((p.backoff_for(40) - p.backoff_for(17)).abs() < 1e-9);
    }

    #[test]
    fn run_bounded_retries_transient_then_succeeds() {
        let mut system = System::paper_default();
        let mut recov = Recovery::new(RecoveryPolicy::default());
        let mut failures_left = 2;
        let before = system.now();
        let out = recov.run_bounded(&mut system, |s| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(DeviceFault::FlashRead { at: s.now() })
            } else {
                Ok(7)
            }
        });
        assert_eq!(out, Ok(7));
        assert_eq!(recov.stats.transient_faults, 2);
        assert_eq!(recov.stats.retries, 2);
        assert_eq!(recov.stats.recovered_ops, 1);
        assert_eq!(recov.stats.hard_faults, 0);
        // Backoff was charged to sim time: 2e-4 + 4e-4.
        let elapsed = system.now().duration_since(before).as_secs();
        assert!((elapsed - 6e-4).abs() < 1e-12, "elapsed {elapsed}");
        assert!((recov.stats.backoff_secs - 6e-4).abs() < 1e-12);
    }

    #[test]
    fn run_bounded_exhausts_retries_into_a_hard_fault() {
        let mut system = System::paper_default();
        let mut recov = Recovery::new(RecoveryPolicy::default());
        let out: std::result::Result<(), _> = recov.run_bounded(&mut system, |s| {
            Err(DeviceFault::NvmeCommand { at: s.now() })
        });
        assert!(out.is_err());
        // max_retries=3: initial attempt + 3 retries = 4 transient faults.
        assert_eq!(recov.stats.transient_faults, 4);
        assert_eq!(recov.stats.retries, 3);
        assert_eq!(recov.stats.hard_faults, 1);
        assert_eq!(recov.stats.recovered_ops, 0);
    }

    #[test]
    fn run_bounded_passes_crashes_through_without_retry() {
        let mut system = System::paper_default();
        let mut recov = Recovery::new(RecoveryPolicy::default());
        let out: std::result::Result<(), _> =
            recov.run_bounded(&mut system, |s| Err(DeviceFault::CseCrash { at: s.now() }));
        assert_eq!(out, Err(DeviceFault::CseCrash { at: SimTime::ZERO }));
        assert_eq!(recov.stats.retries, 0);
        assert_eq!(recov.stats.transient_faults, 0);
        assert_eq!(recov.stats.hard_faults, 1);
    }

    #[test]
    fn run_to_completion_outlasts_any_bounded_retry_budget() {
        let mut system = System::paper_default();
        let mut recov = Recovery::new(RecoveryPolicy::default());
        let mut failures_left = 25; // far beyond max_retries
        let out = recov.run_to_completion(&mut system, |s| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(DeviceFault::DmaTransfer { at: s.now() })
            } else {
                Ok("done")
            }
        });
        assert_eq!(out, "done");
        assert_eq!(recov.stats.transient_faults, 25);
        assert_eq!(recov.stats.hard_faults, 0);
        assert_eq!(recov.stats.recovered_ops, 1);
    }

    #[test]
    fn run_to_completion_terminates_against_real_injection() {
        let mut system = System::paper_default();
        system.install_faults(
            FaultPlan::none()
                .with_seed(5)
                .with_dma_error_prob(FaultPlan::MAX_ERROR_PROB),
        );
        let mut recov = Recovery::new(RecoveryPolicy::default());
        for _ in 0..20 {
            recov.run_to_completion(&mut system, |s| {
                s.try_transfer(
                    csd_sim::Direction::DeviceToHost,
                    csd_sim::units::Bytes::from_mib(1),
                )
            });
        }
        assert!(recov.stats.transient_faults > 0, "p=0.9 over 20 transfers");
    }
}
