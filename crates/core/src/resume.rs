//! Crash-consistent resume: the execution journal handle and its
//! replay-verification state machine.
//!
//! [`ExecJournal`] is the runtime-side handle over the binary WAL in
//! [`isp_obs::wal`]. It follows the same zero-cost pattern as the tracer
//! and profile recorder: a disabled handle is `None` behind one branch,
//! so unjournaled runs take no locks and allocate nothing.
//!
//! ## Recovery model
//!
//! Resume is **replay with detection**, not state restoration. The
//! simulator is deterministic, so re-running the plan from the start
//! reproduces the original execution exactly — clock, fault stream,
//! retries, migrations and all. What the journal adds is *evidence*: at
//! every boundary the original run recorded (plan commit, host line,
//! region chunk, migration, reclaim), the resumed run re-derives the
//! same record and verifies it against the log byte-for-byte. Any
//! divergence — a different plan, a drifted fault stream, a changed
//! binary — fails loudly instead of silently producing a different
//! answer, which is the property the paper's migration machinery needs
//! from its checkpoint story. Once a lane's journal queue is exhausted,
//! the handle flips from verify mode to append mode and the run extends
//! the same file, so a resumed journal ends exactly as an uninterrupted
//! one would.
//!
//! Lanes keep fleets honest: shard `s` of a sharded run verifies and
//! appends on lane `s` and the host tail on lane `n`, so per-shard
//! record streams interleave in the file but replay independently.

use crate::error::ActivePyError;
use crate::exec::MigrationReason;
use crate::plan::OffloadPlan;
use alang::ExecBackend;
use isp_obs::wal::{fnv1a, read_wal, WalRecord, WalWriter};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// What a journal open-for-resume found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeInfo {
    /// Valid records recovered from the journal prefix.
    pub records: usize,
    /// Whether a torn or corrupt tail was truncated to get there (the
    /// signature of a mid-append crash).
    pub torn_tail: bool,
}

/// Live counters for a journal handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Records verified against the recovered log so far.
    pub replayed: u64,
    /// Records appended (new ground covered past the crash point).
    pub appended: u64,
    /// Recovered records not yet re-derived by the resumed run.
    pub pending: u64,
}

#[derive(Debug)]
struct JournalState {
    writer: WalWriter,
    /// Per-lane queues of recovered records awaiting verification.
    /// A lane absent from the map is in append mode.
    replay: HashMap<u32, VecDeque<WalRecord>>,
    replayed: u64,
    appended: u64,
}

#[derive(Debug)]
struct JournalInner {
    state: Mutex<JournalState>,
}

/// Handle to a crash-consistent execution journal. Cheap to clone;
/// clones share the underlying writer and replay queues. [`Default`] and
/// [`ExecJournal::disabled`] produce the zero-cost off state.
#[derive(Debug, Clone, Default)]
pub struct ExecJournal {
    inner: Option<Arc<JournalInner>>,
    lane: u32,
}

impl PartialEq for ExecJournal {
    /// Identity comparison (same underlying journal, same lane), mirroring
    /// the tracer/profile-recorder convention so option structs stay
    /// comparable.
    fn eq(&self, other: &Self) -> bool {
        self.lane == other.lane
            && match (&self.inner, &other.inner) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl ExecJournal {
    /// The disabled handle: no file, no locks, every call a no-op.
    #[must_use]
    pub fn disabled() -> ExecJournal {
        ExecJournal::default()
    }

    /// Starts a fresh journal at `path` (truncating any existing file).
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    pub fn record_to(path: &Path) -> io::Result<ExecJournal> {
        let writer = WalWriter::create(path)?;
        Ok(ExecJournal::from_state(writer, HashMap::new()))
    }

    /// Opens an existing journal for resume: the valid record prefix is
    /// loaded into per-lane replay queues (truncating any torn tail per
    /// the WAL recovery rule) and the returned handle verifies the
    /// resumed run against it before switching to append mode.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; torn or corrupt journal content never
    /// errors (it is truncated away).
    pub fn resume_from(path: &Path) -> io::Result<(ExecJournal, ResumeInfo)> {
        let outcome = read_wal(path)?;
        let info = ResumeInfo {
            records: outcome.records.len(),
            torn_tail: outcome.torn,
        };
        let writer = WalWriter::append_to(path, &outcome)?;
        let mut replay: HashMap<u32, VecDeque<WalRecord>> = HashMap::new();
        for rec in outcome.records {
            replay.entry(rec.lane()).or_default().push_back(rec);
        }
        Ok((ExecJournal::from_state(writer, replay), info))
    }

    fn from_state(writer: WalWriter, replay: HashMap<u32, VecDeque<WalRecord>>) -> ExecJournal {
        ExecJournal {
            inner: Some(Arc::new(JournalInner {
                state: Mutex::new(JournalState {
                    writer,
                    replay,
                    replayed: 0,
                    appended: 0,
                }),
            })),
            lane: 0,
        }
    }

    /// A handle over the same journal stamped onto `lane`. Sharded runs
    /// hand lane `s` to shard `s` and lane `n` to the host tail.
    #[must_use]
    pub fn lane(&self, lane: u32) -> ExecJournal {
        ExecJournal {
            inner: self.inner.clone(),
            lane,
        }
    }

    /// Whether this handle is backed by a journal file.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Live replay/append counters, or `None` when disabled.
    #[must_use]
    pub fn stats(&self) -> Option<JournalStats> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        Some(JournalStats {
            replayed: st.replayed,
            appended: st.appended,
            pending: st.replay.values().map(|q| q.len() as u64).sum(),
        })
    }

    /// Feeds one boundary record through the journal: in replay mode the
    /// record must equal the next recovered record on this handle's lane
    /// (divergence is an error — the resumed run is not reproducing the
    /// original); once the lane's queue is exhausted the record is
    /// appended to the file instead.
    ///
    /// Emission sites build records with lane 0; the handle stamps its
    /// own lane here.
    ///
    /// # Errors
    ///
    /// Journal divergence during replay, or an append I/O failure.
    pub fn on_record(&self, rec: WalRecord) -> Result<(), ActivePyError> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let rec = rec.with_lane(self.lane);
        let mut st = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(queue) = st.replay.get_mut(&self.lane) {
            if let Some(expected) = queue.pop_front() {
                if expected != rec {
                    return Err(ActivePyError::exec(format!(
                        "journal divergence on lane {}: resumed run produced {} {rec:?} \
                         where the journal recorded {} {expected:?}",
                        self.lane,
                        rec.kind(),
                        expected.kind(),
                    )));
                }
                st.replayed += 1;
                return Ok(());
            }
            // Queue drained: this lane has caught up with the crash
            // point; flip to append mode.
            st.replay.remove(&self.lane);
        }
        st.writer
            .append(&rec)
            .map_err(|e| ActivePyError::exec(format!("journal append failed: {e}")))?;
        st.appended += 1;
        Ok(())
    }
}

/// Stable discriminant for a [`MigrationReason`] in WAL records.
#[must_use]
pub fn reason_code(reason: MigrationReason) -> u8 {
    match reason {
        MigrationReason::Degraded => 0,
        MigrationReason::Preempted => 1,
        MigrationReason::DeviceFault => 2,
        MigrationReason::Reclaim => 3,
    }
}

/// Stable discriminant for an [`ExecBackend`] in WAL records.
#[must_use]
pub fn backend_code(backend: ExecBackend) -> u8 {
    match backend {
        ExecBackend::Vm => 0,
        ExecBackend::AstWalk => 1,
    }
}

/// Fingerprint of an [`OffloadPlan`]'s deterministic planning outcome:
/// FNV-1a over the debug rendering of the fitted predictions,
/// calibration, copy-elimination flags, estimates, and Algorithm-1
/// assignment. Two plans agree iff planning reached the same decisions,
/// which is exactly the precondition for a journal replay to be
/// meaningful. Wall-clock timings are deliberately excluded.
#[must_use]
pub fn plan_fingerprint(plan: &OffloadPlan) -> u64 {
    let repr = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        plan.predictions,
        plan.calibration,
        plan.copy_elim,
        plan.estimates,
        plan.assignment,
        plan.sampling.dataset_types,
    );
    fnv1a(repr.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isp_obs::wal::StateSnap;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("activepy_resume_{}_{name}.wal", std::process::id()))
    }

    fn host_line(line: u32, retries: u64) -> WalRecord {
        WalRecord::HostLine {
            lane: 0,
            line,
            snap: StateSnap {
                retries,
                ..StateSnap::default()
            },
        }
    }

    #[test]
    fn disabled_journal_is_a_no_op() {
        let j = ExecJournal::disabled();
        assert!(!j.is_enabled());
        assert_eq!(j.stats(), None);
        j.on_record(host_line(0, 0)).expect("no-op");
        assert_eq!(j, j.lane(0));
        assert_ne!(j, j.lane(1));
    }

    #[test]
    fn record_then_resume_verifies_and_extends() {
        let path = tmp("verify_extend");
        let j = ExecJournal::record_to(&path).expect("create");
        j.on_record(host_line(0, 1)).expect("append");
        j.on_record(host_line(1, 2)).expect("append");
        drop(j);

        let (j, info) = ExecJournal::resume_from(&path).expect("resume");
        assert_eq!(
            info,
            ResumeInfo {
                records: 2,
                torn_tail: false
            }
        );
        assert_eq!(j.stats().expect("stats").pending, 2);
        // Replay must re-derive the same records in order...
        j.on_record(host_line(0, 1)).expect("replay 0");
        // ...then flip to append mode.
        j.on_record(host_line(1, 2)).expect("replay 1");
        j.on_record(host_line(2, 3))
            .expect("append past crash point");
        let stats = j.stats().expect("stats");
        assert_eq!((stats.replayed, stats.appended, stats.pending), (2, 1, 0));
        drop(j);

        let reread = read_wal(&path).expect("reread");
        assert_eq!(reread.records.len(), 3);
        assert!(!reread.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn divergent_replay_is_detected() {
        let path = tmp("divergence");
        let j = ExecJournal::record_to(&path).expect("create");
        j.on_record(host_line(0, 1)).expect("append");
        drop(j);

        let (j, _) = ExecJournal::resume_from(&path).expect("resume");
        let err = j.on_record(host_line(0, 99)).expect_err("must diverge");
        assert!(
            err.to_string().contains("journal divergence"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lanes_replay_independently() {
        let path = tmp("lanes");
        let j = ExecJournal::record_to(&path).expect("create");
        j.lane(0).on_record(host_line(0, 1)).expect("lane 0");
        j.lane(1).on_record(host_line(0, 2)).expect("lane 1");
        j.lane(0).on_record(host_line(1, 3)).expect("lane 0");
        drop(j);

        let (j, info) = ExecJournal::resume_from(&path).expect("resume");
        assert_eq!(info.records, 3);
        // Lane 1 can verify before lane 0 finishes; order within a lane
        // is what matters.
        j.lane(1).on_record(host_line(0, 2)).expect("lane 1 replay");
        j.lane(0).on_record(host_line(0, 1)).expect("lane 0 replay");
        j.lane(0).on_record(host_line(1, 3)).expect("lane 0 replay");
        j.lane(1).on_record(host_line(1, 4)).expect("lane 1 append");
        let stats = j.stats().expect("stats");
        assert_eq!((stats.replayed, stats.appended, stats.pending), (3, 1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reason_and_backend_codes_are_stable() {
        for (reason, code) in [
            (MigrationReason::Degraded, 0),
            (MigrationReason::Preempted, 1),
            (MigrationReason::DeviceFault, 2),
            (MigrationReason::Reclaim, 3),
        ] {
            assert_eq!(reason_code(reason), code);
        }
        assert_eq!(backend_code(ExecBackend::Vm), 0);
        assert_eq!(backend_code(ExecBackend::AstWalk), 1);
    }
}
