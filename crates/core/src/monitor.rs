//! Runtime monitoring of CSD code (§III-D).
//!
//! ActivePy patches status-update code at the end of every line of CSD
//! code; the host watches the reported throughput and re-estimates the
//! remaining work when either (1) the instruction throughput is
//! *decreasing*, or (2) it sits significantly below the estimated
//! throughput. The [`Monitor`] implements exactly those two triggers over
//! the simulator's performance counters.

use crate::error::{ActivePyError, Result};
use csd_sim::counters::PerfCounters;
use serde::{Deserialize, Serialize};

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Measured/expected throughput ratio below which the monitor flags
    /// degradation (condition 2).
    pub degradation_threshold: f64,
    /// Number of consecutive throughput decreases that flags degradation
    /// (condition 1).
    pub decreasing_streak: u32,
    /// Exponential-moving-average factor applied to throughput windows.
    /// Smoothing keeps transient dips (a single garbage-collection window)
    /// from reading as a permanent availability collapse.
    pub smoothing: f64,
}

impl MonitorConfig {
    /// Builds a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`ActivePyError::Config`] under the same conditions as
    /// [`MonitorConfig::validate`].
    pub fn new(degradation_threshold: f64, decreasing_streak: u32, smoothing: f64) -> Result<Self> {
        let config = MonitorConfig {
            degradation_threshold,
            decreasing_streak,
            smoothing,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the config is usable: the threshold must be a positive
    /// finite ratio, the streak at least 1, and the smoothing factor in
    /// `(0, 1]`. Invalid values are rejected here instead of being
    /// silently clamped at observation time.
    ///
    /// # Errors
    ///
    /// Returns [`ActivePyError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.degradation_threshold.is_finite() && self.degradation_threshold > 0.0) {
            return Err(ActivePyError::config(format!(
                "monitor degradation threshold must be positive and finite, got {}",
                self.degradation_threshold
            )));
        }
        if self.decreasing_streak == 0 {
            return Err(ActivePyError::config(
                "monitor decreasing streak must be at least 1",
            ));
        }
        if !(self.smoothing.is_finite() && self.smoothing > 0.0 && self.smoothing <= 1.0) {
            return Err(ActivePyError::config(format!(
                "monitor smoothing must be in (0, 1], got {}",
                self.smoothing
            )));
        }
        Ok(())
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            degradation_threshold: 0.85,
            decreasing_streak: 3,
            smoothing: 0.35,
        }
    }
}

/// What the monitor concluded after a status update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Observation {
    /// Not enough data yet.
    Warmup,
    /// Throughput within expectations.
    Healthy,
    /// Throughput degraded; the runtime should re-estimate the remaining
    /// CSD work and consider migration.
    Degraded {
        /// Measured throughput as a fraction of the expected throughput.
        ratio: f64,
    },
}

/// Tracks CSE throughput across status updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Monitor {
    config: MonitorConfig,
    expected_rate: f64,
    baseline: PerfCounters,
    last_rate: Option<f64>,
    last_raw: Option<f64>,
    decreases: u32,
}

impl Monitor {
    /// Creates a monitor expecting `expected_rate` operations per second
    /// (the engine's nominal throughput as estimated at assignment time),
    /// with `baseline` being the engine counters at region entry.
    #[must_use]
    pub fn new(config: MonitorConfig, expected_rate: f64, baseline: PerfCounters) -> Self {
        debug_assert!(
            config.validate().is_ok(),
            "monitor config must be validated before reaching the monitor"
        );
        Monitor {
            config,
            expected_rate,
            baseline,
            last_rate: None,
            last_raw: None,
            decreases: 0,
        }
    }

    /// The throughput the monitor expects.
    #[must_use]
    pub fn expected_rate(&self) -> f64 {
        self.expected_rate
    }

    /// Feeds the engine's current counters (one status update) and returns
    /// the monitor's conclusion.
    ///
    /// Each observation is *windowed*: the throughput is measured over the
    /// delta since the previous status update, matching the per-line
    /// "current execution rate" the CSD reports (§III-C0b). A cumulative
    /// average would dilute a sudden availability drop behind the history
    /// of healthy lines.
    pub fn observe(&mut self, current: &PerfCounters) -> Observation {
        let delta = current.delta_since(&self.baseline);
        self.baseline = *current;
        let Some(rate) = delta.achieved_rate() else {
            return Observation::Warmup;
        };
        self.observe_rate(rate)
    }

    /// Feeds one directly-measured throughput window: `ops` retired over
    /// `wall_secs` of wall-clock time *including data stalls*. This is the
    /// paper's actual signal — the expected figure is "the total amount of
    /// estimated instructions divided by estimated execution time on CSD"
    /// (§III-D), so a GC-starved data path registers as degraded IPC even
    /// while the cores' pure-compute rate is nominal.
    pub fn observe_window(&mut self, ops: f64, wall_secs: f64) -> Observation {
        if wall_secs <= 0.0 || ops <= 0.0 {
            return Observation::Warmup;
        }
        self.observe_rate(ops / wall_secs)
    }

    fn observe_rate(&mut self, raw: f64) -> Observation {
        let decreasing = match self.last_raw {
            Some(prev) if raw < prev * 0.999 => {
                self.decreases += 1;
                self.decreases >= self.config.decreasing_streak
            }
            Some(_) => {
                self.decreases = 0;
                false
            }
            None => false,
        };
        self.last_raw = Some(raw);
        // Validated at construction (MonitorConfig::validate): no silent
        // clamp here.
        let alpha = self.config.smoothing;
        let smoothed = match self.last_rate {
            Some(prev) => alpha * raw + (1.0 - alpha) * prev,
            None => raw,
        };
        self.last_rate = Some(smoothed);
        let ratio = smoothed / self.expected_rate;
        if ratio < self.config.degradation_threshold || decreasing {
            Observation::Degraded { ratio }
        } else {
            Observation::Healthy
        }
    }

    /// Tells the monitor that a migration consumed its accumulated
    /// evidence — for *every* [`crate::exec::MigrationReason`], not just
    /// degradations: the decrease streak (and the raw-rate reference it
    /// compares against) belongs to the pre-migration placement, so both
    /// reset. Without this, a stale streak carried across a preemption,
    /// fault fallback, or reclaim could instantly re-trigger on the next
    /// region's first slow window.
    pub fn acknowledge_migration(&mut self) {
        self.decreases = 0;
        self.last_raw = None;
    }

    /// The smoothed measured throughput (ops/sec of wall time).
    #[must_use]
    pub fn measured_rate(&self) -> Option<f64> {
        self.last_rate
    }

    /// A compact deterministic snapshot of the monitor's accumulated
    /// evidence — the raw-rate reference and the decrease streak — for
    /// the execution WAL. `(last_raw.to_bits(), decreases)`; the raw
    /// reference defaults to a zero bit-pattern before the first window.
    #[must_use]
    pub fn wal_snapshot(&self) -> (u64, u32) {
        (self.last_raw.unwrap_or(0.0).to_bits(), self.decreases)
    }

    /// Re-estimates the wall-clock seconds the remaining `est_device_secs`
    /// of nominal device work will really take, given the measured
    /// throughput ("ActivePy will use the measured IPC to re-estimate the
    /// time required for the remaining tasks on CSD").
    #[must_use]
    pub fn reestimate_remaining(&self, est_device_secs: f64) -> f64 {
        match self.last_rate {
            Some(rate) if rate > 0.0 => est_device_secs * (self.expected_rate / rate),
            _ => est_device_secs,
        }
    }
}

/// What [`ShardMonitors`] decides for a shard that has not yet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardDecision {
    /// No fleet-wide pressure (or the shard already ran): execute on-device
    /// as planned and let the shard's own [`Monitor`] drive any migration.
    Stay,
    /// A majority of earlier shards migrated off-device; pre-migrate this
    /// shard to the host rather than paying the degradation again.
    PreMigrate,
    /// Fleet pressure would have pre-migrated the shard, but its own
    /// availability probe shows a full healthy window — it is spared and
    /// stays on-device. This is the narrow inverse of migrate-to-host: a
    /// recovered shard is not dragged down by the global decision.
    Spared,
}

/// Per-shard monitor state for a fleet run.
///
/// The base [`Monitor`] can only ever conclude "migrate to host". When
/// shards execute across independent devices, that global conclusion is
/// too blunt: one device's GC burst says nothing about its siblings. This
/// tracker keeps one outcome slot per shard and computes *fleet pressure*
/// (the fraction of completed shards that ended in a degradation
/// migration). A shard about to run is pre-migrated only when pressure
/// reaches a majority **and** its own availability probe fails; a probe
/// showing `decreasing_streak` consecutive healthy windows spares it.
#[derive(Debug, Clone)]
pub struct ShardMonitors {
    config: MonitorConfig,
    /// `Some(true)` = shard completed and was migrated for degradation;
    /// `Some(false)` = shard completed on-device (or migrated for a
    /// non-degradation reason, which says nothing about availability).
    outcomes: Vec<Option<bool>>,
}

impl ShardMonitors {
    /// One slot per shard; `config` supplies the probe window length
    /// (`decreasing_streak`) and the health bar (`degradation_threshold`).
    #[must_use]
    pub fn new(config: MonitorConfig, shards: usize) -> Self {
        ShardMonitors {
            config,
            outcomes: vec![None; shards],
        }
    }

    /// Records a completed shard. `migrated_degraded` is true only when the
    /// shard's own monitor triggered a degradation migration.
    pub fn record(&mut self, shard: usize, migrated_degraded: bool) {
        if let Some(slot) = self.outcomes.get_mut(shard) {
            *slot = Some(migrated_degraded);
        }
    }

    /// The fraction of completed shards that ended in a degradation
    /// migration (0.0 when nothing has completed yet).
    #[must_use]
    pub fn pressure(&self) -> f64 {
        let done = self.outcomes.iter().filter(|o| o.is_some()).count();
        if done == 0 {
            return 0.0;
        }
        let migrated = self.outcomes.iter().filter(|o| **o == Some(true)).count();
        migrated as f64 / done as f64
    }

    /// Decides the placement override for `shard` before it runs. `probe`
    /// yields the shard's device availability sampled over consecutive
    /// windows (most recent last), as a fraction of nominal throughput —
    /// the same ratio scale the [`Monitor`] compares against
    /// `degradation_threshold`.
    #[must_use]
    pub fn decision(&self, shard: usize, probe: &[f64]) -> ShardDecision {
        if self.outcomes.get(shard).copied().flatten().is_some() {
            return ShardDecision::Stay;
        }
        if self.pressure() <= 0.5 {
            return ShardDecision::Stay;
        }
        // Majority pressure: pre-migrate unless the probe covers a full
        // streak window and every window clears the degradation bar.
        let window = self.config.decreasing_streak as usize;
        let recovered = probe.len() >= window
            && probe[probe.len() - window..]
                .iter()
                .all(|r| *r >= self.config.degradation_threshold);
        if recovered {
            ShardDecision::Spared
        } else {
            ShardDecision::PreMigrate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd_sim::units::{Duration, Ops};

    fn counters(ops: u64, secs: f64) -> PerfCounters {
        let mut c = PerfCounters::new();
        c.record(Ops::new(ops), Duration::from_secs(secs));
        c
    }

    #[test]
    fn healthy_at_expected_rate() {
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        assert_eq!(
            m.observe(&counters(1_000_000_000, 1.0)),
            Observation::Healthy
        );
        assert_eq!(m.measured_rate(), Some(1e9));
    }

    #[test]
    fn warmup_before_any_work() {
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        assert_eq!(m.observe(&PerfCounters::new()), Observation::Warmup);
    }

    #[test]
    fn degraded_below_threshold() {
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        // 10% of expected throughput.
        match m.observe(&counters(1_000_000_000, 10.0)) {
            Observation::Degraded { ratio } => assert!((ratio - 0.1).abs() < 1e-9),
            other => panic!("expected degradation, got {other:?}"),
        }
    }

    #[test]
    fn decreasing_streak_triggers_even_above_threshold() {
        let cfg = MonitorConfig {
            degradation_threshold: 0.5,
            decreasing_streak: 3,
            smoothing: 1.0,
        };
        let mut m = Monitor::new(cfg, 1e9, PerfCounters::new());
        // Rates: 1.0, 0.95, 0.90, 0.86 of expected — all above the 0.5
        // threshold, but monotonically decreasing.
        assert_eq!(
            m.observe(&counters(1_000_000_000, 1.0)),
            Observation::Healthy
        );
        assert_eq!(
            m.observe(&counters(1_900_000_000, 2.0)),
            Observation::Healthy
        );
        assert_eq!(
            m.observe(&counters(2_700_000_000, 3.0)),
            Observation::Healthy
        );
        assert!(matches!(
            m.observe(&counters(3_440_000_000, 4.0)),
            Observation::Degraded { .. }
        ));
    }

    #[test]
    fn baseline_excludes_prior_work() {
        let baseline = counters(5_000_000_000, 100.0); // old slow history
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, baseline);
        let mut now = baseline;
        now.record(Ops::new(1_000_000_000), Duration::from_secs(1.0));
        assert_eq!(m.observe(&now), Observation::Healthy);
    }

    #[test]
    fn reestimate_scales_by_slowdown() {
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        m.observe(&counters(100_000_000, 1.0)); // measured 1e8 = 10x slower
        assert!((m.reestimate_remaining(2.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reestimate_without_measurement_is_identity() {
        let m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        assert_eq!(m.reestimate_remaining(3.0), 3.0);
    }

    #[test]
    fn observe_window_detects_data_stalls() {
        // Expected progress rate 1e9 ops/s end-to-end; a data-starved
        // window retires the same ops over 4x the wall time.
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        assert_eq!(m.observe_window(1e8, 0.1), Observation::Healthy);
        match m.observe_window(1e8, 0.4) {
            // EMA with the default 0.35 factor: 0.35*0.25 + 0.65*1.0.
            Observation::Degraded { ratio } => assert!((ratio - 0.7375).abs() < 1e-9),
            other => panic!("expected degradation, got {other:?}"),
        }
    }

    #[test]
    fn observe_window_ignores_empty_windows() {
        let mut m = Monitor::new(MonitorConfig::default(), 1e9, PerfCounters::new());
        assert_eq!(m.observe_window(0.0, 1.0), Observation::Warmup);
        assert_eq!(m.observe_window(1.0, 0.0), Observation::Warmup);
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        assert!(MonitorConfig::default().validate().is_ok());
        assert!(MonitorConfig::new(0.85, 3, 0.35).is_ok());
        for (threshold, streak, smoothing) in [
            (0.0, 3, 0.35),           // non-positive threshold
            (-1.0, 3, 0.35),          // negative threshold
            (f64::NAN, 3, 0.35),      // non-finite threshold
            (0.85, 0, 0.35),          // zero streak
            (0.85, 3, 0.0),           // smoothing below (0, 1]
            (0.85, 3, 1.5),           // smoothing above (0, 1]
            (0.85, 3, f64::INFINITY), // non-finite smoothing
        ] {
            let err = MonitorConfig::new(threshold, streak, smoothing);
            assert!(
                matches!(err, Err(ActivePyError::Config { .. })),
                "({threshold}, {streak}, {smoothing}) must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn shard_monitors_stay_without_majority_pressure() {
        let mut sm = ShardMonitors::new(MonitorConfig::default(), 4);
        // One of two completed shards migrated: pressure exactly 0.5, not
        // a majority — later shards stay on-device with no probe at all.
        sm.record(0, true);
        sm.record(1, false);
        assert!((sm.pressure() - 0.5).abs() < 1e-12);
        assert_eq!(sm.decision(2, &[]), ShardDecision::Stay);
    }

    #[test]
    fn shard_monitors_premigrate_under_majority_pressure() {
        let mut sm = ShardMonitors::new(MonitorConfig::default(), 4);
        sm.record(0, true);
        sm.record(1, true);
        assert!(sm.pressure() > 0.5);
        // No probe evidence of recovery: pre-migrate.
        assert_eq!(sm.decision(2, &[]), ShardDecision::PreMigrate);
        // A probe shorter than the streak window is not enough.
        assert_eq!(sm.decision(2, &[1.0, 1.0]), ShardDecision::PreMigrate);
        // A full window with one unhealthy sample is not enough either.
        assert_eq!(sm.decision(2, &[1.0, 0.5, 1.0]), ShardDecision::PreMigrate);
    }

    #[test]
    fn shard_monitors_spare_a_recovered_shard() {
        let mut sm = ShardMonitors::new(MonitorConfig::default(), 4);
        sm.record(0, true);
        sm.record(1, true);
        // decreasing_streak = 3 consecutive windows at or above the 0.85
        // threshold: the shard is spared and keeps its planned placement.
        assert_eq!(
            sm.decision(2, &[0.2, 0.9, 0.95, 1.0]),
            ShardDecision::Spared
        );
        // Only the trailing window counts — old bad samples don't condemn.
        assert_eq!(sm.decision(3, &[0.85, 0.85, 0.85]), ShardDecision::Spared);
    }

    #[test]
    fn shard_monitors_completed_shards_always_stay() {
        let mut sm = ShardMonitors::new(MonitorConfig::default(), 2);
        sm.record(0, true);
        sm.record(1, true);
        // Shard 0 already ran; asking about it again is a Stay no-op.
        assert_eq!(sm.decision(0, &[]), ShardDecision::Stay);
    }

    #[test]
    fn acknowledge_migration_resets_the_decrease_streak() {
        let cfg = MonitorConfig {
            degradation_threshold: 0.5,
            decreasing_streak: 3,
            smoothing: 1.0,
        };
        let mut m = Monitor::new(cfg, 1e9, PerfCounters::new());
        // Build a 3-decrease streak that triggers Degraded.
        assert_eq!(m.observe_window(1e9, 1.0), Observation::Healthy);
        assert_eq!(m.observe_window(0.95e9, 1.0), Observation::Healthy);
        assert_eq!(m.observe_window(0.90e9, 1.0), Observation::Healthy);
        assert!(matches!(
            m.observe_window(0.86e9, 1.0),
            Observation::Degraded { .. }
        ));
        // The migration consumes the observation; the streak resets.
        m.acknowledge_migration();
        // One further decrease must NOT instantly re-trigger: it is the
        // first decrease of a fresh streak (and the first window after the
        // acknowledgement establishes a new raw-rate reference).
        assert_eq!(m.observe_window(0.85e9, 1.0), Observation::Healthy);
        assert_eq!(m.observe_window(0.84e9, 1.0), Observation::Healthy);
        assert_eq!(m.observe_window(0.83e9, 1.0), Observation::Healthy);
        // The streak still works from scratch: a third consecutive
        // decrease re-triggers.
        assert!(matches!(
            m.observe_window(0.82e9, 1.0),
            Observation::Degraded { .. }
        ));
    }
}
