//! The ActivePy runtime facade: the full pipeline of Figure 3.
//!
//! Given an unannotated program and its raw input, [`ActivePy::run`]
//! executes the whole workflow the paper describes: sample → fit → estimate
//! → assign (Algorithm 1) → generate code (with copy elimination) →
//! distribute → execute with monitoring and dynamic task migration. The
//! sampling and code-generation overheads are charged to the simulated
//! clock, so end-to-end latencies include them (the paper reports ≈0.1 s /
//! ≈1 %).

use std::time::Instant;

use crate::assign::{assign_refined_traced, projected_cost, Assignment};
use crate::error::Result;
use crate::estimate::{estimate_lines, Calibration, LineEstimate};
use crate::exec::{execute, execute_lowered, ExecOptions, RunReport};
use crate::fit::{blend_predictions, predict_lines, LinePrediction};
use crate::monitor::MonitorConfig;
use crate::plan::{OffloadPlan, PlanTimings};
use crate::profile::{ProfileRecorder, WorkloadProfile};
use crate::recovery::RecoveryPolicy;
use crate::resume::{plan_fingerprint, ExecJournal};
use crate::sampling::{paper_scales, run_sampling_traced, InputSource, SamplingReport};
use alang::compile::CompiledProgram;
use alang::copyelim::eliminable_lines;
use alang::{CostParams, ExecBackend, ExecTier, ParallelPolicy, Program, Storage};
use csd_sim::contention::ContentionScenario;
use csd_sim::fault::FaultPlan;
use csd_sim::units::Duration;
use csd_sim::SystemConfig;
use isp_obs::{SpanKind, Tracer, WalRecord};

/// Configuration of the ActivePy runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivePyOptions {
    /// Sampling scale factors (the paper's four powers of two by default).
    pub scales: Vec<f64>,
    /// Cost-model constants.
    pub params: CostParams,
    /// Monitoring/migration policy (`None` disables migration — the
    /// "ActivePy w/o migration" configuration of Figure 5).
    pub monitor: Option<MonitorConfig>,
    /// Whether sampling and code-generation time is charged to the clock.
    pub charge_pipeline_overheads: bool,
    /// Optional high-priority preemption time (§III-D case 1): the device
    /// signals through the command pages and the ISP task vacates at the
    /// next status update.
    pub preempt_at: Option<f64>,
    /// The per-line evaluation engine used for sampling runs and plan
    /// execution: the lowered register-bytecode VM (default) or the
    /// tree-walking reference interpreter. The two produce byte-identical
    /// outcomes.
    pub backend: ExecBackend,
    /// How plan execution responds to injected device faults (retry
    /// budget, sim-time backoff, host fallback).
    pub recovery: RecoveryPolicy,
    /// Deterministic fault plan injected into plan executions;
    /// [`FaultPlan::none`] (the default) injects nothing. Execution-only:
    /// it does not participate in plan-cache fingerprints.
    pub faults: FaultPlan,
    /// Data-parallel kernel policy applied to plan executions. Sampling
    /// runs stay serial regardless — their down-scaled inputs sit below
    /// any sensible threshold, and keeping them on one code path keeps the
    /// fitted curves identical across policies. Execution-only: it does
    /// not participate in plan-cache fingerprints.
    pub parallel: ParallelPolicy,
    /// Trace recording handle threaded through planning and execution.
    /// Disabled by default. Observation-only: it participates in neither
    /// plan-cache fingerprints nor option equality beyond identity, and a
    /// live tracer never perturbs any simulated quantity.
    pub tracer: Tracer,
    /// Profile recording handle: routes each plan execution's measured
    /// per-line costs into a [`crate::profile::ProfileStore`] for
    /// profile-guided re-planning. Disabled by default and
    /// observation-only, exactly like the tracer: identity equality,
    /// outside plan-cache fingerprints, never perturbs simulation.
    pub profile: ProfileRecorder,
    /// Crash-consistent journal handle threaded through plan executions.
    /// Disabled by default. When recording, each execution boundary
    /// appends a checksummed WAL record; when resuming, each boundary is
    /// verified against the recovered log instead. Identity equality,
    /// outside plan-cache fingerprints, never perturbs simulation.
    pub journal: ExecJournal,
}

impl Default for ActivePyOptions {
    fn default() -> Self {
        ActivePyOptions {
            scales: paper_scales(),
            params: CostParams::paper_default(),
            monitor: Some(MonitorConfig::default()),
            charge_pipeline_overheads: true,
            preempt_at: None,
            backend: ExecBackend::default(),
            recovery: RecoveryPolicy::default(),
            faults: FaultPlan::none(),
            parallel: ParallelPolicy::default(),
            tracer: Tracer::disabled(),
            profile: ProfileRecorder::disabled(),
            journal: ExecJournal::disabled(),
        }
    }
}

impl ActivePyOptions {
    /// Disables dynamic task migration.
    #[must_use]
    pub fn without_migration(mut self) -> Self {
        self.monitor = None;
        self
    }

    /// Schedules a high-priority device preemption at `at_secs`.
    #[must_use]
    pub fn with_preemption_at(mut self, at_secs: f64) -> Self {
        self.preempt_at = Some(at_secs);
        self
    }

    /// Selects the per-line evaluation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the fault-recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Installs a deterministic fault plan for plan executions.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the data-parallel kernel policy for plan executions.
    #[must_use]
    pub fn with_parallelism(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches a trace recording handle to planning and execution.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a profile recording handle to plan executions.
    #[must_use]
    pub fn with_profile(mut self, profile: ProfileRecorder) -> Self {
        self.profile = profile;
        self
    }

    /// Attaches a crash-consistent journal handle to plan executions.
    #[must_use]
    pub fn with_journal(mut self, journal: ExecJournal) -> Self {
        self.journal = journal;
        self
    }
}

/// Everything ActivePy produced for one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivePyOutcome {
    /// The execution report (end-to-end latency, per-line outcomes,
    /// migration).
    pub report: RunReport,
    /// The Algorithm-1 assignment.
    pub assignment: Assignment,
    /// Per-line estimates fed to Algorithm 1 and the monitor.
    pub estimates: Vec<LineEstimate>,
    /// Full-scale predictions with their fitted curves.
    pub predictions: Vec<LinePrediction>,
    /// The raw sampling measurements.
    pub sampling: SamplingReport,
    /// Simulated seconds spent in the sampling phase.
    pub sampling_secs: f64,
    /// Simulated seconds spent generating code.
    pub compile_secs: f64,
    /// The calibrated CSE-slowdown constant.
    pub calibration: Calibration,
}

/// The ActivePy runtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivePy {
    options: ActivePyOptions,
}

impl ActivePy {
    /// A runtime with the paper's default configuration.
    #[must_use]
    pub fn new() -> Self {
        ActivePy {
            options: ActivePyOptions::default(),
        }
    }

    /// A runtime with custom options.
    #[must_use]
    pub fn with_options(options: ActivePyOptions) -> Self {
        ActivePy { options }
    }

    /// The active options.
    #[must_use]
    pub fn options(&self) -> &ActivePyOptions {
        &self.options
    }

    /// Runs the complete pipeline on `program` with inputs from `input`,
    /// on a platform described by `config`, under `scenario` contention.
    ///
    /// Equivalent to [`ActivePy::plan`] followed by
    /// [`ActivePy::execute_plan`]; callers that run the same (program,
    /// workload, platform) under several scenarios should plan once —
    /// ideally through a [`crate::plan::PlanCache`] — and execute the plan
    /// per scenario.
    ///
    /// # Errors
    ///
    /// Propagates sampling, fitting, and execution failures.
    pub fn run(
        &self,
        program: &Program,
        input: &dyn InputSource,
        config: &SystemConfig,
        scenario: ContentionScenario,
    ) -> Result<ActivePyOutcome> {
        let plan = self.plan(program, input, config)?;
        self.execute_plan(&plan, config, scenario)
    }

    /// Runs the planning half of the pipeline: sampling at the configured
    /// down-scales, curve fitting, calibration, copy-elimination analysis,
    /// Eq.1 estimation, Algorithm 1, and full-scale input
    /// materialization. The result depends on the contention scenario and
    /// monitoring policy in no way, so one plan serves every execution
    /// variant of the same (program, workload, platform).
    ///
    /// # Errors
    ///
    /// Propagates sampling and fitting failures.
    pub fn plan(
        &self,
        program: &Program,
        input: &dyn InputSource,
        config: &SystemConfig,
    ) -> Result<OffloadPlan> {
        let tracer = &self.options.tracer;

        // 1. Sampling phase on down-scaled inputs.
        let phase = Instant::now();
        let span = tracer.begin_with(
            "phase.sampling",
            SpanKind::Phase,
            None,
            vec![("scales".into(), self.options.scales.len().into())],
        );
        let sampling = run_sampling_traced(
            program,
            input,
            &self.options.scales,
            self.options.backend,
            tracer,
        )?;
        let sampling_secs = self.sampling_secs(&sampling, config);
        tracer.end_with(
            span,
            None,
            vec![("sampling_secs".into(), sampling_secs.into())],
        );
        let sampling_nanos = phase_nanos(phase);

        // Materialize the full-scale input the plan will execute on.
        let phase = Instant::now();
        let full_storage = input.storage_at(1.0);
        let materialize_nanos = phase_nanos(phase);

        let mut plan = self.plan_from_sampling(program, sampling, full_storage, config)?;
        plan.timings.sampling_nanos = sampling_nanos;
        plan.timings.materialize_nanos = materialize_nanos;
        Ok(plan)
    }

    /// Runs planning phases 2–5 (curve fitting, calibration,
    /// copy-elimination analysis, Eq.1 estimation, Algorithm 1, and code
    /// generation) from an already-collected [`SamplingReport`] and an
    /// already-materialized full-scale input.
    ///
    /// This is the warm-start entry point: it performs **zero** input
    /// generation — no sampling runs, no `storage_at` calls — so a
    /// process restarted with a persisted sampling report re-plans
    /// without touching the data generator at all. [`ActivePy::plan`] is
    /// exactly sampling + materialization + this method, so the two paths
    /// produce identical plans (timings aside) from the same report.
    ///
    /// # Errors
    ///
    /// Propagates fitting and lowering failures.
    pub fn plan_from_sampling(
        &self,
        program: &Program,
        sampling: SamplingReport,
        full_storage: Storage,
        config: &SystemConfig,
    ) -> Result<OffloadPlan> {
        let mut timings = PlanTimings::default();
        let tracer = &self.options.tracer;
        let sampling_secs = self.sampling_secs(&sampling, config);

        // 2. Fit the five candidate curves and extrapolate to full scale.
        let phase = Instant::now();
        let span = tracer.begin("phase.fit", SpanKind::Phase, None);
        let predictions = predict_lines(&sampling.lines)?;
        tracer.end_with(span, None, vec![("lines".into(), predictions.len().into())]);
        timings.fit_nanos = phase_nanos(phase);

        // 3. Calibrate the CSE slowdown from performance counters, decide
        //    copy elimination from the dataset types sampling observed (the
        //    generated code's optimization), and estimate per-line
        //    host/device times for that code — the profit evaluation.
        let phase = Instant::now();
        let span = tracer.begin("phase.profit", SpanKind::Phase, None);
        let calibration = Calibration::from_counters(config);
        let copy_elim = eliminable_lines(program, &sampling.dataset_types);
        let estimates = estimate_lines(
            &predictions,
            ExecTier::CompiledCopyElim,
            &self.options.params,
            config,
            &calibration,
            &copy_elim,
        );
        tracer.end_with(
            span,
            None,
            vec![(
                "copy_elim_lines".into(),
                copy_elim.iter().filter(|e| **e).count().into(),
            )],
        );

        // 4. Algorithm 1 with flip refinement.
        let span = tracer.begin("phase.assign", SpanKind::Phase, None);
        let assignment = assign_refined_traced(
            program,
            &estimates,
            config.d2h_bandwidth().as_bytes_per_sec(),
            tracer,
        );
        tracer.end_with(
            span,
            None,
            vec![("csd_lines".into(), assignment.csd_lines.len().into())],
        );

        // 5. Code generation. Lower once while planning: every execution
        //    variant of this plan (per scenario, with or without migration)
        //    reuses the bytecode.
        let span = tracer.begin("phase.compile", SpanKind::Phase, None);
        let lowered = alang::lower::lower_with(program, &copy_elim)?;
        let csd_line_count = assignment.csd_lines.len();
        let compile_secs = CompiledProgram::compile_secs_for(program.len())
            + if csd_line_count > 0 {
                CompiledProgram::compile_secs_for(csd_line_count)
            } else {
                0.0
            };
        tracer.end_with(
            span,
            None,
            vec![("compile_secs".into(), compile_secs.into())],
        );
        timings.assign_nanos = phase_nanos(phase);

        let eq1 = crate::audit::capture_terms(
            &estimates,
            &assignment,
            config.d2h_bandwidth().as_bytes_per_sec(),
            1,
        );
        Ok(OffloadPlan {
            program: program.clone(),
            lowered,
            sampling,
            predictions,
            calibration,
            copy_elim,
            estimates,
            assignment,
            sampling_secs,
            compile_secs,
            full_storage,
            timings,
            eq1,
        })
    }

    /// Refits a prepared plan from measured observations: blends the
    /// profile's per-line means into the sampled predictions
    /// (observation-count-weighted, [`crate::fit::blend_predictions`]),
    /// re-estimates, and re-runs Algorithm 1 under the blended model.
    ///
    /// Everything sampling produced — the measurements, the calibration,
    /// the lowering, the materialized input — is reused from `prior`, so
    /// a warm re-plan skips the two expensive planning phases entirely.
    /// The prior assignment is always evaluated as a candidate under the
    /// blended cost model, so the refitted plan's modelled sim-time
    /// ([`crate::assign::projected_cost`]) never exceeds the cold plan's
    /// under the same model.
    ///
    /// # Errors
    ///
    /// None currently; the `Result` mirrors [`ActivePy::plan`] so callers
    /// treat both planning paths uniformly.
    pub fn replan(
        &self,
        prior: &OffloadPlan,
        config: &SystemConfig,
        profile: &WorkloadProfile,
    ) -> Result<OffloadPlan> {
        let tracer = &self.options.tracer;
        let span = tracer.begin_with(
            "phase.refit",
            SpanKind::Phase,
            None,
            vec![("observed_runs".into(), (profile.version as usize).into())],
        );
        let predictions = blend_predictions(&prior.predictions, profile);
        let estimates = estimate_lines(
            &predictions,
            ExecTier::CompiledCopyElim,
            &self.options.params,
            config,
            &prior.calibration,
            &prior.copy_elim,
        );
        let bw = config.d2h_bandwidth().as_bytes_per_sec();
        let mut assignment = assign_refined_traced(&prior.program, &estimates, bw, tracer);
        let prior_placements = prior.assignment.placements(prior.program.len());
        let prior_cost = projected_cost(&prior.program, &estimates, &prior_placements, bw);
        if prior_cost < assignment.t_csd {
            assignment = Assignment {
                csd_lines: prior.assignment.csd_lines.clone(),
                t_host: assignment.t_host,
                t_csd: prior_cost,
            };
        }
        let csd_line_count = assignment.csd_lines.len();
        let compile_secs = CompiledProgram::compile_secs_for(prior.program.len())
            + if csd_line_count > 0 {
                CompiledProgram::compile_secs_for(csd_line_count)
            } else {
                0.0
            };
        tracer.end_with(
            span,
            None,
            vec![("csd_lines".into(), csd_line_count.into())],
        );
        let eq1 = crate::audit::capture_terms(&estimates, &assignment, bw, 1);
        Ok(OffloadPlan {
            program: prior.program.clone(),
            lowered: prior.lowered.clone(),
            sampling: prior.sampling.clone(),
            predictions,
            calibration: prior.calibration,
            copy_elim: prior.copy_elim.clone(),
            estimates,
            assignment,
            sampling_secs: prior.sampling_secs,
            compile_secs,
            full_storage: prior.full_storage.clone(),
            timings: prior.timings,
            eq1,
        })
    }

    /// Executes a prepared plan under `scenario` contention on a fresh
    /// system built from `config`, applying this runtime's execution
    /// options (monitoring policy, preemption, overhead charging).
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn execute_plan(
        &self,
        plan: &OffloadPlan,
        config: &SystemConfig,
        scenario: ContentionScenario,
    ) -> Result<ActivePyOutcome> {
        let mut system = config.build();
        if self.options.charge_pipeline_overheads {
            system.advance(Duration::from_secs(plan.sampling_secs + plan.compile_secs));
            self.options.tracer.instant(
                "exec.pipeline_overheads",
                SpanKind::Phase,
                Some(system.now().as_secs()),
                vec![
                    ("sampling_secs".into(), plan.sampling_secs.into()),
                    ("compile_secs".into(), plan.compile_secs.into()),
                ],
            );
        }
        let opts = ExecOptions {
            tier: ExecTier::CompiledCopyElim,
            params: self.options.params,
            scenario,
            monitor: self.options.monitor,
            offload_overheads: true,
            preempt_at: self.options.preempt_at,
            backend: self.options.backend,
            recovery: self.options.recovery,
            faults: self.options.faults.clone(),
            parallel: self.options.parallel,
            tracer: self.options.tracer.clone(),
            profile: self.options.profile.clone(),
            journal: self.options.journal.clone(),
        };
        // Journal the plan identity before executing: a resume against a
        // different plan (changed program, drifted fit) is detected at
        // the very first record rather than at some divergent boundary.
        opts.journal.on_record(WalRecord::PlanCommit {
            lane: 0,
            plan_fp: plan_fingerprint(plan),
            shard_fp: 0,
        })?;
        let placements = plan.assignment.placements(plan.program.len());
        let mut report = match self.options.backend {
            // The plan carries the lowering; don't re-lower per scenario.
            ExecBackend::Vm => execute_lowered(
                &plan.program,
                &plan.lowered,
                &plan.full_storage,
                &placements,
                &mut system,
                &opts,
                Some(&plan.estimates),
            )?,
            ExecBackend::AstWalk => execute(
                &plan.program,
                &plan.full_storage,
                &placements,
                &mut system,
                &opts,
                Some(&plan.estimates),
                &plan.copy_elim,
            )?,
        };
        // Echo the Eq. 1 terms of the assignment that actually executed
        // (recomputed rather than copied from `plan.eq1`, so callers that
        // force placements on a cloned plan still audit what ran).
        report.eq1 = crate::audit::capture_terms(
            &plan.estimates,
            &plan.assignment,
            config.d2h_bandwidth().as_bytes_per_sec(),
            1,
        );

        Ok(ActivePyOutcome {
            report,
            assignment: plan.assignment.clone(),
            estimates: plan.estimates.clone(),
            predictions: plan.predictions.clone(),
            sampling: plan.sampling.clone(),
            sampling_secs: plan.sampling_secs,
            compile_secs: plan.compile_secs,
            calibration: plan.calibration,
        })
    }

    /// Simulated wall-clock cost of the sampling runs: the sample programs
    /// execute interpreted on the host.
    fn sampling_secs(&self, sampling: &SamplingReport, config: &SystemConfig) -> f64 {
        let ops = sampling
            .total_sampling_cost
            .effective_ops(ExecTier::Interpreted, &self.options.params);
        let host_rate = config.host.nominal_rate().as_ops_per_sec();
        let storage_bw = config.host_storage_bandwidth().as_bytes_per_sec();
        ops as f64 / host_rate + sampling.total_sampling_cost.storage_bytes as f64 / storage_bw
    }
}

/// Host wall-clock elapsed since `start`, saturating into `u64` nanos.
fn phase_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_all_host;
    use alang::builtins::Storage;
    use alang::parser::parse;
    use alang::value::ArrayVal;
    use alang::Value;

    /// A filter-reduce workload over an 8 GB logical array. The
    /// materialized length is kept a multiple of 100 so the `a < 50`
    /// selectivity is exactly 0.5 at every sampling scale.
    fn input() -> impl InputSource {
        |scale: f64| {
            let logical = (scale * 1e9).round().max(100.0) as u64;
            let actual = (((logical / 100_000).clamp(100, 8000) / 100) * 100) as usize;
            let data: Vec<f64> = (0..actual).map(|i| (i % 100) as f64).collect();
            let mut st = Storage::new();
            st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
            st
        }
    }

    const SRC: &str = "\
a = scan('v')
m = a < 50
b = select(a, m)
s = sum(b)
";

    #[test]
    fn pipeline_runs_end_to_end_and_offloads_the_scan() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let outcome = ActivePy::new()
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("pipeline");
        assert!(
            outcome.assignment.csd_lines.contains(&0),
            "the scan line should offload: {:?}",
            outcome.assignment
        );
        assert!(outcome.report.total_secs > 0.0);
        assert!(outcome.sampling_secs > 0.0);
        assert!(outcome.compile_secs > 0.0);
        assert_eq!(outcome.estimates.len(), 4);
        assert_eq!(outcome.predictions.len(), 4);
    }

    #[test]
    fn activepy_beats_the_host_only_baseline() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let outcome = ActivePy::new()
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("pipeline");
        let storage = input().storage_at(1.0);
        let mut host_sys = config.build();
        let host = execute_all_host(
            &program,
            &storage,
            &mut host_sys,
            alang::ExecTier::Native,
            &CostParams::paper_default(),
            &[],
        )
        .expect("host baseline");
        assert!(
            outcome.report.total_secs < host.total_secs,
            "ActivePy {} must beat host {}",
            outcome.report.total_secs,
            host.total_secs
        );
    }

    #[test]
    fn pipeline_overheads_are_small() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let outcome = ActivePy::new()
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("pipeline");
        let overhead = outcome.sampling_secs + outcome.compile_secs;
        assert!(
            overhead < 0.10 * outcome.report.total_secs,
            "overhead {overhead}s too large vs total {}s",
            outcome.report.total_secs
        );
    }

    #[test]
    fn without_migration_option_disables_monitor() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let rt = ActivePy::with_options(ActivePyOptions::default().without_migration());
        let outcome = rt
            .run(
                &program,
                &input(),
                &config,
                ContentionScenario::after_progress(0.5, 0.1),
            )
            .expect("pipeline");
        assert!(outcome.report.migration.is_none());
    }

    #[test]
    fn pipeline_outcomes_are_identical_across_backends() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        for scenario in [
            ContentionScenario::none(),
            ContentionScenario::after_progress(0.5, 0.1),
        ] {
            let vm = ActivePy::with_options(
                ActivePyOptions::default().with_backend(alang::ExecBackend::Vm),
            )
            .run(&program, &input(), &config, scenario)
            .expect("vm pipeline");
            let ast = ActivePy::with_options(
                ActivePyOptions::default().with_backend(alang::ExecBackend::AstWalk),
            )
            .run(&program, &input(), &config, scenario)
            .expect("ast pipeline");
            assert_eq!(vm, ast, "pipeline diverged under {scenario:?}");
        }
    }

    #[test]
    fn parallel_plan_execution_matches_serial() {
        // The policy is execution-only: the plan (sampling, fitting,
        // assignment) and the report's observable outcome are unchanged.
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let serial = ActivePy::new()
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("serial");
        let policy = ParallelPolicy::new(8, 256).expect("policy");
        let par = ActivePy::with_options(ActivePyOptions::default().with_parallelism(policy))
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("parallel");
        assert_eq!(par.assignment, serial.assignment);
        assert_eq!(par.report.lines, serial.report.lines);
        assert_eq!(
            par.report.values_fingerprint,
            serial.report.values_fingerprint
        );
        assert_eq!(par.report.total_secs, serial.report.total_secs);
        assert_eq!(par.report.parallel, policy);
    }

    #[test]
    fn volume_predictions_are_close_to_measured() {
        let program = parse(SRC).expect("parse");
        let config = SystemConfig::paper_default();
        let outcome = ActivePy::new()
            .run(&program, &input(), &config, ContentionScenario::none())
            .expect("pipeline");
        // Compare predicted vs measured output volume per line (the
        // paper's headline accuracy result: geomean error ≈ 9 %).
        for (pred, line) in outcome.predictions.iter().zip(&outcome.report.lines) {
            let predicted = pred.cost.bytes_out as f64;
            let measured = line.cost.bytes_out as f64;
            if measured > 1e6 {
                let err = (predicted - measured).abs() / measured;
                assert!(
                    err < 0.25,
                    "line {} volume error {err}: predicted {predicted}, measured {measured}",
                    pred.line
                );
            }
        }
    }
}
