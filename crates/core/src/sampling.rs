//! The sampling phase (§III-A).
//!
//! ActivePy "starts by heuristically selecting data from raw inputs to
//! create sample inputs of different sizes" at four scaling factors — tiny
//! 2⁻¹⁰, small 2⁻⁹, medium 2⁻⁸, large 2⁻⁷ — runs the program on each, and
//! records per line the execution time, input size, and output size,
//! separating data-access time from computation.
//!
//! Here the [`InputSource`] trait abstracts "the raw input": workload
//! generators materialize storage at any requested scale, and the sampler
//! runs the interpreted program on each sample, collecting
//! [`alang::LineCost`] records and the dataset types that later enable
//! copy elimination.

use crate::error::{ActivePyError, Result};
use alang::builtins::Storage;
use alang::copyelim::{DatasetTypes, StaticType};
use alang::{ExecBackend, Interpreter, LineCost, Program, Value, Vm};
use isp_obs::{SpanKind, Tracer};
use serde::{Deserialize, Serialize};

/// A provider of program inputs at arbitrary scale.
///
/// `scale = 1.0` is the full (paper-scale) input; the sampler requests the
/// paper's four sub-unity factors. Implementations must keep logical sizes
/// proportional to `scale` so extrapolation is meaningful.
pub trait InputSource {
    /// Materializes the named datasets at the given scale.
    fn storage_at(&self, scale: f64) -> Storage;

    /// Combined fingerprint of the wire-format encodings this source
    /// declares for its datasets, `0` when everything is served as plain
    /// in-memory values.
    ///
    /// Folded into plan-cache keys so plans for differently-encoded
    /// inputs never collide — and answerable *without* materializing
    /// storage, preserving the zero-datagen warm-start path.
    fn wire_fingerprint(&self) -> u64 {
        0
    }
}

impl<F: Fn(f64) -> Storage> InputSource for F {
    fn storage_at(&self, scale: f64) -> Storage {
        self(scale)
    }
}

/// The paper's four sampling scale factors.
#[must_use]
pub fn paper_scales() -> Vec<f64> {
    vec![
        2f64.powi(-10), // tiny
        2f64.powi(-9),  // small
        2f64.powi(-8),  // medium
        2f64.powi(-7),  // large
    ]
}

/// One sample run's measurement for one line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// The scale factor of the sample input.
    pub scale: f64,
    /// The measured per-line cost at that scale.
    pub cost: LineCost,
}

/// All sample measurements for one line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineSamples {
    /// The line index.
    pub line: usize,
    /// One point per sampling scale, in increasing scale order.
    pub points: Vec<SamplePoint>,
}

/// The outcome of the sampling phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingReport {
    /// Per-line measurements.
    pub lines: Vec<LineSamples>,
    /// Dataset types observed in the samples (feeds copy elimination).
    pub dataset_types: DatasetTypes,
    /// Total cost of all sample runs combined (the overhead ActivePy pays;
    /// the paper reports ≈0.1 s / ≈1 %).
    pub total_sampling_cost: LineCost,
}

/// Runs the sampling phase: executes `program` once per scale factor and
/// collects per-line statistics. Uses the default (VM) backend.
///
/// # Errors
///
/// Returns an error if `scales` is empty or any sample run fails.
pub fn run_sampling(
    program: &Program,
    input: &dyn InputSource,
    scales: &[f64],
) -> Result<SamplingReport> {
    run_sampling_with(program, input, scales, ExecBackend::default())
}

/// Runs the sampling phase on a specific execution backend.
///
/// With [`ExecBackend::Vm`], the program is lowered once and each sample
/// run reuses the same bytecode; the AST walker re-walks the tree per
/// scale. Both produce identical reports.
///
/// # Errors
///
/// Returns an error if `scales` is empty, lowering fails, or any sample
/// run fails.
pub fn run_sampling_with(
    program: &Program,
    input: &dyn InputSource,
    scales: &[f64],
    backend: ExecBackend,
) -> Result<SamplingReport> {
    run_sampling_traced(program, input, scales, backend, &Tracer::disabled())
}

/// As [`run_sampling_with`], recording one `sampling.scale` span per
/// sample run into `tracer`. The tracer is observation-only: reports are
/// identical with it enabled, disabled, or absent.
///
/// # Errors
///
/// As [`run_sampling_with`].
pub fn run_sampling_traced(
    program: &Program,
    input: &dyn InputSource,
    scales: &[f64],
    backend: ExecBackend,
    tracer: &Tracer,
) -> Result<SamplingReport> {
    if scales.is_empty() {
        return Err(ActivePyError::sampling("no sampling scales provided"));
    }
    let lowered = match backend {
        ExecBackend::Vm => Some(alang::lower::lower(program)?),
        ExecBackend::AstWalk => None,
    };
    let mut lines: Vec<LineSamples> = (0..program.len())
        .map(|line| LineSamples {
            line,
            points: Vec::with_capacity(scales.len()),
        })
        .collect();
    let mut total = LineCost::zero();
    let mut dataset_types = DatasetTypes::new();
    for &scale in scales {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(ActivePyError::sampling(format!(
                "scale factor {scale} outside (0, 1]"
            )));
        }
        let span = tracer.begin_with(
            "sampling.scale",
            SpanKind::Phase,
            None,
            vec![("scale".into(), scale.into())],
        );
        let storage = input.storage_at(scale);
        dataset_types.extend(observe_dataset_types(&storage));
        // Sample runs execute the unoptimized program — the original code,
        // before any code generation — with copy elimination disabled.
        let records = match &lowered {
            Some(lowered) => Vm::new(lowered, &storage).run()?,
            None => Interpreter::new(&storage).run(program, &[])?,
        };
        tracer.end(span, None);
        for rec in records {
            total += rec.cost;
            lines[rec.index].points.push(SamplePoint {
                scale,
                cost: rec.cost,
            });
        }
    }
    Ok(SamplingReport {
        lines,
        dataset_types,
        total_sampling_cost: total,
    })
}

/// Observes the static types of every dataset in `storage` — what a
/// sampling run learns about stored data, and what the copy-elimination
/// pass needs as seeds.
#[must_use]
pub fn observe_dataset_types(storage: &Storage) -> DatasetTypes {
    storage
        .names()
        .filter_map(|name| {
            storage
                .get(name)
                .ok()
                .map(|v| (name.to_owned(), observe_type(v)))
        })
        .collect()
}

/// Maps a runtime value to its static type (what sampling "observes").
fn observe_type(v: &Value) -> StaticType {
    match v {
        Value::Num(_) => StaticType::Num,
        Value::Bool(_) => StaticType::Bool,
        Value::Str(_) => StaticType::Str,
        Value::Array(_) => StaticType::Array,
        Value::BoolArray(_) => StaticType::BoolArray,
        Value::Table(_) => StaticType::Table,
        Value::Matrix(_) => StaticType::Matrix,
        Value::Csr(_) => StaticType::Csr,
        Value::Forest(_) => StaticType::Forest,
        Value::Encoded(_) => StaticType::Encoded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alang::parser::parse;
    use alang::value::ArrayVal;

    /// A linear synthetic input: `n = scale * 1e6` logical elements,
    /// materialized at `n / 1000`.
    fn linear_input() -> impl InputSource {
        |scale: f64| {
            let logical = (scale * 1e6).round().max(4.0) as u64;
            let actual = (logical / 100).clamp(4, 4096) as usize;
            let data: Vec<f64> = (0..actual).map(|i| i as f64).collect();
            let mut st = Storage::new();
            st.insert("v", Value::Array(ArrayVal::with_logical(data, logical)));
            st
        }
    }

    #[test]
    fn paper_scales_are_the_four_powers() {
        let s = paper_scales();
        assert_eq!(s.len(), 4);
        assert!((s[0] - 1.0 / 1024.0).abs() < 1e-12);
        assert!((s[3] - 1.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_collects_one_point_per_scale_per_line() {
        let program = parse("a = scan('v')\nb = a * 2\ns = sum(b)\n").expect("parse");
        let rep = run_sampling(&program, &linear_input(), &paper_scales()).expect("sampling");
        assert_eq!(rep.lines.len(), 3);
        for ls in &rep.lines {
            assert_eq!(ls.points.len(), 4);
        }
        // Larger scale => more storage bytes on the scan line.
        let scan = &rep.lines[0].points;
        assert!(scan[3].cost.storage_bytes > scan[0].cost.storage_bytes);
    }

    #[test]
    fn sampling_observes_dataset_types() {
        let program = parse("a = scan('v')\n").expect("parse");
        let rep = run_sampling(&program, &linear_input(), &[0.01]).expect("sampling");
        assert_eq!(rep.dataset_types.get("v"), Some(&StaticType::Array));
    }

    #[test]
    fn sampling_cost_is_small_relative_to_full_run() {
        let program = parse("a = scan('v')\ns = sum(a)\n").expect("parse");
        let rep = run_sampling(&program, &linear_input(), &paper_scales()).expect("sampling");
        // Full-scale run for comparison.
        let storage = linear_input().storage_at(1.0);
        let mut interp = Interpreter::new(&storage);
        let full: LineCost = interp
            .run(&program, &[])
            .expect("run")
            .iter()
            .map(|r| r.cost)
            .sum();
        // Four samples at <= 2^-7 each: total sampling compute should be a
        // few percent of the real run.
        assert!((rep.total_sampling_cost.compute_ops as f64) < 0.05 * full.compute_ops as f64);
    }

    #[test]
    fn backends_produce_identical_reports() {
        let program = parse("a = scan('v')\nb = a * 2\ns = sum(b)\n").expect("parse");
        let ast = run_sampling_with(
            &program,
            &linear_input(),
            &paper_scales(),
            ExecBackend::AstWalk,
        )
        .expect("ast");
        let vm = run_sampling_with(&program, &linear_input(), &paper_scales(), ExecBackend::Vm)
            .expect("vm");
        assert_eq!(ast, vm);
    }

    #[test]
    fn empty_scales_rejected() {
        let program = parse("a = 1\n").expect("parse");
        assert!(run_sampling(&program, &linear_input(), &[]).is_err());
    }

    #[test]
    fn out_of_range_scale_rejected() {
        let program = parse("a = 1\n").expect("parse");
        assert!(run_sampling(&program, &linear_input(), &[1.5]).is_err());
        assert!(run_sampling(&program, &linear_input(), &[0.0]).is_err());
    }
}
