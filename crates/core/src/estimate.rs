//! Device-time estimation and the net-profit equation (Eq. 1).
//!
//! ActivePy estimates a line's CSD execution time by multiplying its
//! predicted host computation time by a constant factor `C`, which it
//! calibrates either by "querying the CSD's performance counters (e.g.
//! retired instructions per cycle)" or by "running a small sample program
//! on both a CSD and the host computer" (§III-A). Both calibrations are
//! implemented here against the simulator.
//!
//! [`LineEstimate`] carries the four per-line quantities Algorithm 1
//! consumes: `CT_host`, `CT_device`, `D_in`, and `D_out`; [`net_profit`]
//! evaluates Eq. 1 directly for a single task.

use crate::error::Result;
use crate::fit::LinePrediction;
use alang::{parser, CostParams, ExecTier, Interpreter, LineCost, Storage, Value};
use csd_sim::units::Ops;
use csd_sim::{EngineKind, SystemConfig};
use serde::{Deserialize, Serialize};

/// The calibrated CSE-slowdown constant `C` (how many times slower the CSE
/// retires the same work than the host).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// `CT_device ≈ C × CT_host` for pure compute.
    pub cse_slowdown: f64,
}

impl Calibration {
    /// Calibrates from performance counters: execute a probe batch of
    /// operations on each engine of a scratch system and compare achieved
    /// rates.
    #[must_use]
    pub fn from_counters(config: &SystemConfig) -> Calibration {
        let mut sys = config.build();
        let probe = Ops::new(1_000_000_000);
        let host_wall = sys.compute(EngineKind::Host, probe);
        let cse_wall = sys.compute(EngineKind::Cse, probe);
        // Achieved rates straight from the counters the engines recorded.
        let host_rate = sys
            .engine(EngineKind::Host)
            .counters()
            .achieved_rate()
            .unwrap_or_else(|| probe.as_f64() / host_wall.as_secs());
        let cse_rate = sys
            .engine(EngineKind::Cse)
            .counters()
            .achieved_rate()
            .unwrap_or_else(|| probe.as_f64() / cse_wall.as_secs());
        Calibration {
            cse_slowdown: host_rate / cse_rate,
        }
    }

    /// Calibrates by running a small sample program on both engines (the
    /// fallback when performance counters are unavailable).
    ///
    /// # Errors
    ///
    /// Propagates probe-program failures (none expected for the built-in
    /// probe).
    pub fn from_probe_program(config: &SystemConfig, params: &CostParams) -> Result<Calibration> {
        let mut storage = Storage::new();
        storage.insert(
            "probe",
            Value::from((0..4096).map(|i| f64::from(i) * 0.5).collect::<Vec<f64>>()),
        );
        let program =
            parser::parse("a = scan('probe')\nb = sqrt(a * 3 + 1)\nc = sum(exp(b - 2))\n")?;
        let mut interp = Interpreter::new(&storage);
        let cost: LineCost = interp.run(&program, &[])?.iter().map(|r| r.cost).sum();
        let ops = Ops::new(cost.effective_ops(ExecTier::Compiled, params));
        let mut sys = config.build();
        let host = sys.compute(EngineKind::Host, ops);
        let cse = sys.compute(EngineKind::Cse, ops);
        Ok(Calibration {
            cse_slowdown: cse.as_secs() / host.as_secs(),
        })
    }
}

/// Per-line quantities consumed by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineEstimate {
    /// The line index.
    pub line: usize,
    /// Estimated execution time on the host, in seconds (compute plus
    /// host-side storage streaming for `scan` lines).
    pub ct_host: f64,
    /// Estimated execution time on the CSD, in seconds (compute scaled by
    /// `C`, plus internal-bandwidth storage streaming).
    pub ct_device: f64,
    /// Estimated input volume in bytes (`D_in`).
    pub d_in: u64,
    /// Estimated output volume in bytes (`D_out`).
    pub d_out: u64,
    /// Estimated effective operations (used by the runtime monitor to
    /// project expected throughput).
    pub ops: u64,
}

/// Builds per-line estimates from full-scale predictions.
///
/// `tier` is the tier the generated code will run at (ActivePy generates
/// [`ExecTier::CompiledCopyElim`] code; baselines may estimate for other
/// tiers). `copy_elim` carries the code generator's per-line elimination
/// decisions: sampling runs execute *unoptimized* code, so the sampled
/// costs never mark copies eliminable — the estimator re-tags them for the
/// lines the generated code will optimize (missing entries mean "not
/// eliminated").
#[must_use]
pub fn estimate_lines(
    predictions: &[LinePrediction],
    tier: ExecTier,
    params: &CostParams,
    config: &SystemConfig,
    calibration: &Calibration,
    copy_elim: &[bool],
) -> Vec<LineEstimate> {
    let host_rate = config.host.nominal_rate().as_ops_per_sec();
    let host_storage_bw = config.host_storage_bandwidth().as_bytes_per_sec();
    let flash_bw = config.flash_internal_bandwidth.as_bytes_per_sec();
    predictions
        .iter()
        .map(|p| {
            let mut cost = p.cost;
            if copy_elim.get(p.line).copied().unwrap_or(false) {
                cost.eliminable_copy_bytes = cost.copy_bytes;
            }
            let ops = cost.effective_ops(tier, params);
            let compute_host = ops as f64 / host_rate;
            let ct_host = compute_host + cost.storage_bytes as f64 / host_storage_bw;
            let ct_device =
                compute_host * calibration.cse_slowdown + cost.storage_bytes as f64 / flash_bw;
            LineEstimate {
                line: p.line,
                ct_host,
                ct_device,
                d_in: cost.bytes_in,
                d_out: cost.bytes_out,
                ops,
            }
        })
        .collect()
}

/// Eq. 1: the net profit `S` (seconds saved) of running one task on the
/// CSD instead of the host, for a task whose raw input would otherwise
/// cross the interconnect.
///
/// `S = (DS_raw / BW_D2H + CT_host_compute) − (CT_device + DS_processed /
/// BW_D2H)`; the task is worth offloading when `S > 0`.
#[must_use]
pub fn net_profit(
    ds_raw: u64,
    ct_host_compute: f64,
    ct_device: f64,
    ds_processed: u64,
    bw_d2h: f64,
) -> f64 {
    (ds_raw as f64 / bw_d2h + ct_host_compute) - (ct_device + ds_processed as f64 / bw_d2h)
}

/// The shared-link term of the shard-aware Eq. 1: the D2H bandwidth one
/// shard of an `n`-device fleet can count on when every shard streams at
/// once — its own link until the host root-complex `budget` saturates,
/// then an equal share of the budget: `min(link, budget / n)`.
///
/// Feeding this (instead of the raw per-device link) into
/// [`net_profit`]'s `bw_d2h` makes per-shard assignment honest about
/// fleet-wide congestion: offload looks *more* profitable at high `n`,
/// exactly the regime where shipping raw rows to the host stops scaling.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn shared_link_bandwidth(
    link: csd_sim::units::Bandwidth,
    budget: csd_sim::units::Bandwidth,
    n: usize,
) -> csd_sim::units::Bandwidth {
    assert!(n > 0, "a fleet has at least one shard");
    link.min(budget.scale(1.0 / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{Complexity, FittedCurve};

    fn curve() -> FittedCurve {
        FittedCurve {
            complexity: Complexity::ON,
            coefficient: 1.0,
            residual: 0.0,
        }
    }

    fn prediction(cost: LineCost) -> LinePrediction {
        LinePrediction {
            line: 0,
            cost,
            compute_curve: curve(),
            out_curve: curve(),
        }
    }

    #[test]
    fn counter_calibration_matches_spec_ratio() {
        let config = SystemConfig::paper_default();
        let calib = Calibration::from_counters(&config);
        let expected = config.host.nominal_rate().as_ops_per_sec()
            / config.cse.nominal_rate().as_ops_per_sec();
        assert!(
            (calib.cse_slowdown - expected).abs() / expected < 1e-6,
            "counter calibration {} vs spec {expected}",
            calib.cse_slowdown
        );
    }

    #[test]
    fn probe_calibration_agrees_with_counters() {
        let config = SystemConfig::paper_default();
        let params = CostParams::paper_default();
        let a = Calibration::from_counters(&config);
        let b = Calibration::from_probe_program(&config, &params).expect("probe");
        assert!(
            (a.cse_slowdown - b.cse_slowdown).abs() / a.cse_slowdown < 0.01,
            "{} vs {}",
            a.cse_slowdown,
            b.cse_slowdown
        );
    }

    #[test]
    fn scan_lines_are_cheaper_on_device() {
        let config = SystemConfig::paper_default();
        let params = CostParams::paper_default();
        let calib = Calibration::from_counters(&config);
        // A pure data-streaming line: lots of bytes, no compute.
        let pred = prediction(LineCost {
            storage_bytes: 8_000_000_000,
            bytes_out: 8_000_000_000,
            ..LineCost::zero()
        });
        let est = estimate_lines(
            &[pred],
            ExecTier::CompiledCopyElim,
            &params,
            &config,
            &calib,
            &[true],
        );
        assert!(
            est[0].ct_device < est[0].ct_host,
            "internal 9 GB/s must beat the 4 GB/s external path: {est:?}"
        );
    }

    #[test]
    fn compute_lines_are_cheaper_on_host() {
        let config = SystemConfig::paper_default();
        let params = CostParams::paper_default();
        let calib = Calibration::from_counters(&config);
        let pred = prediction(LineCost {
            compute_ops: 10_000_000_000,
            bytes_in: 1_000_000,
            bytes_out: 1_000_000,
            ..LineCost::zero()
        });
        let est = estimate_lines(
            &[pred],
            ExecTier::CompiledCopyElim,
            &params,
            &config,
            &calib,
            &[true],
        );
        assert!(
            est[0].ct_host < est[0].ct_device,
            "the CSE is slower at pure compute: {est:?}"
        );
    }

    #[test]
    fn net_profit_sign_behaviour() {
        // 8 GB raw reduced to 8 MB, host compute 0.5 s, device 1.5 s,
        // 4 GB/s link: S = (2.0 + 0.5) - (1.5 + 0.002) > 0.
        let s = net_profit(8_000_000_000, 0.5, 1.5, 8_000_000, 4e9);
        assert!(s > 0.9);
        // No data reduction and slower device: offloading loses.
        let s = net_profit(8_000_000, 0.5, 1.5, 8_000_000, 4e9);
        assert!(s < 0.0);
    }

    #[test]
    fn shared_link_caps_at_the_budget_share() {
        use csd_sim::units::Bandwidth;
        let link = Bandwidth::from_gb_per_sec(4.0);
        let budget = Bandwidth::from_gb_per_sec(16.0);
        for n in [1usize, 2, 4] {
            let bw = shared_link_bandwidth(link, budget, n);
            assert!(
                (bw.as_bytes_per_sec() - link.as_bytes_per_sec()).abs() < 1e-6,
                "n={n}: under the budget, each shard keeps its full link"
            );
        }
        let bw = shared_link_bandwidth(link, budget, 8);
        assert!(
            (bw.as_bytes_per_sec() - 2e9).abs() < 1e-3,
            "8 shards over a 16 GB/s budget see 2 GB/s each, got {bw:?}"
        );
        // Congestion makes offload look better: the raw-shipping term of
        // Eq. 1 grows as the effective link shrinks.
        let congested = net_profit(8_000_000_000, 0.5, 1.5, 8_000_000, 2e9);
        let uncongested = net_profit(8_000_000_000, 0.5, 1.5, 8_000_000, 4e9);
        assert!(congested > uncongested);
    }
}
